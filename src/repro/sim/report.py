"""Plain-text rendering of campaign results.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.sim.metrics import CampaignResult


def format_mpki_table(
    campaign: CampaignResult,
    predictor_order: Optional[Sequence[str]] = None,
    sort_by: Optional[str] = None,
    max_rows: Optional[int] = None,
) -> str:
    """Per-trace MPKI table, one predictor per column.

    Args:
        campaign: the results to render.
        predictor_order: column order (defaults to insertion order).
        sort_by: predictor whose MPKI sorts the rows (Fig. 8 style).
        max_rows: truncate to the first N rows after sorting.
    """
    predictors = list(predictor_order or campaign.predictors())
    traces = (
        campaign.traces_sorted_by(sort_by) if sort_by else campaign.traces()
    )
    if max_rows is not None:
        traces = traces[:max_rows]

    name_width = max([len(t) for t in traces] + [len("benchmark")])
    header = f"{'benchmark':<{name_width}}" + "".join(
        f"  {name:>10}" for name in predictors
    )
    lines = [header, "-" * len(header)]
    for trace in traces:
        cells = "".join(
            f"  {campaign.mpki_of(trace, name):>10.4f}" for name in predictors
        )
        lines.append(f"{trace:<{name_width}}{cells}")
    lines.append("-" * len(header))
    means = "".join(
        f"  {campaign.mean_mpki(name):>10.4f}" for name in predictors
    )
    lines.append(f"{'MEAN':<{name_width}}{means}")
    return "\n".join(lines)


def format_campaign(campaign: CampaignResult) -> str:
    """Summary block: mean MPKI per predictor."""
    lines = ["mean indirect-target MPKI:"]
    for name in campaign.predictors():
        lines.append(f"  {name:<12} {campaign.mean_mpki(name):8.4f}")
    return "\n".join(lines)


def format_series(label: str, values: Sequence[float], per_line: int = 10) -> str:
    """A labelled numeric series (figure data) wrapped for terminals."""
    lines = [f"{label}:"]
    for start in range(0, len(values), per_line):
        chunk = values[start : start + per_line]
        lines.append("  " + " ".join(f"{value:8.4f}" for value in chunk))
    return "\n".join(lines)


def format_breakdown_table(
    rows: Dict[str, Dict[str, float]], columns: List[str], title: str
) -> str:
    """Generic name → {column: value} table used by several figures."""
    name_width = max([len(name) for name in rows] + [len(title)])
    header = f"{title:<{name_width}}" + "".join(f"  {c:>12}" for c in columns)
    lines = [header, "-" * len(header)]
    for name, cells in rows.items():
        rendered = "".join(f"  {cells.get(c, 0.0):>12.4f}" for c in columns)
        lines.append(f"{name:<{name_width}}{rendered}")
    return "\n".join(lines)
