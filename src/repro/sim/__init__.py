"""Branch-prediction simulation engine (the CBP-infrastructure stand-in).

:func:`~repro.sim.engine.simulate` drives one indirect predictor over one
trace and returns :class:`~repro.sim.metrics.SimulationResult` with the
paper's metric — indirect-target mispredictions per kilo-instruction
(MPKI) — plus per-branch detail.  :mod:`repro.sim.runner` runs
campaigns (many traces × many predictors) and :mod:`repro.sim.report`
formats result tables.
"""

from repro.sim.checkpoint import (
    DEFAULT_CHECKPOINT_INTERVAL,
    SimulationCheckpoint,
    discard_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.sim.counters import SimCounters, aggregate_profiles, format_counters
from repro.sim.engine import (
    ColumnarUnsupportedError,
    SampledSimulationResult,
    simulate,
    simulate_conditional,
    simulate_many,
    simulate_sampled,
)
from repro.sim.metrics import CampaignResult, SimulationResult
from repro.sim.performance import PipelineModel
from repro.sim.ras import ReturnAddressStack
from repro.sim.runner import (
    PredictorFactory,
    ProgressCallback,
    invoke_progress,
    progress_arity,
    run_campaign,
)
from repro.sim.report import format_campaign, format_mpki_table

__all__ = [
    "ColumnarUnsupportedError",
    "simulate",
    "simulate_conditional",
    "simulate_many",
    "simulate_sampled",
    "SampledSimulationResult",
    "DEFAULT_CHECKPOINT_INTERVAL",
    "SimulationCheckpoint",
    "discard_checkpoint",
    "load_checkpoint",
    "save_checkpoint",
    "SimCounters",
    "aggregate_profiles",
    "format_counters",
    "SimulationResult",
    "CampaignResult",
    "PipelineModel",
    "ReturnAddressStack",
    "run_campaign",
    "PredictorFactory",
    "ProgressCallback",
    "invoke_progress",
    "progress_arity",
    "format_campaign",
    "format_mpki_table",
]
