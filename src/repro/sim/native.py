"""Optional compiled replay core for the columnar kernel.

The columnar kernel (:mod:`repro.sim.kernel`) splits a trace into
trace-pure precomputation (folds, local registers, IBTB candidate sets,
``differs``/``desired`` bit planes — all batched numpy) and a
prediction-dependent replay over the weight banks and θ controllers.
The replay is the only part that is inherently sequential, and this
module provides a compiled implementation of it: a single C function
that walks the branch stream in retirement order, consuming exactly the
same precomputed tensors as the numpy chunk loop and mutating the same
weight/θ/counter state with identical integer arithmetic.

ROADMAP's north star calls for an optional compiled backend behind the
same interface; this is that drop-in.  The C source is compiled on
first use with the system C compiler into a content-addressed shared
library under the user cache directory and loaded with :mod:`ctypes` —
no build-time dependency, no new packages.  When no compiler is
available (or ``REPRO_COLUMNAR_COMPILED=0``), the kernel transparently
falls back to the pure-numpy chunked replay; both paths are pinned
bit-identical by the equivalence suite.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from typing import Optional

__all__ = ["available", "load", "cache_dir"]

_SOURCE = r"""
#include <stdint.h>

/* Retirement-order replay of the BLBP weight/θ recurrence.
 *
 * Everything prediction-independent (row indices, candidate sets,
 * desired/active bit planes) arrives precomputed; this loop performs
 * only the prediction-dependent arithmetic: the fused int8 weight-bank
 * gather + transfer-LUT dot product, candidate scoring (first-max
 * argmax, matching numpy), the per-bit adaptive-θ controllers, and the
 * masked saturating ±1 weight update.  Integer-for-integer identical
 * to BLBP.predict_target/train.
 */
int64_t blbp_replay(
    int64_t branches,
    int64_t banks,
    int64_t bits,
    int64_t table_rows,
    int64_t tmax,
    const int64_t *rows,            /* (branches, banks) */
    const int64_t *set_ids,         /* (branches,) */
    const uint64_t *padded_targets, /* (sets, tmax) */
    const int64_t *set_sizes,       /* (sets,) */
    const int32_t *bit_matrices,    /* (sets, tmax, bits) */
    const uint8_t *differs,         /* (branches, bits) */
    const uint8_t *desired,         /* (branches, bits) */
    const int32_t *lut,             /* (2 * lut_offset + 1,) */
    int64_t lut_offset,
    int8_t *weights,                /* (banks, table_rows, bits) */
    int64_t magnitude,
    int64_t *theta,                 /* (bits,) */
    int64_t *counter,               /* (bits,) */
    int64_t counter_max,
    int64_t counter_min,
    int64_t adaptive,
    uint64_t *predictions)          /* (branches,) zero-initialised */
{
    int64_t trained = 0;
    int32_t yout[bits];
    uint8_t mask[bits];
    for (int64_t b = 0; b < branches; ++b) {
        const int64_t *brow = rows + b * banks;
        for (int64_t k = 0; k < bits; ++k)
            yout[k] = 0;
        for (int64_t n = 0; n < banks; ++n) {
            const int8_t *w = weights + (n * table_rows + brow[n]) * bits;
            for (int64_t k = 0; k < bits; ++k)
                yout[k] += lut[(int64_t)w[k] + lut_offset];
        }

        const int64_t sid = set_ids[b];
        const int64_t size = set_sizes[sid];
        if (size > 0) {
            const int32_t *mat = bit_matrices + sid * tmax * bits;
            int64_t best = 0;
            int32_t best_score = INT32_MIN;
            for (int64_t t = 0; t < size; ++t) {
                const int32_t *mrow = mat + t * bits;
                int32_t score = 0;
                for (int64_t k = 0; k < bits; ++k)
                    score += mrow[k] * yout[k];
                if (score > best_score) {
                    best_score = score;
                    best = t;
                }
            }
            predictions[b] = padded_targets[sid * tmax + best];
        }

        const uint8_t *diff = differs + b * bits;
        const uint8_t *des = desired + b * bits;
        int any_active = 0;
        for (int64_t k = 0; k < bits; ++k)
            any_active |= diff[k];
        if (!any_active)
            continue;

        int any_mask = 0;
        for (int64_t k = 0; k < bits; ++k) {
            mask[k] = 0;
            if (!diff[k])
                continue;
            const int32_t value = yout[k];
            const int correct = (value >= 0) == (des[k] != 0);
            const int32_t mag = value >= 0 ? value : -value;
            if (adaptive) {
                int64_t current = theta[k];
                if (correct) {
                    if (mag >= current)
                        continue;
                    counter[k] -= 1;
                    if (counter[k] <= counter_min) {
                        counter[k] = 0;
                        if (current > 1) {
                            current -= 1;
                            theta[k] = current;
                        }
                    }
                    mask[k] = mag < current;
                } else {
                    counter[k] += 1;
                    if (counter[k] >= counter_max) {
                        counter[k] = 0;
                        theta[k] = current + 1;
                    }
                    mask[k] = 1;
                }
            } else {
                mask[k] = !correct || mag < theta[k];
            }
            any_mask |= mask[k];
        }
        if (!any_mask)
            continue;

        for (int64_t k = 0; k < bits; ++k)
            trained += mask[k];
        for (int64_t n = 0; n < banks; ++n) {
            int8_t *w = weights + (n * table_rows + brow[n]) * bits;
            for (int64_t k = 0; k < bits; ++k) {
                if (!mask[k])
                    continue;
                int32_t value = (int32_t)w[k] + (des[k] ? 1 : -1);
                if (value > magnitude)
                    value = (int32_t)magnitude;
                if (value < -magnitude)
                    value = (int32_t)-magnitude;
                w[k] = (int8_t)value;
            }
        }
    }
    return trained;
}
"""

_I64 = ctypes.c_int64
_PTR = ctypes.c_void_p
_ARGTYPES = [
    _I64, _I64, _I64, _I64, _I64,       # branches, banks, bits, rows, tmax
    _PTR, _PTR, _PTR, _PTR, _PTR,       # rows, set_ids, targets, sizes, mats
    _PTR, _PTR,                         # differs, desired
    _PTR, _I64,                         # lut, lut_offset
    _PTR, _I64,                         # weights, magnitude
    _PTR, _PTR, _I64, _I64, _I64,       # theta, counter, cmax, cmin, adaptive
    _PTR,                               # predictions
]

_lib: Optional[ctypes.CDLL] = None
_fn = None
_attempted = False


def cache_dir() -> str:
    """Directory holding the content-addressed compiled libraries."""
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro-columnar")


def _compiler() -> Optional[str]:
    for name in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if not name:
            continue
        for root in os.environ.get("PATH", "").split(os.pathsep):
            candidate = os.path.join(root, name)
            if os.path.isfile(candidate) and os.access(candidate, os.X_OK):
                return name
    return None


def _build() -> Optional[str]:
    """Compile the replay core, once, into the shared cache. None on failure."""
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    directory = cache_dir()
    path = os.path.join(directory, f"blbp_replay_{digest}.so")
    if os.path.exists(path):
        return path
    compiler = _compiler()
    if compiler is None:
        return None
    try:
        os.makedirs(directory, exist_ok=True)
        fd, temp_c = tempfile.mkstemp(suffix=".c", dir=directory)
        with os.fdopen(fd, "w") as handle:
            handle.write(_SOURCE)
        temp_so = temp_c[:-2] + ".so"
        try:
            result = subprocess.run(
                [compiler, "-O2", "-shared", "-fPIC", "-std=c99",
                 "-o", temp_so, temp_c],
                capture_output=True,
                timeout=120,
            )
            if result.returncode != 0:
                return None
            # Atomic publish: concurrent builders race benignly.
            os.replace(temp_so, path)
        finally:
            for leftover in (temp_c, temp_so):
                try:
                    os.unlink(leftover)
                except OSError:
                    pass
        return path
    except (OSError, subprocess.SubprocessError):
        return None


def load():
    """The compiled ``blbp_replay`` entry point, or None if unavailable.

    Compilation happens at most once per process; failures (no
    compiler, sandboxed filesystem) are remembered and the caller falls
    back to the numpy replay.  Set ``REPRO_COLUMNAR_COMPILED=0`` to
    force the fallback (the equivalence tests exercise both paths).
    """
    global _lib, _fn, _attempted
    if os.environ.get("REPRO_COLUMNAR_COMPILED", "").strip() == "0":
        return None
    if _fn is not None:
        return _fn
    if _attempted:
        return None
    _attempted = True
    path = _build()
    if path is None:
        return None
    try:
        _lib = ctypes.CDLL(path)
        fn = _lib.blbp_replay
    except (OSError, AttributeError):
        return None
    fn.restype = _I64
    fn.argtypes = _ARGTYPES
    _fn = fn
    return _fn


def available() -> bool:
    """Whether the compiled replay core can be used in this process."""
    return load() is not None
