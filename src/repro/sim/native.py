"""Optional compiled replay cores for the columnar kernels.

The columnar kernels (:mod:`repro.sim.kernel` and friends) split a
trace into trace-pure precomputation (folds, local registers, IBTB
candidate sets, ITTAGE index/tag planes, VPC virtual-PC tables — all
batched numpy) and a prediction-dependent replay over the mutable
predictor state.  The replay is the only part that is inherently
sequential, and this module provides compiled implementations of it:
C functions that walk the branch stream in retirement order, consuming
exactly the same precomputed tensors as the numpy loops and mutating
the same state with identical integer arithmetic.

Four entry points live in one shared library:

``blbp_replay``
    The BLBP weight/θ recurrence for a single predictor.
``blbp_replay_many``
    The same recurrence advanced lane-parallel for a fused group of
    BLBP lanes sharing one precompute (same IBTB candidate tensors and
    ``differs``/``desired`` planes); each branch touches every lane
    before the next branch, with per-lane weight banks and θ
    controllers, so lane ``i`` evolves exactly as a solo replay would.
``ittage_replay``
    ITTAGE provider/altpred selection, confidence/usefulness counters
    and allocation over precomputed per-(branch, table) index/tag
    planes.  The allocation tie-breaker calls back into the
    predictor's own numpy Generator so the RNG stream stays
    bit-identical with the scalar path.
``vpc_replay``
    VPC's virtual-PC iteration over a precomputed vpca/slot/tag table,
    with callbacks into the (arbitrary, Python-side) shared conditional
    predictor.

The source is compiled on first use with the system C compiler at
``-O3`` (the dot-product and update inner loops are written so the
compiler auto-vectorizes them) into a content-addressed shared library
under the user cache directory and loaded with :mod:`ctypes` — no
build-time dependency, no new packages.  When no compiler is available
(or ``REPRO_COLUMNAR_COMPILED=0``), the kernels transparently fall
back to their pure-numpy replays; both paths are pinned bit-identical
by the equivalence suite.  Concurrent builders (dist worker pools on
one node) race benignly: each compiles into a private temp file and
atomically publishes with ``os.replace``, and a builder whose own
compile fails re-checks for a concurrently published library before
giving up.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from typing import Dict, List, Optional

__all__ = [
    "available",
    "load",
    "cache_dir",
    "RNG_CALLBACK",
    "COND_PREDICT",
    "COND_TRAIN",
]

#: Callback signatures crossing the C boundary.  ITTAGE's allocation
#: tie-breaker draws from the predictor's numpy Generator; VPC consults
#: and trains its Python-side conditional predictor per event.
RNG_CALLBACK = ctypes.CFUNCTYPE(ctypes.c_double)
COND_PREDICT = ctypes.CFUNCTYPE(ctypes.c_int, ctypes.c_uint64)
COND_TRAIN = ctypes.CFUNCTYPE(None, ctypes.c_uint64, ctypes.c_int)

_SOURCE = r"""
#include <stdint.h>

typedef double (*rng_fn)(void);
typedef int (*cond_predict_fn)(uint64_t);
typedef void (*cond_train_fn)(uint64_t, int);

/* Retirement-order replay of the BLBP weight/θ recurrence.
 *
 * Everything prediction-independent (row indices, candidate sets,
 * desired/active bit planes) arrives precomputed; this loop performs
 * only the prediction-dependent arithmetic: the fused int8 weight-bank
 * gather + transfer-LUT dot product, candidate scoring (first-max
 * argmax, matching numpy), the per-bit adaptive-θ controllers, and the
 * masked saturating ±1 weight update.  Integer-for-integer identical
 * to BLBP.predict_target/train.
 */
int64_t blbp_replay(
    int64_t branches,
    int64_t banks,
    int64_t bits,
    int64_t table_rows,
    int64_t tmax,
    const int64_t *rows,            /* (branches, banks) */
    const int64_t *set_ids,         /* (branches,) */
    const uint64_t *padded_targets, /* (sets, tmax) */
    const int64_t *set_sizes,       /* (sets,) */
    const int32_t *bit_matrices,    /* (sets, tmax, bits) */
    const uint8_t *differs,         /* (branches, bits) */
    const uint8_t *desired,         /* (branches, bits) */
    const int32_t *lut,             /* (2 * lut_offset + 1,) */
    int64_t lut_offset,
    int8_t *weights,                /* (banks, table_rows, bits) */
    int64_t magnitude,
    int64_t *theta,                 /* (bits,) */
    int64_t *counter,               /* (bits,) */
    int64_t counter_max,
    int64_t counter_min,
    int64_t adaptive,
    uint64_t *predictions)          /* (branches,) zero-initialised */
{
    int64_t trained = 0;
    int32_t yout[bits];
    uint8_t mask[bits];
    for (int64_t b = 0; b < branches; ++b) {
        const int64_t *brow = rows + b * banks;
        for (int64_t k = 0; k < bits; ++k)
            yout[k] = 0;
        for (int64_t n = 0; n < banks; ++n) {
            const int8_t *w = weights + (n * table_rows + brow[n]) * bits;
            for (int64_t k = 0; k < bits; ++k)
                yout[k] += lut[(int64_t)w[k] + lut_offset];
        }

        const int64_t sid = set_ids[b];
        const int64_t size = set_sizes[sid];
        if (size > 0) {
            const int32_t *mat = bit_matrices + sid * tmax * bits;
            int64_t best = 0;
            int32_t best_score = INT32_MIN;
            for (int64_t t = 0; t < size; ++t) {
                const int32_t *mrow = mat + t * bits;
                int32_t score = 0;
                for (int64_t k = 0; k < bits; ++k)
                    score += mrow[k] * yout[k];
                if (score > best_score) {
                    best_score = score;
                    best = t;
                }
            }
            predictions[b] = padded_targets[sid * tmax + best];
        }

        const uint8_t *diff = differs + b * bits;
        const uint8_t *des = desired + b * bits;
        int any_active = 0;
        for (int64_t k = 0; k < bits; ++k)
            any_active |= diff[k];
        if (!any_active)
            continue;

        int any_mask = 0;
        for (int64_t k = 0; k < bits; ++k) {
            mask[k] = 0;
            if (!diff[k])
                continue;
            const int32_t value = yout[k];
            const int correct = (value >= 0) == (des[k] != 0);
            const int32_t mag = value >= 0 ? value : -value;
            if (adaptive) {
                int64_t current = theta[k];
                if (correct) {
                    if (mag >= current)
                        continue;
                    counter[k] -= 1;
                    if (counter[k] <= counter_min) {
                        counter[k] = 0;
                        if (current > 1) {
                            current -= 1;
                            theta[k] = current;
                        }
                    }
                    mask[k] = mag < current;
                } else {
                    counter[k] += 1;
                    if (counter[k] >= counter_max) {
                        counter[k] = 0;
                        theta[k] = current + 1;
                    }
                    mask[k] = 1;
                }
            } else {
                mask[k] = !correct || mag < theta[k];
            }
            any_mask |= mask[k];
        }
        if (!any_mask)
            continue;

        for (int64_t k = 0; k < bits; ++k)
            trained += mask[k];
        for (int64_t n = 0; n < banks; ++n) {
            int8_t *w = weights + (n * table_rows + brow[n]) * bits;
            for (int64_t k = 0; k < bits; ++k) {
                if (!mask[k])
                    continue;
                int32_t value = (int32_t)w[k] + (des[k] ? 1 : -1);
                if (value > magnitude)
                    value = (int32_t)magnitude;
                if (value < -magnitude)
                    value = (int32_t)-magnitude;
                w[k] = (int8_t)value;
            }
        }
    }
    return trained;
}

/* Multi-lane BLBP replay for a fused group sharing one precompute.
 *
 * The shared planes (candidate sets, differs/desired) are identical
 * across lanes by construction — the kernel only groups lanes whose
 * shared-precompute artifacts are the same objects.  Per-lane state
 * (weight banks, θ/counter controllers, LUT, geometry) arrives as
 * pointer/scalar arrays indexed by lane.  Each branch advances every
 * lane before the next branch; lanes are independent, so each lane's
 * state trajectory is exactly its solo blbp_replay trajectory, while
 * the shared planes stay hot in cache across the lane loop.
 */
void blbp_replay_many(
    int64_t lanes,
    int64_t branches,
    int64_t bits,
    int64_t tmax,
    const int64_t *set_ids,         /* shared (branches,) */
    const uint64_t *padded_targets, /* shared (sets, tmax) */
    const int64_t *set_sizes,       /* shared (sets,) */
    const int32_t *bit_matrices,    /* shared (sets, tmax, bits) */
    const uint8_t *differs,         /* shared (branches, bits) */
    const uint8_t *desired,         /* shared (branches, bits) */
    const int64_t *banks,           /* (lanes,) */
    const int64_t *table_rows,      /* (lanes,) */
    const int64_t *const *rows,     /* lane -> (branches, banks[l]) */
    const int32_t *const *luts,     /* lane -> (2 * lut_offsets[l] + 1,) */
    const int64_t *lut_offsets,     /* (lanes,) */
    int8_t *const *weights,         /* lane -> (banks, table_rows, bits) */
    const int64_t *magnitudes,      /* (lanes,) */
    int64_t *const *thetas,         /* lane -> (bits,) */
    int64_t *const *counters,       /* lane -> (bits,) */
    const int64_t *cmaxs,           /* (lanes,) */
    const int64_t *cmins,           /* (lanes,) */
    const int64_t *adaptives,       /* (lanes,) */
    uint64_t *const *predictions,   /* lane -> (branches,) zeroed */
    int64_t *trained)               /* (lanes,) zero-initialised */
{
    int32_t yout[bits];
    uint8_t mask[bits];
    for (int64_t b = 0; b < branches; ++b) {
        const int64_t sid = set_ids[b];
        const int64_t size = set_sizes[sid];
        const int32_t *mat = bit_matrices + sid * tmax * bits;
        const uint8_t *diff = differs + b * bits;
        const uint8_t *des = desired + b * bits;
        int any_active = 0;
        for (int64_t k = 0; k < bits; ++k)
            any_active |= diff[k];

        for (int64_t l = 0; l < lanes; ++l) {
            const int64_t nb = banks[l];
            const int64_t trows = table_rows[l];
            const int64_t *brow = rows[l] + b * nb;
            const int32_t *lut = luts[l];
            const int64_t lut_offset = lut_offsets[l];
            int8_t *wbase = weights[l];

            for (int64_t k = 0; k < bits; ++k)
                yout[k] = 0;
            for (int64_t n = 0; n < nb; ++n) {
                const int8_t *w = wbase + (n * trows + brow[n]) * bits;
                for (int64_t k = 0; k < bits; ++k)
                    yout[k] += lut[(int64_t)w[k] + lut_offset];
            }

            if (size > 0) {
                int64_t best = 0;
                int32_t best_score = INT32_MIN;
                for (int64_t t = 0; t < size; ++t) {
                    const int32_t *mrow = mat + t * bits;
                    int32_t score = 0;
                    for (int64_t k = 0; k < bits; ++k)
                        score += mrow[k] * yout[k];
                    if (score > best_score) {
                        best_score = score;
                        best = t;
                    }
                }
                predictions[l][b] = padded_targets[sid * tmax + best];
            }

            if (!any_active)
                continue;

            int64_t *theta = thetas[l];
            int64_t *counter = counters[l];
            const int64_t counter_max = cmaxs[l];
            const int64_t counter_min = cmins[l];
            const int64_t adaptive = adaptives[l];
            int any_mask = 0;
            for (int64_t k = 0; k < bits; ++k) {
                mask[k] = 0;
                if (!diff[k])
                    continue;
                const int32_t value = yout[k];
                const int correct = (value >= 0) == (des[k] != 0);
                const int32_t mag = value >= 0 ? value : -value;
                if (adaptive) {
                    int64_t current = theta[k];
                    if (correct) {
                        if (mag >= current)
                            continue;
                        counter[k] -= 1;
                        if (counter[k] <= counter_min) {
                            counter[k] = 0;
                            if (current > 1) {
                                current -= 1;
                                theta[k] = current;
                            }
                        }
                        mask[k] = mag < current;
                    } else {
                        counter[k] += 1;
                        if (counter[k] >= counter_max) {
                            counter[k] = 0;
                            theta[k] = current + 1;
                        }
                        mask[k] = 1;
                    }
                } else {
                    mask[k] = !correct || mag < theta[k];
                }
                any_mask |= mask[k];
            }
            if (!any_mask)
                continue;

            const int64_t magnitude = magnitudes[l];
            for (int64_t k = 0; k < bits; ++k)
                trained[l] += mask[k];
            for (int64_t n = 0; n < nb; ++n) {
                int8_t *w = wbase + (n * trows + brow[n]) * bits;
                for (int64_t k = 0; k < bits; ++k) {
                    if (!mask[k])
                        continue;
                    int32_t value = (int32_t)w[k] + (des[k] ? 1 : -1);
                    if (value > magnitude)
                        value = (int32_t)magnitude;
                    if (value < -magnitude)
                        value = (int32_t)-magnitude;
                    w[k] = (int8_t)value;
                }
            }
        }
    }
}

/* Retirement-order ITTAGE replay over precomputed index/tag planes.
 *
 * Statement-for-statement the scalar predict_target/train pair with
 * the hash pipeline stripped out: provider/altpred selection (highest
 * two hitting tables), the weak-provider use-alt rule, the use-alt
 * meta-counter, usefulness and confidence updates, base-table
 * hysteresis, allocation with Seznec's geometric skew (drawing from
 * the predictor's own RNG through `rng` so the stream is shared with
 * the scalar path), and the periodic usefulness reset.
 */
void ittage_replay(
    int64_t branches,
    int64_t num_tagged,
    int64_t entries,
    int64_t base_entries,
    const int64_t *idx,        /* (branches, num_tagged) */
    const int64_t *tagv,       /* (branches, num_tagged) */
    const int64_t *base_idx,   /* (branches,) */
    const uint64_t *targets,   /* (branches,) */
    int64_t *tab_tags,         /* (num_tagged, entries) */
    uint64_t *tab_targets,
    int8_t *tab_ctr,
    int8_t *tab_useful,
    uint8_t *tab_valid,
    uint64_t *base_targets,    /* (base_entries,) */
    int8_t *base_ctr,
    uint8_t *base_valid,
    int64_t conf_max,
    int64_t useful_max,
    int64_t use_alt_min,
    int64_t use_alt_max,
    int64_t u_reset_period,
    int64_t *state,            /* [use_alt, updates] in/out */
    rng_fn rng,
    uint64_t *predictions,     /* (branches,) zero-initialised */
    uint8_t *valid_out)        /* (branches,) zero-initialised */
{
    int64_t use_alt = state[0];
    int64_t updates = state[1];
    for (int64_t b = 0; b < branches; ++b) {
        const int64_t *indices = idx + b * num_tagged;
        const int64_t *tags = tagv + b * num_tagged;
        const uint64_t target = targets[b];

        int64_t provider_t = -1, provider_i = -1;
        int64_t alt_t = -1, alt_i = -1;
        for (int64_t t = num_tagged - 1; t >= 0; --t) {
            const int64_t slot = t * entries + indices[t];
            if (tab_valid[slot] && tab_tags[slot] == tags[t]) {
                if (provider_t < 0) {
                    provider_t = t;
                    provider_i = indices[t];
                } else {
                    alt_t = t;
                    alt_i = indices[t];
                    break;
                }
            }
        }

        const int64_t bi = base_idx[b];
        const int base_present = base_valid[bi];

        uint64_t provider_target = 0;
        int64_t provider_ctr = 0;
        if (provider_t >= 0) {
            provider_target = tab_targets[provider_t * entries + provider_i];
            provider_ctr = tab_ctr[provider_t * entries + provider_i];
        }
        int has_alt = 0;
        uint64_t alt_target = 0;
        if (alt_t >= 0) {
            has_alt = 1;
            alt_target = tab_targets[alt_t * entries + alt_i];
        } else if (base_present) {
            has_alt = 1;
            alt_target = base_targets[bi];
        }

        int has_final = 0;
        uint64_t final = 0;
        if (provider_t < 0) {
            if (base_present) {
                has_final = 1;
                final = base_targets[bi];
            }
        } else if (provider_ctr == 0 && use_alt >= 0 && has_alt) {
            has_final = 1;
            final = alt_target;
        } else {
            has_final = 1;
            final = provider_target;
        }
        if (has_final) {
            predictions[b] = final;
            valid_out[b] = 1;
        }
        const int mispredicted = !has_final || final != target;

        if (provider_t >= 0) {
            const int64_t pslot = provider_t * entries + provider_i;
            const int provider_correct = provider_target == target;
            const int alt_correct = has_alt && alt_target == target;
            const int differ = !has_alt || provider_target != alt_target;
            if (provider_ctr == 0 && differ) {
                if (alt_correct && !provider_correct) {
                    if (use_alt < use_alt_max)
                        use_alt += 1;
                } else if (provider_correct && !alt_correct) {
                    if (use_alt > use_alt_min)
                        use_alt -= 1;
                }
            }
            if (differ) {
                if (provider_correct && tab_useful[pslot] < useful_max)
                    tab_useful[pslot] += 1;
                else if (!provider_correct && tab_useful[pslot] > 0)
                    tab_useful[pslot] -= 1;
            }
            if (provider_correct) {
                if (tab_ctr[pslot] < conf_max)
                    tab_ctr[pslot] += 1;
            } else if (tab_ctr[pslot] > 0) {
                tab_ctr[pslot] -= 1;
            } else {
                tab_targets[pslot] = target;
                tab_ctr[pslot] = 1;
            }
        }

        if (!base_present) {
            base_valid[bi] = 1;
            base_targets[bi] = target;
            base_ctr[bi] = 1;
        } else if (base_targets[bi] == target) {
            if (base_ctr[bi] < conf_max)
                base_ctr[bi] += 1;
        } else if (base_ctr[bi] > 0) {
            base_ctr[bi] -= 1;
        } else {
            base_targets[bi] = target;
            base_ctr[bi] = 1;
        }

        if (mispredicted) {
            int64_t first = -1, second = -1;
            for (int64_t t = provider_t + 1; t < num_tagged; ++t) {
                if (tab_useful[t * entries + indices[t]] == 0) {
                    if (first < 0) {
                        first = t;
                    } else {
                        second = t;
                        break;
                    }
                }
            }
            if (first < 0) {
                for (int64_t t = provider_t + 1; t < num_tagged; ++t) {
                    const int64_t slot = t * entries + indices[t];
                    if (tab_useful[slot] > 0)
                        tab_useful[slot] -= 1;
                }
            } else {
                /* Seznec's geometric skew over the free candidates, in
                 * the scalar loop's exact RNG draw order. */
                int64_t chosen = first;
                if (second >= 0) {
                    int64_t candidate = second;
                    for (;;) {
                        if (rng() < 0.5)
                            break;
                        chosen = candidate;
                        candidate = -1;
                        for (int64_t t = chosen + 1; t < num_tagged; ++t) {
                            if (tab_useful[t * entries + indices[t]] == 0) {
                                candidate = t;
                                break;
                            }
                        }
                        if (candidate < 0)
                            break;
                    }
                }
                const int64_t slot = chosen * entries + indices[chosen];
                tab_valid[slot] = 1;
                tab_tags[slot] = tags[chosen];
                tab_targets[slot] = target;
                tab_ctr[slot] = 0;
                tab_useful[slot] = 0;
            }
        }

        updates += 1;
        if (updates % u_reset_period == 0) {
            const int64_t total = num_tagged * entries;
            for (int64_t s = 0; s < total; ++s)
                tab_useful[s] = 0;
        }
    }
    state[0] = use_alt;
    state[1] = updates;
}

/* Event-order VPC replay over a precomputed vpca/slot/tag table.
 *
 * Events interleave real conditionals (kind 0: consult + update the
 * shared conditional predictor, book-keeping its accuracy) with
 * indirect branches (kind 1: the virtual-PC iteration).  All hashing
 * is precomputed per (static pc, iteration); the BTB's direct-mapped
 * arrays are mutated in place.  The conditional predictor is an
 * arbitrary Python object reached through the three callbacks, called
 * in exactly the scalar sequence.
 */
void vpc_replay(
    int64_t events,
    const uint8_t *kinds,      /* (events,) 0 = conditional, 1 = indirect */
    const uint64_t *ev_a,      /* cond: pc; indirect: unique-pc row */
    const uint8_t *ev_taken,   /* (events,) conditionals only */
    const uint64_t *targets,   /* (branches,) by running branch ordinal */
    int64_t max_iter,
    int64_t fallback,
    const uint64_t *vpcas,     /* (unique_pcs * max_iter) */
    const int64_t *slots,
    const int64_t *vtags,
    int64_t *btb_tags,         /* (btb_entries,) */
    uint64_t *btb_targets,
    int64_t *btb_ticks,
    int64_t *counters,         /* [clock, cond_count, cond_misp] in/out */
    cond_predict_fn cond_predict,
    cond_train_fn cond_train,
    cond_train_fn cond_update,
    uint64_t *predictions,     /* (branches,) zero-initialised */
    uint8_t *valid_out)        /* (branches,) zero-initialised */
{
    int64_t clock = counters[0];
    int64_t cond_count = counters[1];
    int64_t cond_misp = counters[2];
    int64_t branch = 0;
    for (int64_t e = 0; e < events; ++e) {
        if (kinds[e] == 0) {
            const uint64_t pc = ev_a[e];
            const int taken = ev_taken[e];
            const int predicted = cond_predict(pc);
            cond_count += 1;
            if ((predicted != 0) != (taken != 0))
                cond_misp += 1;
            cond_update(pc, taken);
            continue;
        }

        const int64_t base = (int64_t)ev_a[e] * max_iter;
        const uint64_t target = targets[branch];

        int64_t visited = 0;
        int has_pred = 0;
        uint64_t pred = 0;
        int64_t hit_it = -1;
        for (int64_t it = 0; it < max_iter; ++it) {
            const int64_t s = slots[base + it];
            if (btb_tags[s] != vtags[base + it])
                break;
            visited += 1;
            if (cond_predict(vpcas[base + it])) {
                pred = btb_targets[s];
                has_pred = 1;
                hit_it = it;
                break;
            }
        }
        if (!has_pred && visited > 0 && fallback) {
            pred = btb_targets[slots[base]];
            has_pred = 1;
            hit_it = 0;
        }
        if (has_pred) {
            predictions[branch] = pred;
            valid_out[branch] = 1;
        }
        branch += 1;

        if (has_pred && pred == target) {
            for (int64_t it = 0; it < visited; ++it)
                cond_train(vpcas[base + it], it == hit_it);
            const int64_t s = slots[base + hit_it];
            if (btb_tags[s] == vtags[base + hit_it]) {
                clock += 1;
                btb_ticks[s] = clock;
            }
            continue;
        }

        int64_t found = -1;
        for (int64_t it = 0; it < max_iter; ++it) {
            const int64_t s = slots[base + it];
            if (found < 0 && btb_tags[s] == vtags[base + it]
                    && btb_targets[s] == target)
                found = it;
        }
        if (found >= 0) {
            for (int64_t it = 0; it <= found; ++it) {
                const int64_t s = slots[base + it];
                if (btb_tags[s] == vtags[base + it] || it == found)
                    cond_train(vpcas[base + it], it == found);
            }
            const int64_t s = slots[base + found];
            if (btb_tags[s] == vtags[base + found]) {
                clock += 1;
                btb_ticks[s] = clock;
            }
            continue;
        }

        int64_t victim = -1;
        for (int64_t it = 0; it < max_iter; ++it) {
            if (btb_tags[slots[base + it]] != vtags[base + it]) {
                victim = it;
                break;
            }
        }
        if (victim < 0) {
            int64_t best_tick = btb_ticks[slots[base]];
            victim = 0;
            for (int64_t it = 1; it < max_iter; ++it) {
                const int64_t tick = btb_ticks[slots[base + it]];
                if (tick < best_tick) {
                    best_tick = tick;
                    victim = it;
                }
            }
        }
        for (int64_t it = 0; it < visited; ++it) {
            if (it != victim)
                cond_train(vpcas[base + it], 0);
        }
        {
            const int64_t s = slots[base + victim];
            clock += 1;
            btb_tags[s] = vtags[base + victim];
            btb_targets[s] = target;
            btb_ticks[s] = clock;
        }
        cond_train(vpcas[base + victim], 1);
    }
    counters[0] = clock;
    counters[1] = cond_count;
    counters[2] = cond_misp;
}
"""

_CFLAGS = ["-O3", "-shared", "-fPIC", "-std=c99"]

_I64 = ctypes.c_int64
_PTR = ctypes.c_void_p

#: (restype, argtypes) per exported function; `load(name)` applies them.
_SIGNATURES: Dict[str, tuple] = {
    "blbp_replay": (
        _I64,
        [
            _I64, _I64, _I64, _I64, _I64,   # branches, banks, bits, rows, tmax
            _PTR, _PTR, _PTR, _PTR, _PTR,   # rows, set_ids, targets, sizes, mats
            _PTR, _PTR,                     # differs, desired
            _PTR, _I64,                     # lut, lut_offset
            _PTR, _I64,                     # weights, magnitude
            _PTR, _PTR, _I64, _I64, _I64,   # theta, counter, cmax, cmin, adaptive
            _PTR,                           # predictions
        ],
    ),
    "blbp_replay_many": (
        None,
        [
            _I64, _I64, _I64, _I64,         # lanes, branches, bits, tmax
            _PTR, _PTR, _PTR, _PTR,         # set_ids, targets, sizes, mats
            _PTR, _PTR,                     # differs, desired
            _PTR, _PTR,                     # banks, table_rows
            _PTR, _PTR, _PTR,               # rows, luts, lut_offsets
            _PTR, _PTR,                     # weights, magnitudes
            _PTR, _PTR,                     # thetas, counters
            _PTR, _PTR, _PTR,               # cmaxs, cmins, adaptives
            _PTR, _PTR,                     # predictions, trained
        ],
    ),
    "ittage_replay": (
        None,
        [
            _I64, _I64, _I64, _I64,         # branches, tables, entries, base
            _PTR, _PTR, _PTR, _PTR,         # idx, tag, base_idx, targets
            _PTR, _PTR, _PTR, _PTR, _PTR,   # tags, targets, ctr, useful, valid
            _PTR, _PTR, _PTR,               # base targets/ctr/valid
            _I64, _I64, _I64, _I64, _I64,   # conf/useful/alt bounds, u-reset
            _PTR,                           # state [use_alt, updates]
            RNG_CALLBACK,                   # allocation tie-breaker
            _PTR, _PTR,                     # predictions, valid_out
        ],
    ),
    "vpc_replay": (
        None,
        [
            _I64,                           # events
            _PTR, _PTR, _PTR, _PTR,         # kinds, ev_a, ev_taken, targets
            _I64, _I64,                     # max_iter, fallback
            _PTR, _PTR, _PTR,               # vpcas, slots, vtags
            _PTR, _PTR, _PTR,               # btb tags/targets/ticks
            _PTR,                           # counters [clock, count, misp]
            COND_PREDICT, COND_TRAIN, COND_TRAIN,
            _PTR, _PTR,                     # predictions, valid_out
        ],
    ),
}

_lib: Optional[ctypes.CDLL] = None
_fns: Dict[str, object] = {}
_attempted = False


def cache_dir() -> str:
    """Directory holding the content-addressed compiled libraries."""
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro-columnar")


def _compiler() -> Optional[str]:
    for name in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if not name:
            continue
        for root in os.environ.get("PATH", "").split(os.pathsep):
            candidate = os.path.join(root, name)
            if os.path.isfile(candidate) and os.access(candidate, os.X_OK):
                return name
    return None


def _build() -> Optional[str]:
    """Compile the replay cores, once, into the shared cache.

    Returns the library path, or None on failure.  Safe under
    concurrent builders (dist worker pools sharing one cache): each
    compiles into a private mkstemp file and publishes with an atomic
    ``os.replace``; a builder whose own compile fails re-checks whether
    a concurrent builder already published the library before giving
    up, so transient contention never blacklists the compiled path for
    the whole process.
    """
    source_id = _SOURCE + "\n".join(_CFLAGS)
    digest = hashlib.sha256(source_id.encode()).hexdigest()[:16]
    directory = cache_dir()
    path = os.path.join(directory, f"replay_{digest}.so")
    if os.path.exists(path):
        return path
    compiler = _compiler()
    if compiler is None:
        return None
    try:
        os.makedirs(directory, exist_ok=True)
        fd, temp_c = tempfile.mkstemp(suffix=".c", dir=directory)
        with os.fdopen(fd, "w") as handle:
            handle.write(_SOURCE)
        temp_so = temp_c[:-2] + ".so"
        try:
            result = subprocess.run(
                [compiler, *_CFLAGS, "-o", temp_so, temp_c],
                capture_output=True,
                timeout=120,
            )
            if result.returncode != 0:
                return path if os.path.exists(path) else None
            # Atomic publish: concurrent builders race benignly.
            os.replace(temp_so, path)
        finally:
            for leftover in (temp_c, temp_so):
                try:
                    os.unlink(leftover)
                except OSError:
                    pass
        return path
    except (OSError, subprocess.SubprocessError):
        # A concurrent builder may have published while we failed.
        return path if os.path.exists(path) else None


def _load_library() -> Optional[ctypes.CDLL]:
    global _lib, _attempted
    if _lib is not None:
        return _lib
    if _attempted:
        return None
    _attempted = True
    path = _build()
    if path is None:
        return None
    try:
        _lib = ctypes.CDLL(path)
    except OSError:
        _lib = None
    return _lib


def load(name: str = "blbp_replay"):
    """The compiled replay entry point ``name``, or None if unavailable.

    Compilation happens at most once per process; failures (no
    compiler, sandboxed filesystem) are remembered and the caller falls
    back to the numpy replay.  Set ``REPRO_COLUMNAR_COMPILED=0`` to
    force the fallback (the equivalence tests exercise both paths).
    """
    if os.environ.get("REPRO_COLUMNAR_COMPILED", "").strip() == "0":
        return None
    fn = _fns.get(name)
    if fn is not None:
        return fn
    signature = _SIGNATURES.get(name)
    if signature is None:
        raise ValueError(f"unknown replay core {name!r}")
    lib = _load_library()
    if lib is None:
        return None
    try:
        fn = getattr(lib, name)
    except AttributeError:
        return None
    fn.restype, fn.argtypes = signature
    _fns[name] = fn
    return fn


def available() -> bool:
    """Whether the compiled replay cores can be used in this process."""
    return load() is not None


def loaded_functions() -> List[str]:
    """Names of the compiled entry points available in this process."""
    return [name for name in _SIGNATURES if load(name) is not None]
