"""Columnar replay kernel for :class:`~repro.predictors.ittage.ITTAGE`.

ITTAGE's per-branch work splits the same way BLBP's does (see
:mod:`repro.sim.kernel`): almost everything the scalar loop computes is
a pure function of the *trace*, and only the tagged-table contents are
prediction-dependent.

* **History stream.**  Every record pushes a fixed number of history
  bits — one per conditional (the outcome), ``target_bits_per_indirect``
  per indirect (hashed-target bits), one constant ``1`` for every other
  retired branch — so each branch's fold positions are known up front.
  The folded index/tag registers are interval-``[0, length)`` folds of
  that stream, served from the same prefix-XOR tables the BLBP kernel
  uses, with the live history ring prepended as a virtual prefix so warm
  predictors replay exactly.
* **Path history.**  Two PC bits per record; the 16-bit register any
  branch observes is a fixed-size window over (initial register ++
  per-record codes), computed with a handful of shifted gathers.
* **Indices and tags.**  With folds and path values in hand, every
  (branch, table) index and tag is one vectorized hash-mix — the scalar
  loop's entire ``_tagged_index``/``_tagged_tag`` work disappears from
  the replay.

The replay itself — provider/altpred selection, confidence and
usefulness counters, the use-alt meta-counter, allocation with Seznec's
geometric RNG skew, periodic usefulness reset — is inherently
sequential and runs either as a Python loop over the precomputed index
planes or through the compiled ``ittage_replay`` core in
:mod:`repro.sim.native` (the allocation tie-breaker calls back into the
predictor's own ``numpy`` Generator, so the RNG stream is shared
bit-for-bit between all three paths).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.hashing import mix_pc, stable_hash64
from repro.predictors.ittage import ITTAGE
from repro.sim import native
from repro.sim.metrics import SimulationResult
from repro.trace.derived import DerivedPlane
from repro.trace.stream import Trace


# ----------------------------------------------------------------------
# Trace-pure precomputation
# ----------------------------------------------------------------------


def _push_stream(
    trace: Trace,
    derived: DerivedPlane,
    target_bits: int,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """The history-bit stream pushed by the whole trace, oldest first.

    Returns ``(body, bits_before, total)`` where ``body[j]`` is the
    ``j``-th pushed bit, ``bits_before[b]`` counts stream bits pushed
    before indirect branch ``b`` predicts, and ``total`` is the stream
    length.  Conditionals push their outcome, indirects push
    ``target_bits`` hashed-target bits (LSB first), every other retired
    record pushes a constant ``1``.
    """
    records = derived.records
    indirect_idx = np.asarray(derived.indirect_idx)
    cond_idx = np.asarray(derived.cond_idx)
    branch_count = len(indirect_idx)
    extra = target_bits - 1
    total = records + extra * branch_count

    body = np.ones(total, dtype=np.uint8)
    if len(cond_idx):
        cond_pos = cond_idx + extra * np.searchsorted(
            indirect_idx, cond_idx
        )
        body[cond_pos] = derived.conditional_outcomes()

    starts = indirect_idx + extra * np.arange(branch_count, dtype=np.int64)
    if branch_count and target_bits:
        unique, inverse = np.unique(
            derived.indirect_targets, return_inverse=True
        )
        hashes = np.fromiter(
            (stable_hash64(int(value)) for value in unique.tolist()),
            dtype=np.uint64,
            count=len(unique),
        )[inverse]
        for bit in range(target_bits):
            body[starts + bit] = (
                (hashes >> np.uint64(bit)) & np.uint64(1)
            ).astype(np.uint8)
    bits_before = starts if target_bits else indirect_idx - np.arange(
        branch_count, dtype=np.int64
    )
    return body, bits_before, total


def _ring_prefix(predictor: ITTAGE, length: int) -> Tuple[int, ...]:
    """The most recent ``length`` ring bits, oldest first."""
    ring = predictor._ring
    return tuple(ring.bit_at(length - 1 - i) for i in range(length))


def _path_values(
    codes: np.ndarray,
    positions: np.ndarray,
    path0: int,
    path_bits: int,
) -> np.ndarray:
    """Path-history register seen by each branch, before its own push.

    ``codes`` holds every record's 2-bit path code; the register before
    record ``r`` is a window of the last ``ceil(path_bits / 2)`` codes
    (the initial register supplying codes older than the trace), masked
    to ``path_bits``.
    """
    if path_bits <= 0:
        return np.zeros(len(positions), dtype=np.int64)
    window = (path_bits + 1) // 2
    ext = np.empty(window + len(codes), dtype=np.int64)
    for m in range(window):
        ext[m] = (path0 >> (2 * (window - 1 - m))) & 3
    ext[window:] = codes
    values = np.zeros(len(positions), dtype=np.int64)
    base = positions + (window - 1)
    for u in range(window):
        values |= ext[base - u] << (2 * u)
    return values & ((1 << path_bits) - 1)


def _prepare(
    predictor: ITTAGE,
    trace: Trace,
    derived: DerivedPlane,
    shared,
) -> dict:
    """All trace-pure planes: per-(branch, table) indices/tags, base
    indices, and the write-back ingredients (stream, path, folds)."""
    cfg = predictor.config
    num_tagged = cfg.num_tagged
    lengths = cfg.history_lengths
    longest = max(lengths)
    tbits = cfg.target_bits_per_indirect
    index_bits = predictor._index_bits

    indirect_idx = np.asarray(derived.indirect_idx)
    branch_count = len(indirect_idx)
    branch_pcs = derived.indirect_pcs
    branch_targets = np.asarray(derived.indirect_targets)

    # History stream with the live ring as a virtual prefix; keyed on
    # the prefix so warm lanes with different rings never collide.
    prefix_bits = _ring_prefix(predictor, longest)
    body, bits_before, total = shared.get(
        ("ittage-stream", tbits),
        lambda: _push_stream(trace, derived, tbits),
    )
    stream_key = ("ittage-ext", tbits, prefix_bits)
    ext = shared.get(
        stream_key,
        lambda: np.concatenate(
            [np.asarray(prefix_bits, dtype=np.uint8), body]
        ),
    )
    consumed = longest + bits_before
    final_consumed = np.asarray([longest + total], dtype=np.int64)

    from repro.sim.kernel import _branch_folds, _fold_prefix_tables

    def folds_for(width: int, intervals: Tuple[Tuple[int, int], ...]):
        prefix = shared.get(
            ("ittage-prefix", stream_key, width),
            lambda: _fold_prefix_tables(ext, width),
        )
        return (
            _branch_folds(prefix, consumed, intervals, width),
            _branch_folds(prefix, final_consumed, intervals, width),
        )

    def grouped_folds(widths: Tuple[int, ...]):
        """Per-table fold planes, computing each distinct width once."""
        per_table = [None] * num_tagged
        finals = [0] * num_tagged
        for width in sorted(set(widths)):
            members = tuple(
                t for t in range(num_tagged) if widths[t] == width
            )
            intervals = tuple((0, lengths[t]) for t in members)
            branch_vals, final_vals = shared.get(
                ("ittage-folds", stream_key, width, intervals),
                lambda w=width, iv=intervals: folds_for(w, iv),
            )
            for column, t in enumerate(members):
                per_table[t] = branch_vals[:, column]
                finals[t] = int(final_vals[0, column])
        return per_table, finals

    index_widths = tuple(index_bits for _ in range(num_tagged))
    tag_widths = tuple(cfg.tag_bits)
    tag2_widths = tuple(max(1, bits - 1) for bits in cfg.tag_bits)
    index_folds, index_finals = grouped_folds(index_widths)
    tag_folds, tag_finals = grouped_folds(tag_widths)
    tag2_folds, tag2_finals = grouped_folds(tag2_widths)

    # Path history: one 2-bit code per record, every branch a window.
    codes = shared.get(
        ("path-codes",),
        lambda: ((trace.pcs >> np.uint64(2)) & np.uint64(3)).astype(
            np.int64
        ),
    )
    path0 = predictor._path
    paths = _path_values(codes, indirect_idx, path0, cfg.path_bits)
    path_final = int(
        _path_values(
            codes,
            np.asarray([derived.records], dtype=np.int64),
            path0,
            cfg.path_bits,
        )[0]
    )

    # Hash-mix planes over the distinct static PCs.
    unique_pcs, pc_inverse = shared.get(
        ("pc-unique",),
        lambda: np.unique(branch_pcs, return_inverse=True),
    )

    def mixes(salt: int) -> np.ndarray:
        return shared.get(
            ("pc-mix", salt),
            lambda: np.fromiter(
                (
                    mix_pc(int(pc), salt=salt)
                    for pc in unique_pcs.tolist()
                ),
                dtype=np.uint64,
                count=len(unique_pcs),
            ),
        )

    base_idx = (
        mixes(0)[pc_inverse] % np.uint64(cfg.base_entries)
    ).astype(np.int64)

    index_mask = np.uint64((1 << index_bits) - 1)
    path_mask = np.uint64((1 << min(cfg.path_bits, 16)) - 1)
    masked_paths = paths.astype(np.uint64) & path_mask
    idx = np.empty((branch_count, num_tagged), dtype=np.int64)
    tag = np.empty((branch_count, num_tagged), dtype=np.int64)
    for t in range(num_tagged):
        mixed = (
            mixes(t + 1)[pc_inverse]
            ^ index_folds[t]
            ^ (masked_paths >> np.uint64(t & 3))
        )
        idx[:, t] = ((mixed & index_mask) % np.uint64(
            cfg.tagged_entries
        )).astype(np.int64)
        tag_mask = np.uint64((1 << cfg.tag_bits[t]) - 1)
        tag[:, t] = (
            (
                mixes(0x7AC + t)[pc_inverse]
                ^ tag_folds[t]
                ^ (tag2_folds[t] << np.uint64(1))
            )
            & tag_mask
        ).astype(np.int64)

    return {
        "idx": idx,
        "tag": tag,
        "base_idx": base_idx,
        "targets": branch_targets,
        "branch_pcs": branch_pcs,
        "indirect_idx": indirect_idx,
        "stream": ext,
        "pushed": total,
        "path_final": path_final,
        "index_finals": index_finals,
        "tag_finals": tag_finals,
        "tag2_finals": tag2_finals,
        "predictions": np.zeros(branch_count, dtype=np.uint64),
        "valid": np.zeros(branch_count, dtype=np.uint8),
    }


# ----------------------------------------------------------------------
# Prediction-dependent replay (two interchangeable implementations)
# ----------------------------------------------------------------------


def _replay_python(
    idx_rows: List[List[int]],
    tag_rows: List[List[int]],
    base_rows: List[int],
    target_list: List[int],
    tab_tags: List[List[int]],
    tab_targets: List[List[int]],
    tab_ctr: List[List[int]],
    tab_useful: List[List[int]],
    tab_valid: List[List[int]],
    base_targets: List[int],
    base_ctr: List[int],
    base_valid: List[int],
    num_tagged: int,
    entries: int,
    conf_max: int,
    useful_max: int,
    use_alt_min: int,
    use_alt_max: int,
    u_reset_period: int,
    use_alt: int,
    updates: int,
    rng_random,
    predictions: List[int],
    valid_out: List[int],
) -> Tuple[int, int]:
    """Pure-Python replay over the precomputed index/tag planes.

    Statement-for-statement the scalar ``predict_target``/``train``
    pair, with the hash pipeline stripped out; returns the final
    ``(use_alt, updates)`` meta-state.
    """
    for b in range(len(base_rows)):
        indices = idx_rows[b]
        tags = tag_rows[b]
        target = target_list[b]

        provider_t = -1
        provider_i = -1
        alt_t = -1
        alt_i = -1
        for t in range(num_tagged - 1, -1, -1):
            i = indices[t]
            if tab_valid[t][i] and tab_tags[t][i] == tags[t]:
                if provider_t < 0:
                    provider_t = t
                    provider_i = i
                else:
                    alt_t = t
                    alt_i = i
                    break

        bi = base_rows[b]
        base_present = base_valid[bi]
        base_target = base_targets[bi] if base_present else None

        if provider_t >= 0:
            provider_target = tab_targets[provider_t][provider_i]
            provider_ctr = tab_ctr[provider_t][provider_i]
        else:
            provider_target = None
            provider_ctr = 0
        if alt_t >= 0:
            alt_target: Optional[int] = tab_targets[alt_t][alt_i]
        else:
            alt_target = base_target

        if provider_t < 0:
            final = base_target
        elif provider_ctr == 0 and use_alt >= 0 and alt_target is not None:
            final = alt_target
        else:
            final = provider_target

        if final is not None:
            predictions[b] = final
            valid_out[b] = 1
        mispredicted = final != target

        if provider_t >= 0:
            provider_correct = provider_target == target
            alt_correct = alt_target == target
            if provider_ctr == 0 and provider_target != alt_target:
                if alt_correct and not provider_correct:
                    if use_alt < use_alt_max:
                        use_alt += 1
                elif provider_correct and not alt_correct:
                    if use_alt > use_alt_min:
                        use_alt -= 1
            if provider_target != alt_target:
                u = tab_useful[provider_t][provider_i]
                if provider_correct and u < useful_max:
                    tab_useful[provider_t][provider_i] = u + 1
                elif not provider_correct and u > 0:
                    tab_useful[provider_t][provider_i] = u - 1
            if provider_correct:
                if tab_ctr[provider_t][provider_i] < conf_max:
                    tab_ctr[provider_t][provider_i] += 1
            elif tab_ctr[provider_t][provider_i] > 0:
                tab_ctr[provider_t][provider_i] -= 1
            else:
                tab_targets[provider_t][provider_i] = target
                tab_ctr[provider_t][provider_i] = 1

        if not base_present:
            base_valid[bi] = 1
            base_targets[bi] = target
            base_ctr[bi] = 1
        elif base_targets[bi] == target:
            if base_ctr[bi] < conf_max:
                base_ctr[bi] += 1
        elif base_ctr[bi] > 0:
            base_ctr[bi] -= 1
        else:
            base_targets[bi] = target
            base_ctr[bi] = 1

        if mispredicted:
            first = -1
            second = -1
            for t in range(provider_t + 1, num_tagged):
                if tab_useful[t][indices[t]] == 0:
                    if first < 0:
                        first = t
                    else:
                        second = t
                        break
            if first < 0:
                for t in range(provider_t + 1, num_tagged):
                    i = indices[t]
                    if tab_useful[t][i] > 0:
                        tab_useful[t][i] -= 1
            else:
                chosen = first
                if second >= 0:
                    # Seznec's geometric skew over the free candidates,
                    # in the scalar loop's exact RNG draw order.
                    candidate = second
                    while True:
                        if rng_random() < 0.5:
                            break
                        chosen = candidate
                        candidate = -1
                        for t in range(chosen + 1, num_tagged):
                            if tab_useful[t][indices[t]] == 0:
                                candidate = t
                                break
                        if candidate < 0:
                            break
                i = indices[chosen]
                tab_valid[chosen][i] = 1
                tab_tags[chosen][i] = tags[chosen]
                tab_targets[chosen][i] = target
                tab_ctr[chosen][i] = 0
                tab_useful[chosen][i] = 0

        updates += 1
        if updates % u_reset_period == 0:
            zeros = [0] * entries
            for t in range(num_tagged):
                tab_useful[t] = list(zeros)
    return use_alt, updates


def _replay(predictor: ITTAGE, prep: dict) -> None:
    """Run the prediction-dependent replay and write the state back."""
    cfg = predictor.config
    tables = predictor._tables
    num_tagged = cfg.num_tagged
    entries = cfg.tagged_entries
    branch_count = len(prep["base_idx"])

    tab_tags = np.stack([t.tags for t in tables]) if num_tagged else (
        np.zeros((0, entries), dtype=np.int64)
    )
    tab_targets = np.stack([t.targets for t in tables]) if num_tagged else (
        np.zeros((0, entries), dtype=np.uint64)
    )
    tab_ctr = np.stack([t.ctr for t in tables]) if num_tagged else (
        np.zeros((0, entries), dtype=np.int8)
    )
    tab_useful = np.stack([t.useful for t in tables]) if num_tagged else (
        np.zeros((0, entries), dtype=np.int8)
    )
    tab_valid = (
        np.stack([t.valid for t in tables]).astype(np.uint8)
        if num_tagged
        else np.zeros((0, entries), dtype=np.uint8)
    )
    base_targets = predictor._base_targets.copy()
    base_ctr = predictor._base_ctr.copy()
    base_valid = predictor._base_valid.astype(np.uint8)

    use_alt = predictor._use_alt
    updates = predictor._updates
    predictions = prep["predictions"]
    valid_out = prep["valid"]

    if branch_count:
        fn = native.load("ittage_replay")
        if fn is not None:
            rng_callback = native.RNG_CALLBACK(predictor._rng.random)
            state = np.asarray([use_alt, updates], dtype=np.int64)
            fn(
                branch_count,
                num_tagged,
                entries,
                len(base_targets),
                prep["idx"].ctypes.data,
                prep["tag"].ctypes.data,
                prep["base_idx"].ctypes.data,
                prep["targets"].ctypes.data,
                tab_tags.ctypes.data,
                tab_targets.ctypes.data,
                tab_ctr.ctypes.data,
                tab_useful.ctypes.data,
                tab_valid.ctypes.data,
                base_targets.ctypes.data,
                base_ctr.ctypes.data,
                base_valid.ctypes.data,
                predictor._conf_max,
                predictor._useful_max,
                predictor._use_alt_min,
                predictor._use_alt_max,
                cfg.u_reset_period,
                state.ctypes.data,
                rng_callback,
                predictions.ctypes.data,
                valid_out.ctypes.data,
            )
            use_alt = int(state[0])
            updates = int(state[1])
        else:
            pred_list = [0] * branch_count
            valid_list = [0] * branch_count
            tags_l = [row.tolist() for row in tab_tags]
            tgts_l = [row.tolist() for row in tab_targets]
            ctr_l = [row.tolist() for row in tab_ctr]
            useful_l = [row.tolist() for row in tab_useful]
            valid_l = [row.tolist() for row in tab_valid]
            b_tgt = base_targets.tolist()
            b_ctr = base_ctr.tolist()
            b_val = base_valid.tolist()
            use_alt, updates = _replay_python(
                prep["idx"].tolist(),
                prep["tag"].tolist(),
                prep["base_idx"].tolist(),
                prep["targets"].tolist(),
                tags_l,
                tgts_l,
                ctr_l,
                useful_l,
                valid_l,
                b_tgt,
                b_ctr,
                b_val,
                num_tagged,
                entries,
                predictor._conf_max,
                predictor._useful_max,
                predictor._use_alt_min,
                predictor._use_alt_max,
                cfg.u_reset_period,
                use_alt,
                updates,
                predictor._rng.random,
                pred_list,
                valid_list,
            )
            for t in range(num_tagged):
                tab_tags[t] = tags_l[t]
                tab_targets[t] = tgts_l[t]
                tab_ctr[t] = ctr_l[t]
                tab_useful[t] = useful_l[t]
                tab_valid[t] = valid_l[t]
            base_targets = np.asarray(b_tgt, dtype=np.uint64)
            base_ctr = np.asarray(b_ctr, dtype=np.int8)
            base_valid = np.asarray(b_val, dtype=np.uint8)
            predictions[:] = pred_list
            valid_out[:] = valid_list

    # --- state write-back ---------------------------------------------
    for t, table in enumerate(tables):
        table.tags = tab_tags[t].copy()
        table.targets = tab_targets[t].copy()
        table.ctr = tab_ctr[t].copy()
        table.useful = tab_useful[t].copy()
        table.valid = tab_valid[t].astype(bool)
    predictor._base_targets = base_targets
    predictor._base_ctr = base_ctr
    predictor._base_valid = base_valid.astype(bool)
    predictor._use_alt = use_alt
    predictor._updates = updates

    ring = predictor._ring
    capacity = ring._capacity
    head0 = ring._head
    pushed = prep["pushed"]
    stream = prep["stream"]
    total = len(stream)
    buffer0 = ring._buffer
    fresh = [0] * capacity
    for age in range(capacity):
        if age < pushed:
            bit = int(stream[total - 1 - age])
        else:
            bit = buffer0[(head0 - 1 - (age - pushed)) % capacity]
        fresh[(head0 + pushed - 1 - age) % capacity] = bit
    ring._buffer = fresh
    ring._head = (head0 + pushed) % capacity

    for t in range(num_tagged):
        predictor._index_folds[t].fold = prep["index_finals"][t]
        predictor._tag_folds[t].fold = prep["tag_finals"][t]
        predictor._tag_folds2[t].fold = prep["tag2_finals"][t]
    predictor._path = prep["path_final"]
    predictor._ctx = None


# ----------------------------------------------------------------------
# The kernel
# ----------------------------------------------------------------------


def simulate_columnar_ittage(
    predictor: ITTAGE,
    trace: Trace,
    derived: DerivedPlane,
    shared,
    warmup_records: int = 0,
    collect_per_pc: bool = False,
    prediction_sink: Optional[Dict[str, np.ndarray]] = None,
) -> SimulationResult:
    """Columnar ITTAGE replay, bit-identical to the scalar engine.

    Called through :func:`repro.sim.kernel.simulate_columnar`, which
    validates support and the derived plane and owns the shared
    precompute; see that function for the caller contract.
    """
    prep = _prepare(predictor, trace, derived, shared)
    _replay(predictor, prep)

    predictions = prep["predictions"]
    prediction_valid = prep["valid"].astype(bool)
    indirect_idx = prep["indirect_idx"]
    branch_targets = prep["targets"]
    branch_pcs = prep["branch_pcs"]

    if prediction_sink is not None:
        prediction_sink["indirect_idx"] = indirect_idx.copy()
        prediction_sink["valid"] = prediction_valid.copy()
        prediction_sink["predictions"] = predictions.copy()

    counted = indirect_idx >= warmup_records
    mispredicted = counted & (
        ~prediction_valid | (predictions != branch_targets)
    )
    by_pc: Dict[int, int] = {}
    if collect_per_pc and mispredicted.any():
        miss_pcs, miss_counts = np.unique(
            branch_pcs[mispredicted], return_counts=True
        )
        by_pc = {
            int(pc): int(count)
            for pc, count in zip(miss_pcs.tolist(), miss_counts.tolist())
        }

    return_indices = np.asarray(derived.return_idx)
    returns = 0
    return_mispredictions = 0
    if len(return_indices):
        counted_returns = return_indices >= warmup_records
        returns = int(np.count_nonzero(counted_returns))
        return_mispredictions = int(
            np.count_nonzero(
                counted_returns & (np.asarray(derived.return_ok) == 0)
            )
        )

    return SimulationResult(
        trace_name=trace.name,
        predictor_name=predictor.name,
        total_instructions=trace.total_instructions(),
        indirect_branches=int(np.count_nonzero(counted)),
        indirect_mispredictions=int(np.count_nonzero(mispredicted)),
        return_branches=returns,
        return_mispredictions=return_mispredictions,
        conditional_branches=derived.conditionals,
        mispredictions_by_pc=by_pc,
    )
