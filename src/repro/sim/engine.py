"""The simulation loop: one predictor over one trace.

Mirrors the CBP infrastructure's discipline (§4.2):

* **conditional branches** feed the predictor's conditional-history
  hook (and, for VPC, the shared conditional predictor);
* **indirect jumps and calls** are predicted, scored, trained, and then
  retired into the predictor's history;
* **returns** are predicted by the return-address stack and excluded
  from indirect MPKI;
* **direct calls** push the RAS; direct jumps just retire.

The loop works on plain Python scalars extracted from the trace columns
once up front — constructing a record object per branch would dominate
runtime at multi-million-record scale.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.predictors.base import IndirectBranchPredictor
from repro.sim.counters import SimCounters
from repro.sim.metrics import SimulationResult
from repro.sim.ras import ReturnAddressStack
from repro.trace.record import BranchType
from repro.trace.stream import Trace

_COND = int(BranchType.CONDITIONAL)
_DIRECT_JUMP = int(BranchType.DIRECT_JUMP)
_DIRECT_CALL = int(BranchType.DIRECT_CALL)
_INDIRECT_JUMP = int(BranchType.INDIRECT_JUMP)
_INDIRECT_CALL = int(BranchType.INDIRECT_CALL)
_RETURN = int(BranchType.RETURN)


def simulate(
    predictor: IndirectBranchPredictor,
    trace: Trace,
    ras_depth: int = 32,
    warmup_records: int = 0,
    collect_per_pc: bool = False,
    counters: Optional[SimCounters] = None,
) -> SimulationResult:
    """Run ``predictor`` over ``trace`` and return its result.

    Args:
        predictor: the indirect predictor under test (mutated in place).
        trace: the branch trace to replay.
        ras_depth: depth of the return-address stack.
        warmup_records: leading records whose mispredictions are not
            counted (predictors still train on them).
        collect_per_pc: also record per-static-branch misprediction
            counts (slower; for diagnostics).
        counters: when given, profile the run — per-phase wall times and
            the predictor's own hot-path counters are accumulated into
            ``counters`` and this cell's numbers land on the result's
            ``profile`` field.  The unprofiled path pays nothing for
            this.
    """
    pcs = trace.pcs.tolist()
    types = trace.types.tolist()
    takens = trace.takens.tolist()
    targets = trace.targets.tolist()

    ras = ReturnAddressStack(ras_depth)
    indirect = 0
    mispredictions = 0
    returns = 0
    return_mispredictions = 0
    conditionals = 0
    by_pc: Dict[int, int] = {}

    on_conditional = predictor.on_conditional
    on_retired = predictor.on_retired
    predict_target = predictor.predict_target
    train = predictor.train

    cell: Optional[SimCounters] = None
    if counters is not None:
        # Profiling wraps the three hot callables with timers.  The
        # wrappers only exist on this branch, so the common unprofiled
        # path keeps its direct bound-method calls.
        cell = SimCounters()
        perf = time.perf_counter

        def on_conditional(pc, taken, _inner=on_conditional):
            began = perf()
            _inner(pc, taken)
            cell.conditional_seconds += perf() - began

        def predict_target(pc, _inner=predict_target):
            began = perf()
            prediction = _inner(pc)
            cell.predict_seconds += perf() - began
            return prediction

        def train(pc, target, _inner=train):
            began = perf()
            _inner(pc, target)
            cell.train_seconds += perf() - began

        loop_started = perf()

    # `skip` counts down the warmup prefix so the loop needs no record
    # index — iterating the zipped columns directly beats four list
    # indexings per record at multi-million-record scale.
    skip = warmup_records
    for pc, branch_type, taken, target in zip(pcs, types, takens, targets):
        if branch_type == _COND:
            on_conditional(pc, taken)
            conditionals += 1
            if skip:
                skip -= 1
            continue

        counted = not skip
        if skip:
            skip -= 1

        if branch_type == _INDIRECT_JUMP or branch_type == _INDIRECT_CALL:
            prediction: Optional[int] = predict_target(pc)
            if counted:
                indirect += 1
                if prediction != target:
                    mispredictions += 1
                    if collect_per_pc:
                        by_pc[pc] = by_pc.get(pc, 0) + 1
            train(pc, target)
            on_retired(pc, branch_type, target)
            if branch_type == _INDIRECT_CALL:
                ras.push(pc + 4)
        elif branch_type == _RETURN:
            ras_prediction = ras.predict()
            ras.pop()
            if counted:
                returns += 1
                if ras_prediction != target:
                    return_mispredictions += 1
            on_retired(pc, branch_type, target)
        elif branch_type == _DIRECT_CALL:
            ras.push(pc + 4)
            on_retired(pc, branch_type, target)
        else:  # direct jump
            on_retired(pc, branch_type, target)

    result = SimulationResult(
        trace_name=trace.name,
        predictor_name=predictor.name,
        total_instructions=trace.total_instructions(),
        indirect_branches=indirect,
        indirect_mispredictions=mispredictions,
        return_branches=returns,
        return_mispredictions=return_mispredictions,
        conditional_branches=conditionals,
        mispredictions_by_pc=by_pc,
    )
    if cell is not None:
        cell.elapsed_seconds = time.perf_counter() - loop_started
        cell.records = len(pcs)
        cell.conditionals = conditionals
        cell.harvest(predictor)
        result.profile = cell.as_dict()
        counters.merge(cell)
    return result


def simulate_conditional(
    predictor,
    trace: Trace,
    warmup_records: int = 0,
) -> SimulationResult:
    """Run a *conditional* predictor over a trace's conditional stream.

    Used by the §6 consolidation study (BLBP as a conditional predictor)
    and for measuring standalone conditional substrates.  Non-conditional
    branches are skipped — conditional predictors maintain their own
    histories from the outcomes alone.  Returns a
    :class:`SimulationResult` whose "indirect" fields carry the
    conditional counts so the MPKI helpers apply unchanged.
    """
    pcs = trace.pcs.tolist()
    types = trace.types.tolist()
    takens = trace.takens.tolist()

    count = 0
    mispredictions = 0
    predict = predictor.predict
    update = predictor.update
    for index in range(len(pcs)):
        if types[index] != _COND:
            continue
        pc = pcs[index]
        taken = takens[index]
        prediction = predict(pc)
        if index >= warmup_records:
            count += 1
            if prediction != taken:
                mispredictions += 1
        update(pc, taken)

    return SimulationResult(
        trace_name=trace.name,
        predictor_name=type(predictor).__name__,
        total_instructions=trace.total_instructions(),
        indirect_branches=count,
        indirect_mispredictions=mispredictions,
        conditional_branches=count,
    )
