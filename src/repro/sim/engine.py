"""The simulation loop: one predictor over one trace.

Mirrors the CBP infrastructure's discipline (§4.2):

* **conditional branches** feed the predictor's conditional-history
  hook (and, for VPC, the shared conditional predictor);
* **indirect jumps and calls** are predicted, scored, trained, and then
  retired into the predictor's history;
* **returns** are predicted by the return-address stack and excluded
  from indirect MPKI;
* **direct calls** push the RAS; direct jumps just retire.

The loop works on plain Python scalars extracted from the trace columns
once up front — constructing a record object per branch would dominate
runtime at multi-million-record scale.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple

from repro.predictors.base import IndirectBranchPredictor
from repro.sim.checkpoint import SimulationCheckpoint, save_checkpoint
from repro.sim.counters import SimCounters
from repro.sim.metrics import SimulationResult
from repro.sim.ras import ReturnAddressStack
from repro.trace.record import BranchType
from repro.trace.stream import Trace

_COND = int(BranchType.CONDITIONAL)
_DIRECT_JUMP = int(BranchType.DIRECT_JUMP)
_DIRECT_CALL = int(BranchType.DIRECT_CALL)
_INDIRECT_JUMP = int(BranchType.INDIRECT_JUMP)
_INDIRECT_CALL = int(BranchType.INDIRECT_CALL)
_RETURN = int(BranchType.RETURN)


def _replay_span(
    pcs,
    types,
    takens,
    targets,
    on_conditional,
    predict_target,
    train,
    on_retired,
    ras,
    collect_per_pc,
    by_pc,
    skip,
    indirect,
    mispredictions,
    returns,
    return_mispredictions,
    conditionals,
) -> Tuple[int, int, int, int, int, int]:
    """The simulation hot loop over one span of trace columns.

    The checkpoint-off path calls this once over the whole trace, so
    checkpointing must cost nothing here: counters stay plain locals,
    history advances through the pre-bound callables, and the function
    hands its accumulators back as a tuple.  ``by_pc`` is mutated in
    place.
    """
    for pc, branch_type, taken, target in zip(pcs, types, takens, targets):
        if branch_type == _COND:
            on_conditional(pc, taken)
            conditionals += 1
            if skip:
                skip -= 1
            continue

        counted = not skip
        if skip:
            skip -= 1

        if branch_type == _INDIRECT_JUMP or branch_type == _INDIRECT_CALL:
            prediction: Optional[int] = predict_target(pc)
            if counted:
                indirect += 1
                if prediction != target:
                    mispredictions += 1
                    if collect_per_pc:
                        by_pc[pc] = by_pc.get(pc, 0) + 1
            train(pc, target)
            on_retired(pc, branch_type, target)
            if branch_type == _INDIRECT_CALL:
                ras.push(pc + 4)
        elif branch_type == _RETURN:
            ras_prediction = ras.predict()
            ras.pop()
            if counted:
                returns += 1
                if ras_prediction != target:
                    return_mispredictions += 1
            on_retired(pc, branch_type, target)
        elif branch_type == _DIRECT_CALL:
            ras.push(pc + 4)
            on_retired(pc, branch_type, target)
        else:  # direct jump
            on_retired(pc, branch_type, target)
    return skip, indirect, mispredictions, returns, return_mispredictions, conditionals


def simulate(
    predictor: IndirectBranchPredictor,
    trace: Trace,
    ras_depth: int = 32,
    warmup_records: int = 0,
    collect_per_pc: bool = False,
    counters: Optional[SimCounters] = None,
    checkpoint_every: int = 0,
    checkpoint_path: Optional[str] = None,
    resume_from: Optional[SimulationCheckpoint] = None,
    on_checkpoint: Optional[Callable[[SimulationCheckpoint], None]] = None,
) -> SimulationResult:
    """Run ``predictor`` over ``trace`` and return its result.

    Args:
        predictor: the indirect predictor under test (mutated in place).
        trace: the branch trace to replay.
        ras_depth: depth of the return-address stack.
        warmup_records: leading records whose mispredictions are not
            counted (predictors still train on them).
        collect_per_pc: also record per-static-branch misprediction
            counts (slower; for diagnostics).
        counters: when given, profile the run — per-phase wall times and
            the predictor's own hot-path counters are accumulated into
            ``counters`` and this cell's numbers land on the result's
            ``profile`` field.  The unprofiled path pays nothing for
            this.
        checkpoint_every: when > 0, snapshot the full simulation state
            (predictor, RAS, cursor, accumulators) after every this-many
            records into ``checkpoint_path`` and/or ``on_checkpoint``.
            Zero (the default) runs the whole trace in one span and pays
            nothing for the checkpoint machinery.
        checkpoint_path: file that receives each checkpoint (written
            atomically).  Requires ``checkpoint_every > 0``.
        resume_from: a :class:`SimulationCheckpoint` to continue from —
            the predictor must be freshly constructed with the same
            configuration; its state, the RAS, the cursor, and all
            accumulators are restored before replay.  The final result
            is per-branch identical to an uninterrupted run.
        on_checkpoint: optional callback receiving each checkpoint (for
            tests and in-process supervisors).
    """
    if checkpoint_every < 0:
        raise ValueError(
            f"checkpoint_every must be >= 0, got {checkpoint_every}"
        )
    if checkpoint_every and checkpoint_path is None and on_checkpoint is None:
        raise ValueError(
            "checkpoint_every needs a checkpoint_path or on_checkpoint sink"
        )

    pcs = trace.pcs.tolist()
    types = trace.types.tolist()
    takens = trace.takens.tolist()
    targets = trace.targets.tolist()
    total = len(pcs)

    ras = ReturnAddressStack(ras_depth)
    indirect = 0
    mispredictions = 0
    returns = 0
    return_mispredictions = 0
    conditionals = 0
    by_pc: Dict[int, int] = {}
    skip = warmup_records
    cursor = 0

    if resume_from is not None:
        if resume_from.trace_name != trace.name:
            raise ValueError(
                f"checkpoint is for trace {resume_from.trace_name!r}, "
                f"not {trace.name!r}"
            )
        if resume_from.predictor_name != predictor.name:
            raise ValueError(
                f"checkpoint is for predictor "
                f"{resume_from.predictor_name!r}, not {predictor.name!r}"
            )
        if resume_from.cursor > total:
            raise ValueError(
                f"checkpoint cursor {resume_from.cursor} beyond trace "
                f"length {total}"
            )
        predictor.load_state(resume_from.predictor)
        ras.load_state(resume_from.ras)
        cursor = resume_from.cursor
        skip = resume_from.skip
        indirect = resume_from.indirect
        mispredictions = resume_from.mispredictions
        returns = resume_from.returns
        return_mispredictions = resume_from.return_mispredictions
        conditionals = resume_from.conditionals
        by_pc = dict(resume_from.by_pc)

    started_at = cursor

    on_conditional = predictor.on_conditional
    on_retired = predictor.on_retired
    predict_target = predictor.predict_target
    train = predictor.train

    cell: Optional[SimCounters] = None
    if counters is not None:
        # Profiling wraps the three hot callables with timers.  The
        # wrappers only exist on this branch, so the common unprofiled
        # path keeps its direct bound-method calls.
        cell = SimCounters()
        perf = time.perf_counter

        def on_conditional(pc, taken, _inner=on_conditional):
            began = perf()
            _inner(pc, taken)
            cell.conditional_seconds += perf() - began

        def predict_target(pc, _inner=predict_target):
            began = perf()
            prediction = _inner(pc)
            cell.predict_seconds += perf() - began
            return prediction

        def train(pc, target, _inner=train):
            began = perf()
            _inner(pc, target)
            cell.train_seconds += perf() - began

        loop_started = perf()

    if not checkpoint_every and cursor == 0:
        # Fast path: the whole trace in one span, zero checkpoint cost.
        (
            skip,
            indirect,
            mispredictions,
            returns,
            return_mispredictions,
            conditionals,
        ) = _replay_span(
            pcs, types, takens, targets,
            on_conditional, predict_target, train, on_retired,
            ras, collect_per_pc, by_pc,
            skip, indirect, mispredictions,
            returns, return_mispredictions, conditionals,
        )
    else:
        span = checkpoint_every if checkpoint_every else total
        while cursor < total:
            upper = min(cursor + span, total)
            (
                skip,
                indirect,
                mispredictions,
                returns,
                return_mispredictions,
                conditionals,
            ) = _replay_span(
                pcs[cursor:upper], types[cursor:upper],
                takens[cursor:upper], targets[cursor:upper],
                on_conditional, predict_target, train, on_retired,
                ras, collect_per_pc, by_pc,
                skip, indirect, mispredictions,
                returns, return_mispredictions, conditionals,
            )
            cursor = upper
            if checkpoint_every and cursor < total:
                checkpoint = SimulationCheckpoint(
                    trace_name=trace.name,
                    predictor_name=predictor.name,
                    cursor=cursor,
                    skip=skip,
                    indirect=indirect,
                    mispredictions=mispredictions,
                    returns=returns,
                    return_mispredictions=return_mispredictions,
                    conditionals=conditionals,
                    by_pc=dict(by_pc),
                    ras=ras.state_dict(),
                    predictor=predictor.state_dict(),
                )
                if checkpoint_path is not None:
                    save_checkpoint(checkpoint, checkpoint_path)
                if on_checkpoint is not None:
                    on_checkpoint(checkpoint)

    result = SimulationResult(
        trace_name=trace.name,
        predictor_name=predictor.name,
        total_instructions=trace.total_instructions(),
        indirect_branches=indirect,
        indirect_mispredictions=mispredictions,
        return_branches=returns,
        return_mispredictions=return_mispredictions,
        conditional_branches=conditionals,
        mispredictions_by_pc=by_pc,
    )
    if cell is not None:
        cell.elapsed_seconds = time.perf_counter() - loop_started
        # Only the records this process actually replayed (a resumed
        # cell's profile measures its own work, not the whole trace).
        cell.records = total - started_at
        cell.conditionals = conditionals
        cell.harvest(predictor)
        result.profile = cell.as_dict()
        counters.merge(cell)
    return result


def simulate_conditional(
    predictor,
    trace: Trace,
    warmup_records: int = 0,
) -> SimulationResult:
    """Run a *conditional* predictor over a trace's conditional stream.

    Used by the §6 consolidation study (BLBP as a conditional predictor)
    and for measuring standalone conditional substrates.  Non-conditional
    branches are skipped — conditional predictors maintain their own
    histories from the outcomes alone.  Returns a
    :class:`SimulationResult` whose "indirect" fields carry the
    conditional counts so the MPKI helpers apply unchanged.
    """
    pcs = trace.pcs.tolist()
    types = trace.types.tolist()
    takens = trace.takens.tolist()

    count = 0
    mispredictions = 0
    predict = predictor.predict
    update = predictor.update
    for index in range(len(pcs)):
        if types[index] != _COND:
            continue
        pc = pcs[index]
        taken = takens[index]
        prediction = predict(pc)
        if index >= warmup_records:
            count += 1
            if prediction != taken:
                mispredictions += 1
        update(pc, taken)

    return SimulationResult(
        trace_name=trace.name,
        predictor_name=type(predictor).__name__,
        total_instructions=trace.total_instructions(),
        indirect_branches=count,
        indirect_mispredictions=mispredictions,
        conditional_branches=count,
    )
