"""The simulation loop: one predictor over one trace.

Mirrors the CBP infrastructure's discipline (§4.2):

* **conditional branches** feed the predictor's conditional-history
  hook (and, for VPC, the shared conditional predictor);
* **indirect jumps and calls** are predicted, scored, trained, and then
  retired into the predictor's history;
* **returns** are predicted by the return-address stack and excluded
  from indirect MPKI;
* **direct calls** push the RAS; direct jumps just retire.

The loop works on plain Python scalars extracted from the trace columns
once up front — constructing a record object per branch would dominate
runtime at multi-million-record scale.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from dataclasses import field as dataclass_field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.predictors.base import IndirectBranchPredictor
from repro.sim import kernel
from repro.sim.checkpoint import (
    SimulationCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.sim.counters import SimCounters
from repro.sim.metrics import SimulationResult
from repro.sim.ras import ReturnAddressStack
from repro.trace.derived import DerivedPlane
from repro.trace.record import BranchType
from repro.trace.stream import Trace

#: Recognized simulation backends.  "scalar" is the per-branch Python
#: loop below; "columnar" dispatches eligible cells to the batch tensor
#: kernels in :mod:`repro.sim.kernel` (bit-identical results) and falls
#: back to the scalar loop otherwise — warning when the fallback is due
#: to an unsupported predictor; "columnar-strict" refuses to fall back
#: and raises :class:`ColumnarUnsupportedError` carrying the reason.
BACKENDS: Tuple[str, ...] = ("scalar", "columnar", "columnar-strict")


class ColumnarUnsupportedError(RuntimeError):
    """``backend="columnar-strict"`` could not use the columnar kernels.

    The message carries the :func:`repro.sim.kernel.columnar_support`
    reason (which predictor type, and what to do about it) or names the
    engine feature the kernels do not cover.
    """


def _check_backend(backend: str) -> None:
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )


def _columnar_blockers(
    checkpoint_every: int,
    checkpoint_path: Optional[str],
    resume_from: Optional[SimulationCheckpoint],
    counters: Optional[SimCounters],
) -> List[str]:
    """Engine features the columnar kernels do not cover."""
    blockers = []
    if checkpoint_every or checkpoint_path is not None:
        blockers.append("checkpointing (checkpoint_every/checkpoint_path)")
    if resume_from is not None:
        blockers.append("resume (resume_from)")
    if counters is not None:
        blockers.append("profiling (counters)")
    return blockers

_COND = int(BranchType.CONDITIONAL)
_DIRECT_JUMP = int(BranchType.DIRECT_JUMP)
_DIRECT_CALL = int(BranchType.DIRECT_CALL)
_INDIRECT_JUMP = int(BranchType.INDIRECT_JUMP)
_INDIRECT_CALL = int(BranchType.INDIRECT_CALL)
_RETURN = int(BranchType.RETURN)


class _DerivedRAS:
    """A RAS stand-in that replays precomputed per-return predictions.

    The return-address stack is a pure function of the trace, so when a
    :class:`~repro.trace.derived.DerivedPlane` is available the push/pop
    replay can be skipped entirely: ``predict`` serves the precomputed
    prediction for the next return and ``pop`` advances past it.  Drop-in
    for :class:`ReturnAddressStack` inside the span loop.
    """

    __slots__ = ("_preds", "_cursor")

    def __init__(self, predictions: List[Optional[int]]) -> None:
        self._preds = predictions
        self._cursor = 0

    def predict(self) -> Optional[int]:
        return self._preds[self._cursor]

    def pop(self) -> None:
        self._cursor += 1

    def push(self, address: int) -> None:  # pragma: no cover - trivially empty
        pass


def _replay_span(
    pcs,
    types,
    takens,
    targets,
    on_conditional,
    predict_target,
    train,
    on_retired,
    ras,
    collect_per_pc,
    by_pc,
    skip,
    indirect,
    mispredictions,
    returns,
    return_mispredictions,
    conditionals,
) -> Tuple[int, int, int, int, int, int]:
    """The simulation hot loop over one span of trace columns.

    The checkpoint-off path calls this once over the whole trace, so
    checkpointing must cost nothing here: counters stay plain locals,
    history advances through the pre-bound callables, and the function
    hands its accumulators back as a tuple.  ``by_pc`` is mutated in
    place.
    """
    for pc, branch_type, taken, target in zip(pcs, types, takens, targets):
        if branch_type == _COND:
            on_conditional(pc, taken)
            conditionals += 1
            if skip:
                skip -= 1
            continue

        counted = not skip
        if skip:
            skip -= 1

        if branch_type == _INDIRECT_JUMP or branch_type == _INDIRECT_CALL:
            prediction: Optional[int] = predict_target(pc)
            if counted:
                indirect += 1
                if prediction != target:
                    mispredictions += 1
                    if collect_per_pc:
                        by_pc[pc] = by_pc.get(pc, 0) + 1
            train(pc, target)
            on_retired(pc, branch_type, target)
            if branch_type == _INDIRECT_CALL:
                ras.push(pc + 4)
        elif branch_type == _RETURN:
            ras_prediction = ras.predict()
            ras.pop()
            if counted:
                returns += 1
                if ras_prediction != target:
                    return_mispredictions += 1
            on_retired(pc, branch_type, target)
        elif branch_type == _DIRECT_CALL:
            ras.push(pc + 4)
            on_retired(pc, branch_type, target)
        else:  # direct jump
            on_retired(pc, branch_type, target)
    return skip, indirect, mispredictions, returns, return_mispredictions, conditionals


def simulate(
    predictor: IndirectBranchPredictor,
    trace: Trace,
    ras_depth: int = 32,
    warmup_records: int = 0,
    collect_per_pc: bool = False,
    counters: Optional[SimCounters] = None,
    checkpoint_every: int = 0,
    checkpoint_path: Optional[str] = None,
    resume_from: Optional[SimulationCheckpoint] = None,
    on_checkpoint: Optional[Callable[[SimulationCheckpoint], None]] = None,
    derived: Optional[DerivedPlane] = None,
    backend: str = "scalar",
) -> SimulationResult:
    """Run ``predictor`` over ``trace`` and return its result.

    Args:
        predictor: the indirect predictor under test (mutated in place).
        trace: the branch trace to replay.
        ras_depth: depth of the return-address stack.
        warmup_records: leading records whose mispredictions are not
            counted (predictors still train on them).
        collect_per_pc: also record per-static-branch misprediction
            counts (slower; for diagnostics).
        counters: when given, profile the run — per-phase wall times and
            the predictor's own hot-path counters are accumulated into
            ``counters`` and this cell's numbers land on the result's
            ``profile`` field.  The unprofiled path pays nothing for
            this.
        checkpoint_every: when > 0, snapshot the full simulation state
            (predictor, RAS, cursor, accumulators) after every this-many
            records into ``checkpoint_path`` and/or ``on_checkpoint``.
            Zero (the default) runs the whole trace in one span and pays
            nothing for the checkpoint machinery.
        checkpoint_path: file that receives each checkpoint (written
            atomically).  Requires ``checkpoint_every > 0``.
        resume_from: a :class:`SimulationCheckpoint` to continue from —
            the predictor must be freshly constructed with the same
            configuration; its state, the RAS, the cursor, and all
            accumulators are restored before replay.  The final result
            is per-branch identical to an uninterrupted run.
        on_checkpoint: optional callback receiving each checkpoint (for
            tests and in-process supervisors).
        derived: a :class:`~repro.trace.derived.DerivedPlane` for this
            trace — its precomputed RAS outcomes replace the live
            push/pop replay (bit-identical results; the RAS is a pure
            function of the trace).  Ignored when checkpointing or
            resuming, because those paths must snapshot real RAS state.
        backend: "scalar" (this per-branch loop), "columnar" (the
            batch tensor kernels in :mod:`repro.sim.kernel`), or
            "columnar-strict".  The columnar backend produces
            bit-identical results and final predictor state; it falls
            back to the scalar loop for predictors it does not support
            (with a ``RuntimeWarning`` naming the reason) and for
            features it does not cover (checkpointing, resume,
            profiling counters).  "columnar-strict" never falls back —
            it raises :class:`ColumnarUnsupportedError` instead, for
            callers that need the kernel's throughput or an explicit
            failure.
    """
    if checkpoint_every < 0:
        raise ValueError(
            f"checkpoint_every must be >= 0, got {checkpoint_every}"
        )
    if checkpoint_every and checkpoint_path is None and on_checkpoint is None:
        raise ValueError(
            "checkpoint_every needs a checkpoint_path or on_checkpoint sink"
        )
    _check_backend(backend)

    if backend in ("columnar", "columnar-strict"):
        supported, reason = kernel.columnar_support(predictor)
        blockers = _columnar_blockers(
            checkpoint_every, checkpoint_path, resume_from, counters
        )
        if supported and not blockers:
            # The kernel validates (or computes) the derived plane
            # itself and returns results and final predictor state
            # bit-identical to the scalar loop below.
            return kernel.simulate_columnar(
                predictor,
                trace,
                ras_depth=ras_depth,
                warmup_records=warmup_records,
                collect_per_pc=collect_per_pc,
                derived=derived,
            )
        if backend == "columnar-strict":
            if not supported:
                raise ColumnarUnsupportedError(reason)
            raise ColumnarUnsupportedError(
                "columnar-strict cannot cover " + ", ".join(blockers)
                + "; use backend='columnar' (scalar fallback) or "
                "backend='scalar' for these features"
            )
        if not supported:
            warnings.warn(
                f"columnar backend falling back to scalar: {reason}",
                RuntimeWarning,
                stacklevel=2,
            )

    pcs, types, takens, targets = trace.scalar_columns()
    total = len(pcs)

    ras: object
    if (
        derived is not None
        and not checkpoint_every
        and resume_from is None
        and checkpoint_path is None
    ):
        if not derived.matches(trace, ras_depth):
            raise ValueError(
                f"derived plane is for {derived.trace_name!r} "
                f"({derived.records} records, ras_depth={derived.ras_depth}), "
                f"not {trace.name!r} ({total} records, ras_depth={ras_depth})"
            )
        ras = _DerivedRAS(derived.return_predictions())
    else:
        ras = ReturnAddressStack(ras_depth)
    indirect = 0
    mispredictions = 0
    returns = 0
    return_mispredictions = 0
    conditionals = 0
    by_pc: Dict[int, int] = {}
    skip = warmup_records
    cursor = 0

    if resume_from is not None:
        if resume_from.trace_name != trace.name:
            raise ValueError(
                f"checkpoint is for trace {resume_from.trace_name!r}, "
                f"not {trace.name!r}"
            )
        if resume_from.predictor_name != predictor.name:
            raise ValueError(
                f"checkpoint is for predictor "
                f"{resume_from.predictor_name!r}, not {predictor.name!r}"
            )
        if resume_from.cursor > total:
            raise ValueError(
                f"checkpoint cursor {resume_from.cursor} beyond trace "
                f"length {total}"
            )
        predictor.load_state(resume_from.predictor)
        ras.load_state(resume_from.ras)
        cursor = resume_from.cursor
        skip = resume_from.skip
        indirect = resume_from.indirect
        mispredictions = resume_from.mispredictions
        returns = resume_from.returns
        return_mispredictions = resume_from.return_mispredictions
        conditionals = resume_from.conditionals
        by_pc = dict(resume_from.by_pc)

    started_at = cursor

    on_conditional = predictor.on_conditional
    on_retired = predictor.on_retired
    predict_target = predictor.predict_target
    train = predictor.train

    cell: Optional[SimCounters] = None
    if counters is not None:
        # Profiling wraps the three hot callables with timers.  The
        # wrappers only exist on this branch, so the common unprofiled
        # path keeps its direct bound-method calls.
        cell = SimCounters()
        perf = time.perf_counter

        def on_conditional(pc, taken, _inner=on_conditional):
            began = perf()
            _inner(pc, taken)
            cell.conditional_seconds += perf() - began

        def predict_target(pc, _inner=predict_target):
            began = perf()
            prediction = _inner(pc)
            cell.predict_seconds += perf() - began
            return prediction

        def train(pc, target, _inner=train):
            began = perf()
            _inner(pc, target)
            cell.train_seconds += perf() - began

        loop_started = perf()

    if not checkpoint_every and cursor == 0:
        # Fast path: the whole trace in one span, zero checkpoint cost.
        (
            skip,
            indirect,
            mispredictions,
            returns,
            return_mispredictions,
            conditionals,
        ) = _replay_span(
            pcs, types, takens, targets,
            on_conditional, predict_target, train, on_retired,
            ras, collect_per_pc, by_pc,
            skip, indirect, mispredictions,
            returns, return_mispredictions, conditionals,
        )
    else:
        span = checkpoint_every if checkpoint_every else total
        while cursor < total:
            upper = min(cursor + span, total)
            (
                skip,
                indirect,
                mispredictions,
                returns,
                return_mispredictions,
                conditionals,
            ) = _replay_span(
                pcs[cursor:upper], types[cursor:upper],
                takens[cursor:upper], targets[cursor:upper],
                on_conditional, predict_target, train, on_retired,
                ras, collect_per_pc, by_pc,
                skip, indirect, mispredictions,
                returns, return_mispredictions, conditionals,
            )
            cursor = upper
            if checkpoint_every and cursor < total:
                checkpoint = SimulationCheckpoint(
                    trace_name=trace.name,
                    predictor_name=predictor.name,
                    cursor=cursor,
                    skip=skip,
                    indirect=indirect,
                    mispredictions=mispredictions,
                    returns=returns,
                    return_mispredictions=return_mispredictions,
                    conditionals=conditionals,
                    by_pc=dict(by_pc),
                    ras=ras.state_dict(),
                    predictor=predictor.state_dict(),
                )
                if checkpoint_path is not None:
                    save_checkpoint(checkpoint, checkpoint_path)
                if on_checkpoint is not None:
                    on_checkpoint(checkpoint)

    result = SimulationResult(
        trace_name=trace.name,
        predictor_name=predictor.name,
        total_instructions=trace.total_instructions(),
        indirect_branches=indirect,
        indirect_mispredictions=mispredictions,
        return_branches=returns,
        return_mispredictions=return_mispredictions,
        conditional_branches=conditionals,
        mispredictions_by_pc=by_pc,
    )
    if cell is not None:
        cell.elapsed_seconds = time.perf_counter() - loop_started
        # Only the records this process actually replayed (a resumed
        # cell's profile measures its own work, not the whole trace).
        cell.records = total - started_at
        cell.conditionals = conditionals
        cell.harvest(predictor)
        result.profile = cell.as_dict()
        counters.merge(cell)
    return result


@dataclass
class SampledSimulationResult:
    """Outcome of a SimPoint-style sampled simulation.

    ``estimated_mpki`` is the cluster-weight-combined MPKI of the
    measured windows — the sampled estimate of what a full-trace
    :func:`simulate` would report.  Per-region detail rides along for
    diagnostics and accuracy audits.
    """

    trace_name: str
    predictor_name: str
    estimated_mpki: float
    #: Records in the full trace vs. records actually replayed
    #: (warm-up + measured); their ratio bounds the achievable speedup.
    full_records: int
    replayed_records: int
    region_results: List[SimulationResult] = dataclass_field(
        default_factory=list
    )
    region_mpki: List[float] = dataclass_field(default_factory=list)
    #: Regions whose warm-up was restored from a cached
    #: :class:`SimulationCheckpoint` instead of replayed.
    warm_checkpoint_hits: int = 0

    @property
    def record_reduction(self) -> float:
        """Full-trace records per replayed record (≥ 1)."""
        if self.replayed_records == 0:
            return float("inf")
        return self.full_records / self.replayed_records


def _warm_checkpoint_path(
    checkpoint_dir, trace_hash: str, region, fresh_hash: str
) -> "Path":
    """Content-addressed warm-up checkpoint file for one region.

    Keyed on the *trace content hash*, the region geometry, and the
    hash of the predictor's fresh (pre-simulation) state — which pins
    the predictor class and its full configuration — so a stale file
    can never warm the wrong predictor or the wrong trace bytes.
    """
    from pathlib import Path

    name = (
        f"warm-{trace_hash[:16]}-{region.start}-{region.warmup}"
        f"-{fresh_hash[:16]}.ckpt.json"
    )
    return Path(checkpoint_dir) / name


def simulate_sampled(
    factory: Callable[[], IndirectBranchPredictor],
    trace: Trace,
    plan=None,
    interval_records: int = 5000,
    max_regions: int = 4,
    warmup_intervals: int = 1,
    ras_depth: int = 32,
    collect_per_pc: bool = False,
    backend: str = "scalar",
    checkpoint_dir=None,
) -> SampledSimulationResult:
    """Estimate full-trace MPKI from SimPoint-style sampled regions.

    Each region of ``plan`` (built via
    :func:`repro.trace.sampling.simpoint_plan` when not supplied) is
    simulated independently with a *fresh* predictor from ``factory``:
    the region's warm-up span is replayed untallied
    (``warmup_records``), the measured window is tallied, and the
    region's MPKI is computed over the measured window's own
    instructions.  The full-trace estimate is the cluster-weighted sum
    of region MPKIs — the SimPoint estimator at trace granularity.

    Args:
        factory: zero-argument predictor factory (a fresh instance per
            region; regions are independent by construction).
        trace: the **full** trace the plan was cut from.
        plan: a :class:`~repro.trace.sampling.SamplingPlan`; built from
            ``interval_records``/``max_regions``/``warmup_intervals``
            when omitted.
        ras_depth, collect_per_pc, backend: forwarded to
            :func:`simulate` per region (the columnar backend
            accelerates sampled spans exactly as it does full runs).
        checkpoint_dir: when given, each region's post-warm-up state is
            cached as a PR 4 :class:`SimulationCheckpoint` in a
            content-addressed file; later calls with the same trace
            bytes, region geometry, and predictor configuration restore
            it through the engine's ``resume_from`` path and skip the
            warm-up replay entirely.  Results are bit-identical either
            way (resume is per-branch identical by construction).

    Returns:
        A :class:`SampledSimulationResult`; its ``region_results``
        entries are ordinary :class:`SimulationResult`s over the
        warm+measure windows.
    """
    from repro.trace.sampling import SamplingPlan, simpoint_plan, window

    if plan is None:
        plan = simpoint_plan(
            trace,
            interval_records,
            max_regions=max_regions,
            warmup_intervals=warmup_intervals,
        )
    if not isinstance(plan, SamplingPlan):
        raise TypeError(
            f"plan must be a SamplingPlan, got {type(plan).__name__}"
        )
    if plan.trace_name != trace.name or plan.records != len(trace):
        raise ValueError(
            f"plan is for {plan.trace_name!r} ({plan.records} records), "
            f"not {trace.name!r} ({len(trace)} records)"
        )
    _check_backend(backend)

    trace_hash: Optional[str] = None
    if checkpoint_dir is not None:
        from pathlib import Path

        from repro.trace.plane import trace_content_hash

        Path(checkpoint_dir).mkdir(parents=True, exist_ok=True)
        trace_hash = trace_content_hash(trace)

    region_results: List[SimulationResult] = []
    region_mpki: List[float] = []
    estimated = 0.0
    predictor_name = ""
    warm_hits = 0
    for region in plan.regions:
        sub = window(
            trace, region.start - region.warmup,
            region.warmup + region.length,
        )
        predictor = factory()
        predictor_name = predictor.name
        result: Optional[SimulationResult] = None
        checkpoint_path = None
        if checkpoint_dir is not None and region.warmup:
            checkpoint_path = _warm_checkpoint_path(
                checkpoint_dir, trace_hash, region, predictor.state_hash()
            )
            cached = load_checkpoint(checkpoint_path)
            if (
                cached is not None
                and cached.trace_name == sub.name
                and cached.predictor_name == predictor.name
                and cached.cursor == region.warmup
            ):
                # Warm-up restored, not replayed: the engine's resume
                # machinery replays only the measured window.
                result = simulate(
                    predictor,
                    sub,
                    ras_depth=ras_depth,
                    warmup_records=region.warmup,
                    collect_per_pc=collect_per_pc,
                    resume_from=cached,
                )
                warm_hits += 1
        if result is None:
            if checkpoint_path is not None:
                # Cold pass: capture the post-warm-up state through the
                # checkpoint hook (fires at every warm-up-sized span;
                # only the warm-boundary snapshot is kept).
                def keep_warm_boundary(
                    snapshot: SimulationCheckpoint,
                    _path=checkpoint_path,
                    _warm=region.warmup,
                ) -> None:
                    if snapshot.cursor == _warm:
                        save_checkpoint(snapshot, _path)

                result = simulate(
                    predictor,
                    sub,
                    ras_depth=ras_depth,
                    warmup_records=region.warmup,
                    collect_per_pc=collect_per_pc,
                    checkpoint_every=region.warmup,
                    on_checkpoint=keep_warm_boundary,
                )
            else:
                result = simulate(
                    predictor,
                    sub,
                    ras_depth=ras_depth,
                    warmup_records=region.warmup,
                    collect_per_pc=collect_per_pc,
                    backend=backend,
                )
        stop = region.start + region.length
        measured_instructions = (
            int(trace.gaps[region.start:stop].sum()) + region.length
        )
        mpki = (
            1000.0 * result.indirect_mispredictions / measured_instructions
            if measured_instructions
            else 0.0
        )
        region_results.append(result)
        region_mpki.append(mpki)
        estimated += region.weight * mpki

    return SampledSimulationResult(
        trace_name=trace.name,
        predictor_name=predictor_name,
        estimated_mpki=estimated,
        full_records=plan.records,
        replayed_records=plan.replayed_records,
        region_results=region_results,
        region_mpki=region_mpki,
        warm_checkpoint_hits=warm_hits,
    )


def _replay_span_many(
    pcs,
    types,
    takens,
    targets,
    engines,
    cond_hooks,
    retire_hooks,
    ras,
    collect_per_pc,
    by_pc,
    mispredictions,
    skip,
    indirect,
    returns,
    return_mispredictions,
    conditionals,
) -> Tuple[int, int, int, int, int]:
    """The fused hot loop: one pass over the columns, N predictors.

    Per-branch work that is predictor-independent — scalar extraction,
    type dispatch, RAS traffic, warmup accounting — happens once; only
    the predict/train/retire calls multiply by N.  ``engines`` carries
    one ``(predict_target, train, on_retired-or-None)`` tuple per
    predictor; ``cond_hooks``/``retire_hooks`` hold only the bound hooks
    that actually override the base no-ops, so baseline predictors pay
    nothing for histories they do not keep.  ``mispredictions`` and
    ``by_pc`` are per-predictor and mutated in place; each predictor's
    own call sequence is exactly what :func:`_replay_span` would issue,
    so per-predictor state evolution is bit-identical to unfused runs.
    """
    for pc, branch_type, taken, target in zip(pcs, types, takens, targets):
        if branch_type == _COND:
            for hook in cond_hooks:
                hook(pc, taken)
            conditionals += 1
            if skip:
                skip -= 1
            continue

        counted = not skip
        if skip:
            skip -= 1

        if branch_type == _INDIRECT_JUMP or branch_type == _INDIRECT_CALL:
            if counted:
                indirect += 1
            slot = 0
            for predict_target, train, on_retired in engines:
                prediction: Optional[int] = predict_target(pc)
                if counted and prediction != target:
                    mispredictions[slot] += 1
                    if collect_per_pc:
                        cell = by_pc[slot]
                        cell[pc] = cell.get(pc, 0) + 1
                train(pc, target)
                if on_retired is not None:
                    on_retired(pc, branch_type, target)
                slot += 1
            if branch_type == _INDIRECT_CALL:
                ras.push(pc + 4)
        elif branch_type == _RETURN:
            ras_prediction = ras.predict()
            ras.pop()
            if counted:
                returns += 1
                if ras_prediction != target:
                    return_mispredictions += 1
            for hook in retire_hooks:
                hook(pc, branch_type, target)
        elif branch_type == _DIRECT_CALL:
            ras.push(pc + 4)
            for hook in retire_hooks:
                hook(pc, branch_type, target)
        else:  # direct jump
            for hook in retire_hooks:
                hook(pc, branch_type, target)
    return skip, indirect, returns, return_mispredictions, conditionals


def simulate_many(
    predictors: Sequence[IndirectBranchPredictor],
    trace: Trace,
    ras_depth: int = 32,
    warmup_records: int = 0,
    collect_per_pc: bool = False,
    derived: Optional[DerivedPlane] = None,
    checkpoint_every: int = 0,
    checkpoint_paths: Optional[Sequence[Optional[str]]] = None,
    backend: str = "scalar",
) -> List[SimulationResult]:
    """Run every predictor over ``trace`` in one fused pass.

    Produces, for each predictor, a result and final predictor state
    bit-identical to ``simulate(predictor, trace, ...)`` — the fused loop
    issues each predictor the exact call sequence the solo loop would,
    only sharing the per-branch costs that are predictor-independent
    (column decode, type dispatch, RAS replay, warmup accounting).

    When every fused predictor is *indirect-only* (overrides neither
    ``on_conditional`` nor ``on_retired``) and a ``derived`` plane is
    supplied, the loop skips non-indirect records entirely and walks the
    plane's indirect index arrays instead of the full columns.

    Args:
        predictors: freshly constructed predictors (mutated in place).
        trace: the branch trace to replay.
        ras_depth: depth of the shared return-address stack.
        warmup_records: leading records whose mispredictions are not
            counted (identical accounting for every predictor).
        collect_per_pc: also record per-static-branch misprediction
            counts, per predictor.
        derived: this trace's :class:`~repro.trace.derived.DerivedPlane`;
            substitutes precomputed RAS outcomes (and enables the
            indirect-only fast path).  Ignored while checkpointing —
            snapshots need real RAS state.
        checkpoint_every: when > 0, write one checkpoint *per predictor*
            every this-many records into the matching entry of
            ``checkpoint_paths``; each snapshot is loadable by
            :func:`simulate` for an unfused per-cell resume.
        checkpoint_paths: one path (or ``None``) per predictor.
        backend: "scalar", "columnar", or "columnar-strict".  Under
            "columnar", predictors the kernels support run as one fused
            columnar group (:func:`repro.sim.kernel.simulate_columnar_many`
            — one shared precompute pass, compatible BLBP lanes
            lane-parallel) and the rest run through this fused scalar
            loop, with a ``RuntimeWarning`` naming why; the merged
            results and final states are bit-identical to an all-scalar
            pass.  Ignored while checkpointing.  "columnar-strict"
            raises :class:`ColumnarUnsupportedError` instead of falling
            back (unsupported predictor or checkpointing).
    """
    predictors = list(predictors)
    count = len(predictors)
    if count == 0:
        return []
    if checkpoint_every < 0:
        raise ValueError(f"checkpoint_every must be >= 0, got {checkpoint_every}")
    if checkpoint_paths is None:
        checkpoint_paths = [None] * count
    checkpoint_paths = list(checkpoint_paths)
    if len(checkpoint_paths) != count:
        raise ValueError(
            f"{len(checkpoint_paths)} checkpoint paths for {count} predictors"
        )
    if checkpoint_every and not any(checkpoint_paths):
        raise ValueError("checkpoint_every needs at least one checkpoint path")
    _check_backend(backend)

    total = len(trace)
    use_derived = derived is not None and not checkpoint_every
    if use_derived and not derived.matches(trace, ras_depth):
        raise ValueError(
            f"derived plane is for {derived.trace_name!r} "
            f"({derived.records} records, ras_depth={derived.ras_depth}), "
            f"not {trace.name!r} ({total} records, ras_depth={ras_depth})"
        )

    if backend in ("columnar", "columnar-strict"):
        reasons = {
            slot: kernel.columnar_support(predictor)
            for slot, predictor in enumerate(predictors)
        }
        supported = [slot for slot, (ok, _) in reasons.items() if ok]
        if backend == "columnar-strict":
            if checkpoint_every:
                raise ColumnarUnsupportedError(
                    "columnar-strict cannot cover checkpointing "
                    "(checkpoint_every); use backend='columnar' or "
                    "'scalar'"
                )
            unsupported = [
                reason for ok, reason in reasons.values() if not ok
            ]
            if unsupported:
                raise ColumnarUnsupportedError(unsupported[0])
        elif checkpoint_every:
            supported = []
        elif len(supported) < count:
            fallback = sorted(
                {
                    reason
                    for ok, reason in reasons.values()
                    if not ok
                }
            )
            warnings.warn(
                "columnar backend falling back to the fused scalar "
                "loop for some predictors: " + "; ".join(fallback),
                RuntimeWarning,
                stacklevel=2,
            )
        if supported:
            plane = derived
            if plane is None:
                from repro.trace.derived import compute_derived

                plane = compute_derived(trace, ras_depth)
            merged: List[Optional[SimulationResult]] = [None] * count
            # One shared precompute pass serves every supported lane;
            # compatible BLBP lanes advance lane-parallel inside.
            for slot, result in zip(
                supported,
                kernel.simulate_columnar_many(
                    [predictors[slot] for slot in supported],
                    trace,
                    ras_depth=ras_depth,
                    warmup_records=warmup_records,
                    collect_per_pc=collect_per_pc,
                    derived=plane,
                ),
            ):
                merged[slot] = result
            rest = [slot for slot in range(count) if merged[slot] is None]
            if rest:
                for slot, result in zip(
                    rest,
                    simulate_many(
                        [predictors[slot] for slot in rest],
                        trace,
                        ras_depth=ras_depth,
                        warmup_records=warmup_records,
                        collect_per_pc=collect_per_pc,
                        derived=plane,
                    ),
                ):
                    merged[slot] = result
            return [result for result in merged if result is not None]

    base_conditional = IndirectBranchPredictor.on_conditional
    base_retired = IndirectBranchPredictor.on_retired
    cond_hooks = [
        p.on_conditional
        for p in predictors
        if type(p).on_conditional is not base_conditional
    ]
    retire_hooks = [
        p.on_retired for p in predictors if type(p).on_retired is not base_retired
    ]
    engines = [
        (
            p.predict_target,
            p.train,
            p.on_retired if type(p).on_retired is not base_retired else None,
        )
        for p in predictors
    ]

    mispredictions = [0] * count
    by_pc: List[Dict[int, int]] = [{} for _ in range(count)]
    skip = warmup_records
    indirect = 0
    returns = 0
    return_mispredictions = 0
    conditionals = 0

    if use_derived and not cond_hooks and not retire_hooks:
        # Indirect-only fast path: every record a fused predictor cares
        # about is in the plane's indirect index arrays, and the shared
        # RAS/conditional accounting is a pure function of the plane.
        warm = warmup_records
        for index, pc, target in zip(
            derived.indirect_idx.tolist(),
            derived.indirect_pcs.tolist(),
            derived.indirect_targets.tolist(),
        ):
            counted = index >= warm
            if counted:
                indirect += 1
            slot = 0
            for predict_target, train, _ in engines:
                prediction = predict_target(pc)
                if counted and prediction != target:
                    mispredictions[slot] += 1
                    if collect_per_pc:
                        cell = by_pc[slot]
                        cell[pc] = cell.get(pc, 0) + 1
                train(pc, target)
                slot += 1
        conditionals = derived.conditionals
        return_indices = derived.return_idx
        if len(return_indices):
            counted_mask = return_indices >= warm
            returns = int(np.count_nonzero(counted_mask))
            return_mispredictions = int(
                np.count_nonzero(counted_mask & (derived.return_ok == 0))
            )
    else:
        pcs, types, takens, targets = trace.scalar_columns()
        ras: object
        if use_derived:
            ras = _DerivedRAS(derived.return_predictions())
        else:
            ras = ReturnAddressStack(ras_depth)
        span = checkpoint_every if checkpoint_every else total
        cursor = 0
        while cursor < total:
            upper = min(cursor + span, total)
            (
                skip,
                indirect,
                returns,
                return_mispredictions,
                conditionals,
            ) = _replay_span_many(
                pcs[cursor:upper], types[cursor:upper],
                takens[cursor:upper], targets[cursor:upper],
                engines, cond_hooks, retire_hooks,
                ras, collect_per_pc, by_pc, mispredictions,
                skip, indirect, returns, return_mispredictions, conditionals,
            )
            cursor = upper
            if checkpoint_every and cursor < total:
                ras_state = ras.state_dict()
                for slot, predictor in enumerate(predictors):
                    path = checkpoint_paths[slot]
                    if path is None:
                        continue
                    save_checkpoint(
                        SimulationCheckpoint(
                            trace_name=trace.name,
                            predictor_name=predictor.name,
                            cursor=cursor,
                            skip=skip,
                            indirect=indirect,
                            mispredictions=mispredictions[slot],
                            returns=returns,
                            return_mispredictions=return_mispredictions,
                            conditionals=conditionals,
                            by_pc=dict(by_pc[slot]),
                            ras=ras_state,
                            predictor=predictor.state_dict(),
                        ),
                        path,
                    )

    total_instructions = trace.total_instructions()
    return [
        SimulationResult(
            trace_name=trace.name,
            predictor_name=predictor.name,
            total_instructions=total_instructions,
            indirect_branches=indirect,
            indirect_mispredictions=mispredictions[slot],
            return_branches=returns,
            return_mispredictions=return_mispredictions,
            conditional_branches=conditionals,
            mispredictions_by_pc=by_pc[slot],
        )
        for slot, predictor in enumerate(predictors)
    ]


def simulate_conditional(
    predictor,
    trace: Trace,
    warmup_records: int = 0,
) -> SimulationResult:
    """Run a *conditional* predictor over a trace's conditional stream.

    Used by the §6 consolidation study (BLBP as a conditional predictor)
    and for measuring standalone conditional substrates.  Non-conditional
    branches are skipped — conditional predictors maintain their own
    histories from the outcomes alone.  Returns a
    :class:`SimulationResult` whose "indirect" fields carry the
    conditional counts so the MPKI helpers apply unchanged.
    """
    pcs = trace.pcs.tolist()
    types = trace.types.tolist()
    takens = trace.takens.tolist()

    count = 0
    mispredictions = 0
    predict = predictor.predict
    update = predictor.update
    for index in range(len(pcs)):
        if types[index] != _COND:
            continue
        pc = pcs[index]
        taken = takens[index]
        prediction = predict(pc)
        if index >= warmup_records:
            count += 1
            if prediction != taken:
                mispredictions += 1
        update(pc, taken)

    return SimulationResult(
        trace_name=trace.name,
        predictor_name=type(predictor).__name__,
        total_instructions=trace.total_instructions(),
        indirect_branches=count,
        indirect_mispredictions=mispredictions,
        conditional_branches=count,
    )
