"""Columnar replay kernel for :class:`~repro.predictors.vpc.VPCPredictor`.

VPC's scalar cost is dominated by hashing: every prediction walks up to
``max_iterations`` virtual PCs, each needing a ``mix_pc`` to form the
vpca and a ``stable_hash64`` to locate its BTB slot, and the training
paths recompute the same values.  All of that is a pure function of the
static PC — so the kernel precomputes one ``(unique_pcs, max_iter)``
table of (vpca, BTB slot, partial tag) triples and replays the trace
against it.

What remains sequential is genuinely architectural: the direct-mapped
BTB (tags/targets/recency ticks) and the shared conditional predictor,
which VPC consults per virtual branch *and* trains on every real
conditional.  The replay therefore walks a merged event stream —
conditionals and indirect branches in record order — either as a
Python loop or through the compiled ``vpc_replay`` core in
:mod:`repro.sim.native`; the conditional predictor is an arbitrary
Python object either way (the C core reaches it through ctypes
callbacks in exactly the scalar call sequence), so any conditional
component works unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.hashing import mix_pc, stable_hash64
from repro.predictors.vpc import VPCPredictor
from repro.sim import native
from repro.sim.metrics import SimulationResult
from repro.trace.derived import DerivedPlane
from repro.trace.stream import Trace


# ----------------------------------------------------------------------
# Trace-pure precomputation
# ----------------------------------------------------------------------


def _vpca_tables(
    unique_pcs: np.ndarray, max_iter: int, entries: int, tag_bits: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(vpca, BTB slot, partial tag) per (static pc, iteration)."""
    count = len(unique_pcs)
    vpcas = np.empty((count, max_iter), dtype=np.uint64)
    slots = np.empty((count, max_iter), dtype=np.int64)
    vtags = np.empty((count, max_iter), dtype=np.int64)
    tag_mask = (1 << tag_bits) - 1
    for row, pc in enumerate(unique_pcs.tolist()):
        pc = int(pc)
        for iteration in range(max_iter):
            if iteration == 0:
                vpca = pc
            else:
                vpca = mix_pc(pc, salt=iteration) ^ (iteration * 0x1F3)
            hashed = stable_hash64(vpca)
            vpcas[row, iteration] = vpca
            slots[row, iteration] = hashed % entries
            vtags[row, iteration] = (hashed >> 22) & tag_mask
    return vpcas, slots, vtags


def _event_stream(
    trace: Trace, derived: DerivedPlane, pc_inverse: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Record-ordered merge of conditional and indirect events.

    Returns ``(kinds, ev_a, ev_taken)``: kind 0 is a conditional with
    ``ev_a`` its PC and ``ev_taken`` its outcome; kind 1 is an indirect
    branch with ``ev_a`` its row in the unique-PC table (branch
    ordinals simply count kind-1 events).
    """
    cond_idx = np.asarray(derived.cond_idx)
    indirect_idx = np.asarray(derived.indirect_idx)
    merged = np.concatenate([cond_idx, indirect_idx])
    order = np.argsort(merged)
    kinds = np.concatenate(
        [
            np.zeros(len(cond_idx), dtype=np.uint8),
            np.ones(len(indirect_idx), dtype=np.uint8),
        ]
    )[order]
    ev_a = np.concatenate(
        [
            trace.pcs[cond_idx].astype(np.uint64),
            pc_inverse.astype(np.uint64),
        ]
    )[order]
    ev_taken = np.concatenate(
        [
            derived.conditional_outcomes().astype(np.uint8),
            np.zeros(len(indirect_idx), dtype=np.uint8),
        ]
    )[order]
    return kinds, ev_a, ev_taken


def _prepare(
    predictor: VPCPredictor,
    trace: Trace,
    derived: DerivedPlane,
    shared,
) -> dict:
    cfg = predictor.config
    branch_targets = np.asarray(derived.indirect_targets)
    unique_pcs, pc_inverse = shared.get(
        ("pc-unique",),
        lambda: np.unique(derived.indirect_pcs, return_inverse=True),
    )
    vpcas, slots, vtags = shared.get(
        ("vpc-tables", cfg.max_iterations, cfg.btb_entries, cfg.btb_tag_bits),
        lambda: _vpca_tables(
            unique_pcs, cfg.max_iterations, cfg.btb_entries, cfg.btb_tag_bits
        ),
    )
    kinds, ev_a, ev_taken = shared.get(
        ("vpc-events",),
        lambda: _event_stream(trace, derived, pc_inverse),
    )
    branch_count = len(branch_targets)
    return {
        "vpcas": vpcas,
        "slots": slots,
        "vtags": vtags,
        "kinds": kinds,
        "ev_a": ev_a,
        "ev_taken": ev_taken,
        "targets": branch_targets,
        "branch_pcs": derived.indirect_pcs,
        "indirect_idx": np.asarray(derived.indirect_idx),
        "predictions": np.zeros(branch_count, dtype=np.uint64),
        "valid": np.zeros(branch_count, dtype=np.uint8),
    }


# ----------------------------------------------------------------------
# Prediction-dependent replay
# ----------------------------------------------------------------------


def _replay_python(
    kinds: List[int],
    ev_a: List[int],
    ev_taken: List[int],
    targets: List[int],
    max_iter: int,
    fallback: bool,
    vpcas: List[List[int]],
    slots: List[List[int]],
    vtags: List[List[int]],
    btb_tags: List[int],
    btb_targets: List[int],
    btb_ticks: List[int],
    clock: int,
    cond_count: int,
    cond_misp: int,
    conditional,
    predictions: List[int],
    valid_out: List[int],
) -> Tuple[int, int, int]:
    """Event-order replay, statement-for-statement the scalar
    ``on_conditional``/``predict_target``/``train`` sequence with the
    hashing replaced by precomputed table reads."""
    cond_predict = conditional.predict
    cond_train = conditional.train_weights
    cond_update = conditional.update
    branch = 0
    for e in range(len(kinds)):
        if kinds[e] == 0:
            pc = ev_a[e]
            taken = bool(ev_taken[e])
            predicted = cond_predict(pc)
            cond_count += 1
            if predicted != taken:
                cond_misp += 1
            cond_update(pc, taken)
            continue

        row = ev_a[e]
        row_vpcas = vpcas[row]
        row_slots = slots[row]
        row_vtags = vtags[row]
        target = targets[branch]

        visited = 0
        has_pred = False
        pred = 0
        hit_it = -1
        for it in range(max_iter):
            s = row_slots[it]
            if btb_tags[s] != row_vtags[it]:
                break
            visited += 1
            if cond_predict(row_vpcas[it]):
                pred = btb_targets[s]
                has_pred = True
                hit_it = it
                break
        if not has_pred and visited and fallback:
            pred = btb_targets[row_slots[0]]
            has_pred = True
            hit_it = 0
        if has_pred:
            predictions[branch] = pred
            valid_out[branch] = 1
        branch += 1

        if has_pred and pred == target:
            for it in range(visited):
                cond_train(row_vpcas[it], taken=(it == hit_it))
            s = row_slots[hit_it]
            if btb_tags[s] == row_vtags[hit_it]:
                clock += 1
                btb_ticks[s] = clock
            continue

        found = -1
        for it in range(max_iter):
            s = row_slots[it]
            if (
                found < 0
                and btb_tags[s] == row_vtags[it]
                and btb_targets[s] == target
            ):
                found = it
        if found >= 0:
            for it in range(found + 1):
                s = row_slots[it]
                if btb_tags[s] == row_vtags[it] or it == found:
                    cond_train(row_vpcas[it], taken=(it == found))
            s = row_slots[found]
            if btb_tags[s] == row_vtags[found]:
                clock += 1
                btb_ticks[s] = clock
            continue

        victim = -1
        for it in range(max_iter):
            if btb_tags[row_slots[it]] != row_vtags[it]:
                victim = it
                break
        if victim < 0:
            best_tick = btb_ticks[row_slots[0]]
            victim = 0
            for it in range(1, max_iter):
                tick = btb_ticks[row_slots[it]]
                if tick < best_tick:
                    best_tick = tick
                    victim = it
        for it in range(visited):
            if it != victim:
                cond_train(row_vpcas[it], taken=False)
        s = row_slots[victim]
        clock += 1
        btb_tags[s] = row_vtags[victim]
        btb_targets[s] = target
        btb_ticks[s] = clock
        cond_train(row_vpcas[victim], taken=True)
    return clock, cond_count, cond_misp


def _replay(predictor: VPCPredictor, prep: dict) -> None:
    cfg = predictor.config
    btb = predictor._btb
    conditional = predictor.conditional
    btb_tags = btb._tags.copy()
    btb_targets = btb._targets.copy()
    btb_ticks = btb._ticks.copy()
    clock = btb._clock
    cond_count = predictor.conditional_count
    cond_misp = predictor.conditional_mispredictions

    if len(prep["kinds"]):
        fn = native.load("vpc_replay")
        if fn is not None:
            counters = np.asarray(
                [clock, cond_count, cond_misp], dtype=np.int64
            )
            predict_cb = native.COND_PREDICT(
                lambda pc: 1 if conditional.predict(int(pc)) else 0
            )
            train_cb = native.COND_TRAIN(
                lambda vpca, taken: conditional.train_weights(
                    int(vpca), taken=bool(taken)
                )
            )
            update_cb = native.COND_TRAIN(
                lambda pc, taken: conditional.update(int(pc), bool(taken))
            )
            fn(
                len(prep["kinds"]),
                prep["kinds"].ctypes.data,
                prep["ev_a"].ctypes.data,
                prep["ev_taken"].ctypes.data,
                prep["targets"].ctypes.data,
                cfg.max_iterations,
                1 if cfg.fallback_to_first else 0,
                prep["vpcas"].ctypes.data,
                prep["slots"].ctypes.data,
                prep["vtags"].ctypes.data,
                btb_tags.ctypes.data,
                btb_targets.ctypes.data,
                btb_ticks.ctypes.data,
                counters.ctypes.data,
                predict_cb,
                train_cb,
                update_cb,
                prep["predictions"].ctypes.data,
                prep["valid"].ctypes.data,
            )
            clock = int(counters[0])
            cond_count = int(counters[1])
            cond_misp = int(counters[2])
        else:
            branch_count = len(prep["targets"])
            pred_list = [0] * branch_count
            valid_list = [0] * branch_count
            tags_l = btb_tags.tolist()
            tgts_l = btb_targets.tolist()
            ticks_l = btb_ticks.tolist()
            clock, cond_count, cond_misp = _replay_python(
                prep["kinds"].tolist(),
                prep["ev_a"].tolist(),
                prep["ev_taken"].tolist(),
                prep["targets"].tolist(),
                cfg.max_iterations,
                cfg.fallback_to_first,
                prep["vpcas"].tolist(),
                prep["slots"].tolist(),
                prep["vtags"].tolist(),
                tags_l,
                tgts_l,
                ticks_l,
                clock,
                cond_count,
                cond_misp,
                conditional,
                pred_list,
                valid_list,
            )
            btb_tags = np.asarray(tags_l, dtype=np.int64)
            btb_targets = np.asarray(tgts_l, dtype=np.uint64)
            btb_ticks = np.asarray(ticks_l, dtype=np.int64)
            prep["predictions"][:] = pred_list
            prep["valid"][:] = valid_list

    btb._tags = btb_tags
    btb._targets = btb_targets
    btb._ticks = btb_ticks
    btb._clock = clock
    predictor.conditional_count = cond_count
    predictor.conditional_mispredictions = cond_misp
    predictor._ctx = None


# ----------------------------------------------------------------------
# The kernel
# ----------------------------------------------------------------------


def simulate_columnar_vpc(
    predictor: VPCPredictor,
    trace: Trace,
    derived: DerivedPlane,
    shared,
    warmup_records: int = 0,
    collect_per_pc: bool = False,
    prediction_sink: Optional[Dict[str, np.ndarray]] = None,
) -> SimulationResult:
    """Columnar VPC replay, bit-identical to the scalar engine.

    Called through :func:`repro.sim.kernel.simulate_columnar`, which
    validates support and the derived plane and owns the shared
    precompute; see that function for the caller contract.
    """
    prep = _prepare(predictor, trace, derived, shared)
    _replay(predictor, prep)

    predictions = prep["predictions"]
    prediction_valid = prep["valid"].astype(bool)
    indirect_idx = prep["indirect_idx"]
    branch_targets = prep["targets"]
    branch_pcs = prep["branch_pcs"]

    if prediction_sink is not None:
        prediction_sink["indirect_idx"] = indirect_idx.copy()
        prediction_sink["valid"] = prediction_valid.copy()
        prediction_sink["predictions"] = predictions.copy()

    counted = indirect_idx >= warmup_records
    mispredicted = counted & (
        ~prediction_valid | (predictions != branch_targets)
    )
    by_pc: Dict[int, int] = {}
    if collect_per_pc and mispredicted.any():
        miss_pcs, miss_counts = np.unique(
            branch_pcs[mispredicted], return_counts=True
        )
        by_pc = {
            int(pc): int(count)
            for pc, count in zip(miss_pcs.tolist(), miss_counts.tolist())
        }

    return_indices = np.asarray(derived.return_idx)
    returns = 0
    return_mispredictions = 0
    if len(return_indices):
        counted_returns = return_indices >= warmup_records
        returns = int(np.count_nonzero(counted_returns))
        return_mispredictions = int(
            np.count_nonzero(
                counted_returns & (np.asarray(derived.return_ok) == 0)
            )
        )

    return SimulationResult(
        trace_name=trace.name,
        predictor_name=predictor.name,
        total_instructions=trace.total_instructions(),
        indirect_branches=int(np.count_nonzero(counted)),
        indirect_mispredictions=int(np.count_nonzero(mispredicted)),
        return_branches=returns,
        return_mispredictions=return_mispredictions,
        conditional_branches=derived.conditionals,
        mispredictions_by_pc=by_pc,
    )
