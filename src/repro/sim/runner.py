"""Campaign runner: many traces × many predictors.

Predictors carry state, so a campaign constructs a *fresh* predictor per
trace through a factory callable.  This runner is single-process and
deterministic; :mod:`repro.exec` schedules the same (trace, predictor)
cells across worker processes and merges them into an identical
:class:`~repro.sim.metrics.CampaignResult`.

Both paths share one progress protocol: a ``progress`` callback may
accept either the legacy three arguments ``(trace, predictor, mpki)`` or
five ``(trace, predictor, mpki, index, total)``, where ``index`` is the
zero-based cell number and ``total`` the campaign cell count.  The arity
is detected once per campaign via :func:`progress_arity`.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, Iterable, Optional

from repro.predictors.base import IndirectBranchPredictor
from repro.sim.counters import SimCounters
from repro.sim.engine import simulate
from repro.sim.metrics import CampaignResult
from repro.trace.source import as_source
from repro.trace.stream import Trace

#: A callable producing a fresh predictor instance.
PredictorFactory = Callable[[], IndirectBranchPredictor]

#: A progress callback; legacy 3-argument or extended 5-argument form.
ProgressCallback = Callable[..., None]


def progress_arity(progress: ProgressCallback) -> int:
    """How many positional arguments ``progress`` should be called with.

    Returns 5 for callbacks that can accept ``(trace, predictor, mpki,
    index, total)`` and 3 for the legacy ``(trace, predictor, mpki)``
    form.  Callables whose signature cannot be introspected (some
    builtins) are treated as legacy.
    """
    try:
        signature = inspect.signature(progress)
    except (TypeError, ValueError):
        return 3
    positional = 0
    for parameter in signature.parameters.values():
        if parameter.kind == inspect.Parameter.VAR_POSITIONAL:
            return 5
        if parameter.kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ):
            positional += 1
    return 5 if positional >= 5 else 3


def invoke_progress(
    progress: Optional[ProgressCallback],
    trace_name: str,
    predictor_name: str,
    mpki: float,
    index: int,
    total: int,
    arity: Optional[int] = None,
) -> None:
    """Invoke ``progress`` honouring its detected arity (no-op on None)."""
    if progress is None:
        return
    if arity is None:
        arity = progress_arity(progress)
    if arity >= 5:
        progress(trace_name, predictor_name, mpki, index, total)
    else:
        progress(trace_name, predictor_name, mpki)


def run_campaign(
    traces: Iterable[Trace],
    factories: Dict[str, PredictorFactory],
    ras_depth: int = 32,
    warmup_records: int = 0,
    progress: Optional[ProgressCallback] = None,
    counters: Optional[SimCounters] = None,
    backend: str = "scalar",
) -> CampaignResult:
    """Simulate every predictor over every trace.

    Args:
        traces: the workload suite — in-memory :class:`Trace`s, lazy
            :class:`~repro.trace.source.TraceSource`s, or workload
            specs (coerced via :func:`~repro.trace.source.as_source`;
            lazy sources materialize when their cells run and are
            released after).
        factories: predictor-name → factory map; the name overrides the
            predictor's own ``name`` in results so one campaign can
            compare multiple configurations of the same class.
        ras_depth, warmup_records: forwarded to :func:`simulate`.
        backend: simulation backend per cell ("scalar" or "columnar");
            forwarded to :func:`simulate`, results identical either way.
        progress: optional callback invoked after each cell; either
            ``(trace, predictor, mpki)`` or
            ``(trace, predictor, mpki, index, total)``.
        counters: when given, every cell runs profiled — per-cell
            numbers land on each result's ``profile`` field and the
            campaign totals accumulate into ``counters``.

    Returns:
        A :class:`CampaignResult` with one cell per (trace, predictor).
    """
    sources = [as_source(trace) for trace in traces]
    total = len(sources) * len(factories)
    arity = progress_arity(progress) if progress is not None else 3
    campaign = CampaignResult()
    index = 0
    for source in sources:
        trace = source.trace()
        for name, factory in factories.items():
            predictor = factory()
            result = simulate(
                predictor,
                trace,
                ras_depth=ras_depth,
                warmup_records=warmup_records,
                counters=counters,
                backend=backend,
            )
            result.predictor_name = name
            campaign.add(result)
            invoke_progress(
                progress, trace.name, name, result.mpki(), index, total,
                arity=arity,
            )
            index += 1
        source.release()
    return campaign
