"""Campaign runner: many traces × many predictors.

Predictors carry state, so a campaign constructs a *fresh* predictor per
trace through a factory callable.  The runner is deliberately
single-process and deterministic; parallelism, if wanted, belongs in the
caller (each (trace, predictor) cell is independent).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.predictors.base import IndirectBranchPredictor
from repro.sim.engine import simulate
from repro.sim.metrics import CampaignResult
from repro.trace.stream import Trace

#: A callable producing a fresh predictor instance.
PredictorFactory = Callable[[], IndirectBranchPredictor]


def run_campaign(
    traces: Iterable[Trace],
    factories: Dict[str, PredictorFactory],
    ras_depth: int = 32,
    warmup_records: int = 0,
    progress: Optional[Callable[[str, str, float], None]] = None,
) -> CampaignResult:
    """Simulate every predictor over every trace.

    Args:
        traces: the workload suite.
        factories: predictor-name → factory map; the name overrides the
            predictor's own ``name`` in results so one campaign can
            compare multiple configurations of the same class.
        ras_depth, warmup_records: forwarded to :func:`simulate`.
        progress: optional callback ``(trace, predictor, mpki)`` invoked
            after each cell, for long-running benches.

    Returns:
        A :class:`CampaignResult` with one cell per (trace, predictor).
    """
    campaign = CampaignResult()
    for trace in traces:
        for name, factory in factories.items():
            predictor = factory()
            result = simulate(
                predictor,
                trace,
                ras_depth=ras_depth,
                warmup_records=warmup_records,
            )
            result.predictor_name = name
            campaign.add(result)
            if progress is not None:
                progress(trace.name, name, result.mpki())
    return campaign
