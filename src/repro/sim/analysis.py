"""Post-hoc analysis tools: learning curves, breakdowns, warmup studies.

The paper reports whole-trace MPKI; when reproducing it on shorter
synthetic traces, it matters *where* the mispredictions come from —
cold-start, steady-state aliasing, or genuinely unpredictable targets.
These tools answer that:

* :func:`learning_curve` — misprediction rate per window of indirect
  executions, showing convergence;
* :func:`per_branch_breakdown` — which static branches carry the MPKI;
* :func:`steady_state_mpki` — MPKI with a warmup fraction excluded,
  approximating the billion-instruction steady state of the paper's
  simpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.predictors.base import IndirectBranchPredictor
from repro.sim.engine import simulate
from repro.trace.record import BranchType
from repro.trace.stream import Trace

_COND = int(BranchType.CONDITIONAL)
_INDIRECT = (int(BranchType.INDIRECT_JUMP), int(BranchType.INDIRECT_CALL))


@dataclass
class LearningCurve:
    """Misprediction rate per window of indirect executions."""

    trace_name: str
    predictor_name: str
    window: int
    #: Miss rate (0..1) per consecutive window of ``window`` executions.
    rates: List[float]

    def converged_rate(self, tail_windows: int = 3) -> float:
        """Mean rate over the last ``tail_windows`` windows."""
        tail = self.rates[-tail_windows:] if self.rates else []
        return sum(tail) / len(tail) if tail else 0.0

    def warmup_windows(self, tolerance: float = 1.5) -> int:
        """Windows until the rate first drops within ``tolerance`` x the
        converged rate (the visible warmup length)."""
        target = self.converged_rate() * tolerance + 1e-9
        for index, rate in enumerate(self.rates):
            if rate <= target:
                return index
        return len(self.rates)


def learning_curve(
    predictor: IndirectBranchPredictor,
    trace: Trace,
    window: int = 200,
) -> LearningCurve:
    """Drive ``predictor`` over ``trace``, recording windowed miss rates."""
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    pcs = trace.pcs.tolist()
    types = trace.types.tolist()
    takens = trace.takens.tolist()
    targets = trace.targets.tolist()

    rates: List[float] = []
    window_count = 0
    window_misses = 0
    for index in range(len(pcs)):
        branch_type = types[index]
        pc = pcs[index]
        if branch_type == _COND:
            predictor.on_conditional(pc, takens[index])
            continue
        target = targets[index]
        if branch_type in _INDIRECT:
            prediction = predictor.predict_target(pc)
            window_count += 1
            if prediction != target:
                window_misses += 1
            predictor.train(pc, target)
            if window_count == window:
                rates.append(window_misses / window)
                window_count = 0
                window_misses = 0
        predictor.on_retired(pc, branch_type, target)
    if window_count:
        rates.append(window_misses / window_count)
    return LearningCurve(
        trace_name=trace.name,
        predictor_name=predictor.name,
        window=window,
        rates=rates,
    )


@dataclass
class BranchReport:
    """Misprediction attribution for one static indirect branch."""

    pc: int
    executions: int
    mispredictions: int
    distinct_targets: int

    @property
    def miss_rate(self) -> float:
        return self.mispredictions / self.executions if self.executions else 0.0


def per_branch_breakdown(
    predictor: IndirectBranchPredictor,
    trace: Trace,
    top: Optional[int] = None,
) -> List[BranchReport]:
    """Per-static-branch misprediction report, worst offenders first."""
    pcs = trace.pcs.tolist()
    types = trace.types.tolist()
    takens = trace.takens.tolist()
    targets = trace.targets.tolist()

    executions: Dict[int, int] = {}
    misses: Dict[int, int] = {}
    seen_targets: Dict[int, set] = {}
    for index in range(len(pcs)):
        branch_type = types[index]
        pc = pcs[index]
        if branch_type == _COND:
            predictor.on_conditional(pc, takens[index])
            continue
        target = targets[index]
        if branch_type in _INDIRECT:
            prediction = predictor.predict_target(pc)
            executions[pc] = executions.get(pc, 0) + 1
            if prediction != target:
                misses[pc] = misses.get(pc, 0) + 1
            seen_targets.setdefault(pc, set()).add(target)
            predictor.train(pc, target)
        predictor.on_retired(pc, branch_type, target)

    reports = [
        BranchReport(
            pc=pc,
            executions=count,
            mispredictions=misses.get(pc, 0),
            distinct_targets=len(seen_targets[pc]),
        )
        for pc, count in executions.items()
    ]
    reports.sort(key=lambda report: report.mispredictions, reverse=True)
    return reports[:top] if top is not None else reports


def steady_state_mpki(
    factory: Callable[[], IndirectBranchPredictor],
    trace: Trace,
    warmup_fraction: float = 0.5,
) -> Tuple[float, float]:
    """(whole-trace MPKI, steady-state MPKI after warmup).

    Approximates the paper's billion-instruction measurements on short
    synthetic traces by excluding the first ``warmup_fraction`` of
    records from the steady-state number.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError(f"warmup_fraction out of [0,1): {warmup_fraction}")
    whole = simulate(factory(), trace).mpki()
    warm_records = int(len(trace) * warmup_fraction)
    steady_result = simulate(factory(), trace, warmup_records=warm_records)
    # Normalize by the instructions actually measured.
    measured_instructions = (
        int(trace.gaps[warm_records:].sum()) + (len(trace) - warm_records)
    )
    steady = (
        1000.0 * steady_result.indirect_mispredictions / measured_instructions
        if measured_instructions
        else 0.0
    )
    return whole, steady


def format_learning_curve(curve: LearningCurve, width: int = 50) -> str:
    """ASCII rendering of a learning curve."""
    lines = [
        f"learning curve: {curve.predictor_name} on {curve.trace_name} "
        f"(window = {curve.window} indirect executions)"
    ]
    peak = max(curve.rates, default=0.0) or 1.0
    for index, rate in enumerate(curve.rates):
        bar = "#" * int(width * rate / peak)
        lines.append(f"  {index:>4}  {rate:6.3f}  {bar}")
    return "\n".join(lines)


def format_branch_reports(reports: List[BranchReport]) -> str:
    lines = [
        f"{'pc':>14}  {'execs':>7}  {'misses':>7}  {'rate':>6}  {'targets':>7}",
    ]
    for report in reports:
        lines.append(
            f"{report.pc:#14x}  {report.executions:>7}  "
            f"{report.mispredictions:>7}  {report.miss_rate:>6.3f}  "
            f"{report.distinct_targets:>7}"
        )
    return "\n".join(lines)
