"""The columnar batch simulation kernel (``backend="columnar"``).

The scalar engine retires branches one at a time through Python; this
module replays the same simulation as a handful of whole-trace numpy
tensor passes over the RPDERIV1 derived plane.  The result — predictor
state, per-branch predictions, every counter — is bit-identical to the
scalar loop (pinned by the equivalence suite over the full workload
suite); only the schedule of the arithmetic changes.

The kernel exploits a structural property of BLBP: almost everything the
scalar loop computes per branch is a pure function of the *trace*, not
of earlier predictions.

* **Global-history folds.**  The fold register for interval ``[s, e)``
  after ``c`` stream bits equals an XOR over a contiguous window of the
  outcome stream, with each bit pre-rotated by its stream position.
  Precomputing ``W`` prefix-XOR tables (one per fold phase) turns every
  (branch, interval) fold into two table lookups — no sequential state.
  An initial, possibly warm, history register is handled by prepending
  its bits to the stream as a virtual prefix.
* **Local histories.**  Per local-table slot, the register seen by each
  branch is a sliding window over (initial register bits ++ pushed
  target bits) — one vectorized window product per slot.
* **IBTB.**  Candidate sets evolve from actual targets only, never from
  predictions, so a single cheap structural replay in retirement order
  yields every branch's candidate-set snapshot up front.
* **Weights and θ.**  These *are* prediction-dependent, so the branch
  stream is cut into chunks at **update barriers**: a chunk ends where a
  branch would read a (bank, row) an earlier in-chunk branch writes.
  Within a chunk, every gather/dot/score/argmax/train step batches into
  one tensor op; the per-bit adaptive-θ recurrence replays with an
  optimistic-saturation scan (vectorized until the first counter
  saturation, exact scalar semantics at the saturation row, resume).

This module is the front door for every columnar predictor, not just
BLBP: :func:`simulate_columnar` dispatches to the ITTAGE and VPC
kernels (:mod:`repro.sim.kernel_ittage`, :mod:`repro.sim.kernel_vpc`),
:func:`columnar_support` reports whether — and *why not* — a predictor
can be replayed columnar, and :func:`simulate_columnar_many` replays a
fused multi-predictor group against one :class:`SharedPrecompute` pass
(fold prefix tables, IBTB candidate tensors, hash-mix planes and
derived-plane loads computed once per trace and shared across lanes,
keyed by trace content hash), advancing groups of compatible BLBP
lanes lane-parallel through the compiled ``blbp_replay_many`` core.

The dispatch in :func:`repro.sim.engine.simulate` only needs this
module's ``columnar_support`` / ``simulate_columnar`` /
``simulate_columnar_many`` trio; new per-predictor kernels slot in by
extending the registry in :func:`columnar_support`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.common.hashing import mix_pc, stable_hash64
from repro.core.blbp import BLBP
from repro.core.ibtb import IndirectBTB
from repro.predictors.ittage import ITTAGE
from repro.predictors.vpc import VPCPredictor
from repro.sim import native
from repro.sim.metrics import SimulationResult
from repro.trace.derived import DerivedPlane, compute_derived
from repro.trace.stream import Trace

#: Hard ceiling on chunk length.  Barriers already bound chunks by
#: dependency; the cap bounds the transient tensors (``MAX_CHUNK × N × K``).
MAX_CHUNK = 512

#: Score used to mask candidate-set padding out of the argmax.  Real
#: scores are bounded by K · max_transfer · N ≪ 2^31.
_NEG_SCORE = np.int32(-(2**31) + 1)


#: Exact predictor types with a columnar kernel.  The kernels replicate
#: each type's architectural state transitions; subclasses may override
#: hooks a kernel cannot see, so the checks are intentionally exact-type.
_COLUMNAR_TYPES: Tuple[type, ...] = (BLBP, ITTAGE, VPCPredictor)


def columnar_support(predictor: object) -> Tuple[bool, str]:
    """Whether the columnar kernels can replay ``predictor``, and why.

    Returns ``(True, "<kernel name>")`` for supported predictors and
    ``(False, "<actionable reason>")`` otherwise — the reason string is
    what ``--backend columnar-strict`` errors and fallback warnings
    surface, so it names both the offending type and the remedy.
    """
    kind = type(predictor)
    if kind is BLBP:
        return True, "BLBP columnar kernel (repro.sim.kernel)"
    if kind is ITTAGE:
        return True, "ITTAGE columnar kernel (repro.sim.kernel_ittage)"
    if kind is VPCPredictor:
        return True, "VPC columnar kernel (repro.sim.kernel_vpc)"
    supported_names = ", ".join(t.__name__ for t in _COLUMNAR_TYPES)
    for base in _COLUMNAR_TYPES:
        if isinstance(predictor, base):
            return False, (
                f"{kind.__name__} subclasses {base.__name__}, but the "
                f"columnar kernels are exact-type: a subclass may "
                f"override hooks the kernel cannot see.  Use the scalar "
                f"backend, or register a dedicated kernel for "
                f"{kind.__name__}."
            )
    return False, (
        f"{kind.__name__} has no columnar kernel (supported exact "
        f"types: {supported_names}).  Use the scalar backend for this "
        f"predictor."
    )


def columnar_supported(predictor: object) -> bool:
    """Whether the columnar kernels can replay ``predictor`` exactly."""
    return columnar_support(predictor)[0]


# ----------------------------------------------------------------------
# Shared precompute
# ----------------------------------------------------------------------


class SharedPrecompute:
    """Keyed cache of trace-pure precompute artifacts for one trace.

    One instance wraps one derived plane (one ``(trace content,
    ras_depth)`` identity) and memoizes every artifact the kernels
    derive from it: prefix-XOR fold tables, per-salt hash-mix planes
    over the distinct indirect PCs, local-register windows, IBTB
    candidate tensors, ITTAGE index/tag streams, VPC virtual-PC
    tables.  Keys embed everything an artifact depends on beyond the
    trace (initial register values, geometry, bit widths), so lanes of
    a fused group — or repeated solo runs over the same trace — share
    work exactly when sharing is bit-safe, and two lanes whose keys
    match receive the *same object*, which is what the multi-lane
    replay uses to decide groupability.

    Artifacts are read-only by convention; nothing in the cache is ever
    mutated after construction.
    """

    __slots__ = ("derived", "_artifacts")

    def __init__(self, derived: DerivedPlane) -> None:
        self.derived = derived
        self._artifacts: Dict[tuple, object] = {}

    def get(self, key: tuple, builder: Callable[[], object]) -> object:
        """The artifact under ``key``, building it on first use."""
        try:
            return self._artifacts[key]
        except KeyError:
            value = builder()
            self._artifacts[key] = value
            return value


#: Process-level LRU of shared precomputes, keyed by trace content.
#: Capacity is deliberately tiny: campaigns iterate predictors over one
#: trace at a time, so two entries cover the hot pattern (current trace
#: plus one straggler) while bounding the fold tables held alive.
_SHARED_CAPACITY = 2
_SHARED_CACHE: "OrderedDict[Tuple[str, int], SharedPrecompute]" = OrderedDict()


def shared_precompute(
    trace: Trace,
    ras_depth: int = 32,
    derived: Optional[DerivedPlane] = None,
) -> SharedPrecompute:
    """The shared precompute for ``trace``, reused across calls.

    Keyed by ``(derived content hash, ras_depth)``, so repeated
    simulations of the same trace — successive cells of a campaign,
    successive generations of a search — skip the trace-pure passes
    entirely no matter which Trace instance carries the content.
    """
    if derived is None:
        derived = compute_derived(trace, ras_depth)
    key = (derived.content_hash, ras_depth)
    entry = _SHARED_CACHE.get(key)
    if entry is not None and entry.derived.matches(trace, ras_depth):
        _SHARED_CACHE.move_to_end(key)
        return entry
    entry = SharedPrecompute(derived)
    _SHARED_CACHE[key] = entry
    _SHARED_CACHE.move_to_end(key)
    while len(_SHARED_CACHE) > _SHARED_CAPACITY:
        _SHARED_CACHE.popitem(last=False)
    return entry


def _validated_derived(
    trace: Trace, ras_depth: int, derived: Optional[DerivedPlane]
) -> DerivedPlane:
    if derived is None:
        return compute_derived(trace, ras_depth)
    if not derived.matches(trace, ras_depth):
        raise ValueError(
            f"derived plane is for {derived.trace_name!r} "
            f"({derived.records} records, ras_depth={derived.ras_depth}), "
            f"not {trace.name!r} ({len(trace)} records, "
            f"ras_depth={ras_depth})"
        )
    return derived


# ----------------------------------------------------------------------
# Trace-pure precomputation
# ----------------------------------------------------------------------


def _history_stream(
    ghist0: int, pending0: int, history_bits: int, outcomes: np.ndarray
) -> np.ndarray:
    """The full outcome stream, oldest first: virtual prefix ++ trace.

    The virtual prefix is the initial (possibly unmasked, ``pending0``
    bits wide beyond capacity) global-history register, so a kernel run
    over a warm predictor sees exactly the history the scalar loop would.
    """
    prefix_bits = history_bits + pending0
    if prefix_bits:
        nbytes = (prefix_bits + 7) // 8
        raw = np.frombuffer(
            ghist0.to_bytes(nbytes, "big"), dtype=np.uint8
        )
        pre = np.unpackbits(raw)[8 * nbytes - prefix_bits :]
    else:  # pragma: no cover - history_bits >= 1 by config validation
        pre = np.empty(0, dtype=np.uint8)
    return np.concatenate([pre, outcomes.astype(np.uint8)])


def _fold_prefix_tables(ext: np.ndarray, width: int) -> np.ndarray:
    """``P[m, j]`` = XOR of ``ext[u] << ((m - u) % width)`` for u < j.

    The fold of interval ``[s, e)`` after ``c`` consumed stream bits is
    ``P[(c - 1 - s) % W, c - s] ^ P[(c - 1 - s) % W, c - e]`` — each
    window bit lands at fold position ``(c - 1 - s - u) % W``, exactly
    :func:`repro.common.hashing.fold_int` over the live register.
    """
    total = len(ext)
    dtype = np.uint16 if width <= 15 else np.uint32
    table = np.zeros((width, total + 1), dtype=dtype)
    if total == 0:
        return table
    phase = (np.arange(total, dtype=np.int64) % width).astype(np.int64)
    ext_wide = ext.astype(dtype)
    for m in range(width):
        shifts = ((m - phase) % width).astype(dtype)
        table[m, 1:] = np.left_shift(ext_wide, shifts)
        np.bitwise_xor.accumulate(table[m], out=table[m])
    return table


def _branch_folds(
    prefix: np.ndarray,
    consumed: np.ndarray,
    intervals: Tuple[Tuple[int, int], ...],
    width: int,
) -> np.ndarray:
    """Fold values per (branch, interval) from the prefix-XOR tables."""
    count = len(consumed)
    folds = np.zeros((count, len(intervals)), dtype=np.uint64)
    for position, (start, end) in enumerate(intervals):
        phase = (consumed - 1 - start) % width
        high = prefix[phase, consumed - start]
        low = prefix[phase, consumed - end]
        folds[:, position] = (high ^ low).astype(np.uint64)
    return folds


def _local_registers(
    slots: np.ndarray,
    push_bits: np.ndarray,
    initial: List[int],
    length: int,
) -> Tuple[np.ndarray, Dict[int, int]]:
    """Per-branch local register at predict time, plus final table values.

    Branches are grouped by local-table *slot* (aliasing PCs share a
    register); within a slot the register before occurrence ``j`` is a
    ``length``-bit sliding window over the initial register's bits
    followed by the slot's pushed target bits.
    """
    count = len(slots)
    registers = np.zeros(count, dtype=np.int64)
    finals: Dict[int, int] = {}
    if count == 0:
        return registers, finals
    weights = (1 << (length - 1 - np.arange(length, dtype=np.int64)))
    order = np.argsort(slots, kind="stable")
    sorted_slots = slots[order]
    boundaries = np.flatnonzero(np.diff(sorted_slots)) + 1
    group_starts = np.concatenate([[0], boundaries, [count]])
    seed_positions = length - 1 - np.arange(length, dtype=np.int64)
    for g in range(len(group_starts) - 1):
        lo, hi = int(group_starts[g]), int(group_starts[g + 1])
        positions = order[lo:hi]
        slot = int(sorted_slots[lo])
        seed = int(initial[slot])
        padded = np.empty(length + (hi - lo), dtype=np.int64)
        padded[:length] = (seed >> seed_positions) & 1
        padded[length:] = push_bits[positions]
        windows = np.lib.stride_tricks.sliding_window_view(padded, length)
        values = windows @ weights
        registers[positions] = values[: hi - lo]
        finals[slot] = int(values[hi - lo])
    return registers, finals


def _hash_registers(registers: np.ndarray) -> np.ndarray:
    """Vectorized ``stable_hash64`` over the small set of register values."""
    unique, inverse = np.unique(registers, return_inverse=True)
    hashes = np.fromiter(
        (stable_hash64(int(value)) for value in unique),
        dtype=np.uint64,
        count=len(unique),
    )
    return hashes[inverse]


def _replay_ibtb(
    predictor: BLBP, pcs: List[int], targets: List[int]
) -> Tuple[np.ndarray, List[Tuple[int, ...]]]:
    """Structural IBTB replay: per-branch candidate-set snapshot ids.

    The IBTB's evolution depends only on actual targets (``ensure``)
    and on lookup-time lazy invalidation — never on predictions — so
    one pass in retirement order reproduces both every branch's
    candidate set *and* the exact final IBTB state.  Returns, per
    branch, an id into the list of distinct candidate-target tuples.
    """
    ibtb = predictor.ibtb
    count = len(pcs)
    set_ids = np.zeros(count, dtype=np.int64)
    registry: Dict[Tuple[int, ...], int] = {}
    sets: List[Tuple[int, ...]] = []

    if type(ibtb) is IndirectBTB:
        regions = ibtb.regions
        locate = ibtb._locate
        candidates_of = ibtb._candidates
        # pc -> (bucket, tag, rrpv list, target->way, sid,
        #        bucket version, region version).  Valid while neither
        #        version moved; a hit (RRPV promote) moves neither, so
        #        the hot path is two dict probes and two int compares.
        memo: Dict[int, tuple] = {}
        out = set_ids.tolist()
        for position in range(count):
            pc = pcs[position]
            target = targets[position]
            entry = memo.get(pc)
            if (
                entry is None
                or entry[5] != entry[0].version
                or entry[6] != regions.version
            ):
                if entry is None:
                    bucket, tag = locate(pc)
                else:
                    bucket, tag = entry[0], entry[1]
                candidates = candidates_of(bucket, tag)
                key = tuple(stored for _, stored in candidates)
                sid = registry.get(key)
                if sid is None:
                    sid = len(sets)
                    registry[key] = sid
                    sets.append(key)
                entry = (
                    bucket,
                    tag,
                    bucket.rrip._rrpv,
                    # reversed: on (impossible-by-construction) duplicate
                    # targets, keep the first way, like the scalar scan.
                    {stored: way for way, stored in reversed(candidates)},
                    sid,
                    bucket.version,
                    regions.version,
                )
                memo[pc] = entry
            out[position] = entry[4]
            # Inlined IndirectBTB.ensure (hit-promote or fill+insert).
            way = entry[3].get(target)
            if way is not None:
                entry[2][way] = 0  # rrip.touch
            else:
                bucket, tag = entry[0], entry[1]
                region, generation, offset = regions.encode(target)
                victim = bucket.rrip.victim()
                bucket.fill(victim, tag, region, generation, offset)
                bucket.rrip.insert(victim)
        set_ids = np.asarray(out, dtype=np.int64)
    else:
        for position in range(count):
            pc = pcs[position]
            key = tuple(
                target for _, target in ibtb.lookup(pc)
            )
            sid = registry.get(key)
            if sid is None:
                sid = len(sets)
                registry[key] = sid
                sets.append(key)
            set_ids[position] = sid
            ibtb.ensure(pc, targets[position])
    return set_ids, sets


def _candidate_tensors(
    sets: List[Tuple[int, ...]], bit_shifts: np.ndarray, num_bits: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Padded target/bit-matrix/min/max tensors over the distinct sets.

    Empty sets get columnwise min 1 / max 0 so the selective-training
    ``differs`` computation (min/max against the actual bits) yields
    all-False for them — matching the scalar ``bit_lows is None`` path.
    """
    set_count = len(sets)
    max_targets = max((len(s) for s in sets), default=0)
    width = max(1, max_targets)
    padded = np.zeros((set_count, width), dtype=np.uint64)
    sizes = np.zeros(set_count, dtype=np.int64)
    matrices = np.zeros((set_count, width, num_bits), dtype=np.int32)
    lows = np.ones((set_count, num_bits), dtype=np.int32)
    highs = np.zeros((set_count, num_bits), dtype=np.int32)
    for sid, members in enumerate(sets):
        if not members:
            continue
        targets = np.asarray(members, dtype=np.uint64)
        bits = (
            (targets[:, None] >> bit_shifts[None, :]) & np.uint64(1)
        ).astype(np.int32)
        size = len(members)
        padded[sid, :size] = targets
        sizes[sid] = size
        matrices[sid, :size] = bits
        lows[sid] = bits.min(axis=0)
        highs[sid] = bits.max(axis=0)
    return padded, sizes, matrices, lows, highs


# ----------------------------------------------------------------------
# Update barriers
# ----------------------------------------------------------------------


def _previous_conflict(rows: np.ndarray, table_rows: int) -> np.ndarray:
    """Per branch, the latest earlier branch sharing any (bank, row).

    ``-1`` when none.  Computed with one stable argsort over
    bank-qualified row keys: equal keys sort adjacent in retirement
    order, so each element's predecessor under the sort is its latest
    earlier conflict.
    """
    count, banks = rows.shape
    keys = rows + (np.arange(banks, dtype=np.int64) * table_rows)[None, :]
    flat = keys.ravel()
    order = np.argsort(flat, kind="stable")
    ordered = flat[order]
    same = ordered[1:] == ordered[:-1]
    previous_flat = np.full(count * banks, -1, dtype=np.int64)
    previous_flat[order[1:][same]] = order[:-1][same]
    return (previous_flat // banks).reshape(count, banks).max(axis=1)


def _chunk_bounds(previous: np.ndarray, limit: int) -> List[int]:
    """Chunk boundaries: cut where a branch reads an in-chunk write."""
    count = len(previous)
    bounds = [0]
    start = 0
    conflicts = previous.tolist()
    for branch in range(1, count):
        if conflicts[branch] >= start or branch - start >= limit:
            bounds.append(branch)
            start = branch
    bounds.append(count)
    return bounds


# ----------------------------------------------------------------------
# Adaptive-θ replay
# ----------------------------------------------------------------------


def _observe_row(
    active: np.ndarray,
    correct: np.ndarray,
    magnitudes: np.ndarray,
    theta: np.ndarray,
    counter: np.ndarray,
    cmax: int,
    cmin: int,
    out_mask: np.ndarray,
) -> None:
    """Exact scalar ``observe_and_mask`` semantics for one branch."""
    for bit in range(len(theta)):
        if not active[bit]:
            continue
        current = int(theta[bit])
        if correct[bit]:
            magnitude = int(magnitudes[bit])
            if magnitude >= current:
                continue
            counter[bit] -= 1
            if counter[bit] <= cmin:
                counter[bit] = 0
                if current > 1:
                    current -= 1
                    theta[bit] = current
            out_mask[bit] = magnitude < current
        else:
            counter[bit] += 1
            if counter[bit] >= cmax:
                counter[bit] = 0
                theta[bit] = current + 1
            out_mask[bit] = True


def _theta_replay(
    differs: np.ndarray,
    correct: np.ndarray,
    magnitudes: np.ndarray,
    theta: np.ndarray,
    counter: np.ndarray,
    cmax: int,
    cmin: int,
    adaptive: bool,
) -> np.ndarray:
    """Chunk-batched replay of the per-bit threshold controllers.

    θ only moves when a controller counter saturates, which takes tens
    of net observations, so the common case is *no* movement within a
    chunk.  The replay assumes that optimistically: with θ frozen, the
    counter trajectory is a running sum of ±1 deltas, computed for the
    whole chunk in one cumsum.  The first row where that trajectory
    saturates falls back to the exact scalar update (which may move θ),
    and the scan resumes after it.  Before the first saturation the
    trajectory is exact, so the fallback row — and therefore the whole
    replay — is exact.
    """
    count, _num_bits = differs.shape
    mask = np.zeros_like(differs)
    if not adaptive:
        np.logical_and(
            differs, ~correct | (magnitudes < theta[None, :]), out=mask
        )
        return mask
    cursor = 0
    while cursor < count:
        low = magnitudes[cursor:] < theta[None, :]
        active = differs[cursor:]
        right = correct[cursor:]
        delta = np.where(
            active, np.where(right, np.where(low, -1, 0), 1), 0
        ).astype(np.int32)
        trajectory = np.cumsum(delta, axis=0)
        trajectory += counter[None, :]
        saturated = ((trajectory >= cmax) & (delta == 1)) | (
            (trajectory <= cmin) & (delta == -1)
        )
        hit_rows = np.flatnonzero(saturated.any(axis=1))
        if hit_rows.size == 0:
            mask[cursor:] = active & (~right | low)
            counter[:] = trajectory[-1]
            return mask
        first = int(hit_rows[0])
        if first > 0:
            mask[cursor : cursor + first] = active[:first] & (
                ~right[:first] | low[:first]
            )
            counter[:] = trajectory[first - 1]
        row = cursor + first
        _observe_row(
            differs[row],
            correct[row],
            magnitudes[row],
            theta,
            counter,
            cmax,
            cmin,
            mask[row],
        )
        cursor = row + 1
    return mask


# ----------------------------------------------------------------------
# Prediction-dependent replay (two interchangeable implementations)
# ----------------------------------------------------------------------


def _replay_chunked(
    rows: np.ndarray,
    table_rows: int,
    set_ids: np.ndarray,
    padded_targets: np.ndarray,
    set_sizes: np.ndarray,
    bit_matrices: np.ndarray,
    differs_all: np.ndarray,
    desired_bits: np.ndarray,
    lut: np.ndarray,
    lut_offset: int,
    tensor: np.ndarray,
    magnitude: int,
    theta: np.ndarray,
    counter: np.ndarray,
    cmax: int,
    cmin: int,
    adaptive: bool,
    predictions: np.ndarray,
) -> int:
    """Pure-numpy replay: batched tensor ops between update barriers.

    Mutates ``tensor`` / ``theta`` / ``counter`` / ``predictions`` in
    place and returns the number of trained weight bits — the same
    contract as :func:`_replay_compiled`.
    """
    branch_count, bank_count = rows.shape
    previous = _previous_conflict(rows, table_rows)
    bounds = _chunk_bounds(previous, MAX_CHUNK)
    bank_index = np.arange(bank_count)[None, :]
    width_index = np.arange(padded_targets.shape[1])[None, :]
    trained_bits = 0

    for chunk in range(len(bounds) - 1):
        lo, hi = bounds[chunk], bounds[chunk + 1]
        chunk_rows = rows[lo:hi]
        raw = tensor[bank_index, chunk_rows]
        yout = lut[raw.astype(np.intp) + lut_offset].sum(
            axis=1, dtype=np.int32
        )

        chunk_sets = set_ids[lo:hi]
        scores = np.matmul(
            bit_matrices[chunk_sets], yout[:, :, None]
        )[:, :, 0]
        valid = width_index < set_sizes[chunk_sets][:, None]
        best = np.argmax(
            np.where(valid, scores, _NEG_SCORE), axis=1
        )
        predictions[lo:hi] = padded_targets[chunk_sets, best]

        desired = desired_bits[lo:hi]
        correct = (yout >= 0) == desired
        magnitudes = np.abs(yout)
        mask = _theta_replay(
            differs_all[lo:hi],
            correct,
            magnitudes,
            theta,
            counter,
            cmax,
            cmin,
            adaptive,
        )
        trained = int(mask.sum())
        if trained:
            trained_bits += trained
            touched = mask.any(axis=1)
            rows_sel = chunk_rows[touched]
            update = np.where(
                mask[touched], np.where(desired[touched], 1, -1), 0
            ).astype(np.int16)[:, None, :]
            current = tensor[bank_index, rows_sel].astype(np.int16)
            current += update
            np.clip(current, -magnitude, magnitude, out=current)
            tensor[bank_index, rows_sel] = current.astype(np.int8)
    return trained_bits


def _replay_compiled(
    fn,
    rows: np.ndarray,
    table_rows: int,
    set_ids: np.ndarray,
    padded_targets: np.ndarray,
    set_sizes: np.ndarray,
    bit_matrices: np.ndarray,
    differs_all: np.ndarray,
    desired_bits: np.ndarray,
    lut: np.ndarray,
    lut_offset: int,
    tensor: np.ndarray,
    magnitude: int,
    theta: np.ndarray,
    counter: np.ndarray,
    cmax: int,
    cmin: int,
    adaptive: bool,
    predictions: np.ndarray,
) -> int:
    """Replay through the compiled core (:mod:`repro.sim.native`).

    One C call walks the branch stream in retirement order over the
    same precomputed tensors the chunked path consumes; no barriers are
    needed because the walk is already sequential.
    """
    branch_count, bank_count = rows.shape
    num_bits = tensor.shape[2]
    tmax = padded_targets.shape[1]
    differs_u8 = np.ascontiguousarray(differs_all, dtype=np.uint8)
    desired_u8 = np.ascontiguousarray(desired_bits, dtype=np.uint8)
    lut32 = np.ascontiguousarray(lut, dtype=np.int32)
    return int(
        fn(
            branch_count,
            bank_count,
            num_bits,
            table_rows,
            tmax,
            rows.ctypes.data,
            set_ids.ctypes.data,
            padded_targets.ctypes.data,
            set_sizes.ctypes.data,
            bit_matrices.ctypes.data,
            differs_u8.ctypes.data,
            desired_u8.ctypes.data,
            lut32.ctypes.data,
            lut_offset,
            tensor.ctypes.data,
            magnitude,
            theta.ctypes.data,
            counter.ctypes.data,
            cmax,
            cmin,
            1 if adaptive else 0,
            predictions.ctypes.data,
        )
    )


# ----------------------------------------------------------------------
# The kernel
# ----------------------------------------------------------------------


def _mix_plane(
    shared: SharedPrecompute, unique_pcs: np.ndarray, salt: int
) -> np.ndarray:
    """Per-unique-PC ``mix_pc`` values for ``salt``, shared across lanes
    (and across predictor types — BLBP bank salts and ITTAGE table salts
    draw from the same keyed planes)."""
    return shared.get(
        ("pc-mix", salt),
        lambda: np.fromiter(
            (mix_pc(int(pc), salt=salt) for pc in unique_pcs.tolist()),
            dtype=np.uint64,
            count=len(unique_pcs),
        ),
    )


def _prepare_blbp(
    predictor: BLBP,
    trace: Trace,
    derived: DerivedPlane,
    shared: SharedPrecompute,
) -> dict:
    """All trace-pure planes for one BLBP lane, served from ``shared``.

    Artifacts that depend only on the trace (streams, prefix tables,
    mix planes, candidate tensors, differs/desired bit planes) are
    cached under keys embedding their remaining inputs — initial
    register values, geometry, bit shifts — so fused lanes with equal
    keys receive identical objects; the returned prep dict carries both
    the replay argument tuple and everything the write-back needs.
    """
    config = predictor.config
    histories = predictor.histories
    threshold = predictor.threshold
    weights = predictor.weights
    transfer = predictor.transfer

    outcomes = shared.get(("cond-outcomes",), derived.conditional_outcomes)
    conditional_count = derived.conditionals
    indirect_idx = shared.get(
        ("indirect-idx",), lambda: np.asarray(derived.indirect_idx)
    )
    branch_count = len(indirect_idx)
    branch_pcs = derived.indirect_pcs
    branch_targets = shared.get(
        ("indirect-targets",), lambda: np.asarray(derived.indirect_targets)
    )

    # --- trace-pure precomputation ------------------------------------
    ghist0 = histories._ghist
    pending0 = histories._pending
    width = histories._fold_bits
    intervals = config.effective_intervals
    intervals_key = tuple(intervals)
    prefix_bits = config.global_history_bits + pending0

    stream_key = (
        "blbp-stream", config.global_history_bits, ghist0, pending0
    )
    prefix = shared.get(
        ("blbp-prefix", stream_key, width),
        lambda: _fold_prefix_tables(
            shared.get(
                stream_key,
                lambda: _history_stream(
                    ghist0, pending0, config.global_history_bits, outcomes
                ),
            ),
            width,
        ),
    )

    pcs_list = shared.get(
        ("pc-list",), lambda: [int(pc) for pc in branch_pcs.tolist()]
    )
    targets_list = shared.get(
        ("target-list",),
        lambda: [int(t) for t in branch_targets.tolist()],
    )

    unique_pcs, pc_inverse = shared.get(
        ("pc-unique",),
        lambda: np.unique(branch_pcs, return_inverse=True),
    )
    bank_count = config.num_subpredictors
    mixes = shared.get(
        ("blbp-mixes", bank_count),
        lambda: np.stack(
            [
                _mix_plane(shared, unique_pcs, salt)
                for salt in range(bank_count)
            ],
            axis=1,
        ),
    )

    num_local = histories._local.num_entries
    slot_of_pc = shared.get(
        ("blbp-slots", num_local, bank_count),
        lambda: (mixes[:, 0] % np.uint64(num_local)).astype(np.int64),
    )
    branch_slots = shared.get(
        ("blbp-branch-slots", num_local, bank_count),
        lambda: slot_of_pc[pc_inverse],
    )

    push_bits = shared.get(
        ("blbp-push-bits", config.local_target_bit),
        lambda: (
            (branch_targets >> np.uint64(config.local_target_bit))
            & np.uint64(1)
        ).astype(np.int64),
    )
    local_key = (
        "blbp-local",
        config.local_history_bits,
        num_local,
        config.local_target_bit,
        tuple(histories._local._table),
    )
    registers, final_registers = shared.get(
        local_key,
        lambda: _local_registers(
            branch_slots,
            push_bits,
            histories._local._table,
            config.local_history_bits,
        ),
    )

    cond_before = shared.get(
        ("cond-before",),
        lambda: np.searchsorted(
            np.asarray(derived.cond_idx), indirect_idx
        ),
    )
    consumed = cond_before + prefix_bits
    folds = shared.get(
        ("blbp-folds", stream_key, width, intervals_key),
        lambda: _branch_folds(prefix, consumed, intervals, width),
    )

    table_rows = config.table_rows
    use_local = config.use_local_history
    rows_key = (
        "blbp-rows",
        stream_key,
        width,
        intervals_key,
        table_rows,
        bank_count,
        local_key if use_local else None,
    )

    def _build_rows() -> np.ndarray:
        built = np.empty((branch_count, bank_count), dtype=np.int64)
        mix0 = mixes[pc_inverse, 0]
        if use_local:
            mix0 = mix0 ^ _hash_registers(registers)
        built[:, 0] = (mix0 % np.uint64(table_rows)).astype(np.int64)
        for position in range(len(intervals)):
            mixed = mixes[pc_inverse, position + 1] ^ folds[:, position]
            built[:, position + 1] = (
                mixed % np.uint64(table_rows)
            ).astype(np.int64)
        return built

    rows = shared.get(rows_key, _build_rows)

    ibtb = predictor.ibtb
    ibtb_key = ("ibtb", type(ibtb).__qualname__, ibtb.state_hash())

    def _build_ibtb() -> tuple:
        ids, candidate_sets = _replay_ibtb(
            predictor, pcs_list, targets_list
        )
        return ids, candidate_sets, ibtb.state_dict()

    set_ids, sets, ibtb_final = shared.get(ibtb_key, _build_ibtb)
    # A cache hit skips the structural replay entirely — the IBTB jumps
    # straight to its recorded final state.  (On a miss this reloads the
    # state the replay just produced, a no-op round-trip.)
    ibtb.load_state(ibtb_final)

    shifts_key = tuple(int(s) for s in predictor._bit_shifts.tolist())
    num_bits = config.num_target_bits
    padded_targets, set_sizes, bit_matrices, set_lows, set_highs = (
        shared.get(
            ("blbp-candidates", ibtb_key, shifts_key, num_bits),
            lambda: _candidate_tensors(
                sets, predictor._bit_shifts, num_bits
            ),
        )
    )

    bits_key = ("blbp-target-bits", shifts_key)

    def _build_target_bits() -> tuple:
        target_unique, target_inverse = np.unique(
            branch_targets, return_inverse=True
        )
        unique_bits = (
            (target_unique[:, None] >> predictor._bit_shifts[None, :])
            & np.uint64(1)
        ).astype(np.int32)
        actual = unique_bits[target_inverse]
        return actual, actual == 1

    actual_bits, desired_bits = shared.get(bits_key, _build_target_bits)
    if config.use_selective_update:
        differs_key = ("blbp-differs", ibtb_key, shifts_key, num_bits)
        differs_all = shared.get(
            differs_key,
            lambda: (
                np.minimum(set_lows[set_ids], actual_bits)
                != np.maximum(set_highs[set_ids], actual_bits)
            ),
        )
    else:
        differs_key = ("blbp-differs-dense", shifts_key)
        differs_all = shared.get(
            differs_key, lambda: np.ones_like(desired_bits)
        )
    differs_u8 = shared.get(
        ("u8", differs_key),
        lambda: np.ascontiguousarray(differs_all, dtype=np.uint8),
    )
    desired_u8 = shared.get(
        ("u8", bits_key),
        lambda: np.ascontiguousarray(desired_bits, dtype=np.uint8),
    )

    # --- mutable per-lane state ---------------------------------------
    tensor = weights.weights
    lut = transfer._lut
    theta = np.asarray(threshold._theta, dtype=np.int64)
    counter = np.asarray(threshold._counter, dtype=np.int64)
    predictions = np.zeros(branch_count, dtype=np.uint64)
    prediction_valid = set_sizes[set_ids] > 0

    return {
        "predictor": predictor,
        "branch_count": branch_count,
        "num_bits": num_bits,
        "tmax": padded_targets.shape[1],
        "bank_count": bank_count,
        "table_rows": table_rows,
        "rows": rows,
        "set_ids": set_ids,
        "padded_targets": padded_targets,
        "set_sizes": set_sizes,
        "bit_matrices": bit_matrices,
        "differs_all": differs_all,
        "desired_bits": desired_bits,
        "differs_u8": differs_u8,
        "desired_u8": desired_u8,
        "lut": lut,
        "lut32": np.ascontiguousarray(lut, dtype=np.int32),
        "lut_offset": transfer.magnitude_max,
        "tensor": tensor,
        "magnitude": weights.magnitude,
        "theta": theta,
        "counter": counter,
        "cmax": threshold._max,
        "cmin": threshold._min,
        "adaptive": threshold.adaptive,
        "predictions": predictions,
        "prediction_valid": prediction_valid,
        "trained": 0,
        # Write-back inputs.
        "final_registers": final_registers,
        "outcomes": outcomes,
        "conditional_count": conditional_count,
        "consumed": consumed,
        "prefix": prefix,
        "intervals": intervals,
        "width": width,
        "prefix_bits": prefix_bits,
        "ghist0": ghist0,
        "pending0": pending0,
        "indirect_idx": indirect_idx,
        "branch_pcs": branch_pcs,
        "branch_targets": branch_targets,
        # Lanes whose shared planes are the *same objects* (and whose
        # bit/pad geometry matches) may replay lane-parallel together.
        "group_key": (
            branch_count,
            num_bits,
            padded_targets.shape[1],
            id(set_ids),
            id(padded_targets),
            id(set_sizes),
            id(bit_matrices),
            id(differs_u8),
            id(desired_u8),
        ),
    }


def _replay_blbp(prep: dict) -> None:
    """Solo prediction-dependent replay for one prepared BLBP lane."""
    if not prep["branch_count"]:
        return
    arguments = (
        prep["rows"],
        prep["table_rows"],
        prep["set_ids"],
        prep["padded_targets"],
        prep["set_sizes"],
        prep["bit_matrices"],
        prep["differs_all"],
        prep["desired_bits"],
        prep["lut"],
        prep["lut_offset"],
        prep["tensor"],
        prep["magnitude"],
        prep["theta"],
        prep["counter"],
        prep["cmax"],
        prep["cmin"],
        prep["adaptive"],
        prep["predictions"],
    )
    replay = native.load() if prep["tensor"].flags.c_contiguous else None
    if replay is not None:
        prep["trained"] = _replay_compiled(replay, *arguments)
    else:
        prep["trained"] = _replay_chunked(*arguments)


def _pointer_array(arrays: List[np.ndarray]) -> np.ndarray:
    """Per-lane base addresses, marshalled as a ``uint64`` vector."""
    return np.asarray(
        [array.ctypes.data for array in arrays], dtype=np.uint64
    )


def _replay_blbp_group(preps: List[dict]) -> bool:
    """Lane-parallel compiled replay for a fused BLBP group.

    Every prep in ``preps`` must carry the same ``group_key`` — i.e.
    identical shared planes by object identity.  Returns False (caller
    replays each lane solo, same results) when the compiled library is
    unavailable or a lane's mutable tensors are not contiguous.
    """
    if len(preps) < 2 or not preps[0]["branch_count"]:
        return False
    fn = native.load("blbp_replay_many")
    if fn is None:
        return False
    for prep in preps:
        if not (
            prep["tensor"].flags.c_contiguous
            and prep["rows"].flags.c_contiguous
        ):
            return False

    first = preps[0]
    lanes = len(preps)
    banks = np.asarray([p["bank_count"] for p in preps], dtype=np.int64)
    table_rows = np.asarray(
        [p["table_rows"] for p in preps], dtype=np.int64
    )
    lut_offsets = np.asarray(
        [p["lut_offset"] for p in preps], dtype=np.int64
    )
    magnitudes = np.asarray(
        [p["magnitude"] for p in preps], dtype=np.int64
    )
    cmaxs = np.asarray([p["cmax"] for p in preps], dtype=np.int64)
    cmins = np.asarray([p["cmin"] for p in preps], dtype=np.int64)
    adaptives = np.asarray(
        [1 if p["adaptive"] else 0 for p in preps], dtype=np.int64
    )
    trained = np.zeros(lanes, dtype=np.int64)
    rows_ptr = _pointer_array([p["rows"] for p in preps])
    luts_ptr = _pointer_array([p["lut32"] for p in preps])
    weights_ptr = _pointer_array([p["tensor"] for p in preps])
    thetas_ptr = _pointer_array([p["theta"] for p in preps])
    counters_ptr = _pointer_array([p["counter"] for p in preps])
    predictions_ptr = _pointer_array([p["predictions"] for p in preps])

    fn(
        lanes,
        first["branch_count"],
        first["num_bits"],
        first["tmax"],
        first["set_ids"].ctypes.data,
        first["padded_targets"].ctypes.data,
        first["set_sizes"].ctypes.data,
        first["bit_matrices"].ctypes.data,
        first["differs_u8"].ctypes.data,
        first["desired_u8"].ctypes.data,
        banks.ctypes.data,
        table_rows.ctypes.data,
        rows_ptr.ctypes.data,
        luts_ptr.ctypes.data,
        lut_offsets.ctypes.data,
        weights_ptr.ctypes.data,
        magnitudes.ctypes.data,
        thetas_ptr.ctypes.data,
        counters_ptr.ctypes.data,
        cmaxs.ctypes.data,
        cmins.ctypes.data,
        adaptives.ctypes.data,
        predictions_ptr.ctypes.data,
        trained.ctypes.data,
    )
    for lane, prep in enumerate(preps):
        prep["trained"] = int(trained[lane])
    return True


def _finish_blbp(
    prep: dict,
    trace: Trace,
    derived: DerivedPlane,
    warmup_records: int,
    collect_per_pc: bool,
    prediction_sink: Optional[Dict[str, np.ndarray]],
) -> SimulationResult:
    """State write-back and result assembly for a replayed BLBP lane.

    Identical accounting to the scalar loop: the predictor leaves with
    the exact state (``state_hash`` equal) the scalar path would have
    produced, and the result carries the same counters.
    """
    predictor = prep["predictor"]
    histories = predictor.histories
    threshold = predictor.threshold

    branch_count = prep["branch_count"]
    conditional_count = prep["conditional_count"]
    consumed = prep["consumed"]
    prefix_bits = prep["prefix_bits"]
    pending0 = prep["pending0"]
    outcomes = prep["outcomes"]
    indirect_idx = prep["indirect_idx"]
    predictions = prep["predictions"]
    prediction_valid = prep["prediction_valid"]
    branch_pcs = prep["branch_pcs"]
    branch_targets = prep["branch_targets"]

    if prediction_sink is not None:
        prediction_sink["indirect_idx"] = indirect_idx.copy()
        prediction_sink["valid"] = prediction_valid.copy()
        prediction_sink["predictions"] = predictions.copy()

    # --- state write-back ---------------------------------------------
    threshold._theta = [int(value) for value in prep["theta"]]
    threshold._counter = [int(value) for value in prep["counter"]]
    for slot, value in prep["final_registers"].items():
        histories._local._table[slot] = value

    if branch_count:
        trailing = conditional_count - int(consumed[-1] - prefix_bits)
        pending_final = trailing % 1024
    else:
        pending_final = (pending0 + conditional_count) % 1024
    packed = np.packbits(outcomes) if conditional_count else None
    if conditional_count:
        outcome_int = int.from_bytes(packed.tobytes(), "big") >> (
            8 * len(packed) - conditional_count
        )
    else:
        outcome_int = 0
    unmasked = (prep["ghist0"] << conditional_count) | outcome_int
    ghist_mask = histories._ghist_mask
    histories._ghist = (
        ((unmasked >> pending_final) & ghist_mask) << pending_final
    ) | (unmasked & ((1 << pending_final) - 1))
    histories._pending = pending_final
    histories.stat_fold_updates += (
        pending0 + conditional_count - pending_final
    ) * histories._num_folds

    flushed = prefix_bits + conditional_count - pending_final
    final_consumed = np.asarray([flushed], dtype=np.int64)
    final_folds = _branch_folds(
        prep["prefix"], final_consumed, prep["intervals"], prep["width"]
    )
    for position, fold in enumerate(histories._folds):
        fold.fold = int(final_folds[0, position])

    predictor.stat_predictions += branch_count
    predictor.stat_ibtb_probes += branch_count
    predictor.stat_trained_bits += prep["trained"]

    # --- result assembly (identical accounting to the scalar loop) ----
    counted = indirect_idx >= warmup_records
    mispredicted = counted & (
        ~prediction_valid | (predictions != branch_targets)
    )
    by_pc: Dict[int, int] = {}
    if collect_per_pc and mispredicted.any():
        miss_pcs, miss_counts = np.unique(
            branch_pcs[mispredicted], return_counts=True
        )
        by_pc = {
            int(pc): int(count)
            for pc, count in zip(miss_pcs.tolist(), miss_counts.tolist())
        }

    return_indices = np.asarray(derived.return_idx)
    returns = 0
    return_mispredictions = 0
    if len(return_indices):
        counted_returns = return_indices >= warmup_records
        returns = int(np.count_nonzero(counted_returns))
        return_mispredictions = int(
            np.count_nonzero(
                counted_returns & (np.asarray(derived.return_ok) == 0)
            )
        )

    return SimulationResult(
        trace_name=trace.name,
        predictor_name=predictor.name,
        total_instructions=trace.total_instructions(),
        indirect_branches=int(np.count_nonzero(counted)),
        indirect_mispredictions=int(np.count_nonzero(mispredicted)),
        return_branches=returns,
        return_mispredictions=return_mispredictions,
        conditional_branches=conditional_count,
        mispredictions_by_pc=by_pc,
    )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def simulate_columnar(
    predictor,
    trace: Trace,
    ras_depth: int = 32,
    warmup_records: int = 0,
    collect_per_pc: bool = False,
    derived: Optional[DerivedPlane] = None,
    prediction_sink: Optional[Dict[str, np.ndarray]] = None,
    shared: Optional[SharedPrecompute] = None,
) -> SimulationResult:
    """Replay ``trace`` through ``predictor`` as columnar tensor passes.

    Bit-identical to ``simulate(predictor, trace, ...)``: the same
    predictions, the same counters, and the same final predictor state
    (``state_dict`` / ``state_hash`` equal).  The predictor may be warm
    — mid-campaign state, restored snapshots — the kernels seed their
    precomputation from the live registers.

    Dispatches on exact predictor type: BLBP replays in this module,
    ITTAGE and VPC through :mod:`repro.sim.kernel_ittage` and
    :mod:`repro.sim.kernel_vpc`.  Unsupported predictors raise
    ``TypeError`` carrying the :func:`columnar_support` reason.

    Trace-pure precomputation is served from a :class:`SharedPrecompute`
    — pass ``shared`` to reuse one across calls explicitly, or let the
    kernel fetch the process-level cache entry for the trace's content
    hash (so repeated simulations of one trace skip the pure passes).

    Callers normally go through :func:`repro.sim.engine.simulate` with
    ``backend="columnar"``, which validates support and falls back to
    the scalar loop for features the kernels do not cover
    (checkpointing, resume, profiling).

    ``prediction_sink``, when given a dict, receives the kernel's
    per-branch arrays after replay — ``indirect_idx`` (record index of
    every indirect branch), ``valid`` (whether a prediction was made),
    and ``predictions`` (the predicted target per branch) — letting
    equivalence tests assert per-branch lockstep against the scalar
    loop rather than just aggregate counts.
    """
    supported, reason = columnar_support(predictor)
    if not supported:
        raise TypeError(reason)
    derived = _validated_derived(trace, ras_depth, derived)
    if shared is None:
        shared = shared_precompute(trace, ras_depth, derived)

    if type(predictor) is ITTAGE:
        from repro.sim.kernel_ittage import simulate_columnar_ittage

        return simulate_columnar_ittage(
            predictor,
            trace,
            derived,
            shared,
            warmup_records=warmup_records,
            collect_per_pc=collect_per_pc,
            prediction_sink=prediction_sink,
        )
    if type(predictor) is VPCPredictor:
        from repro.sim.kernel_vpc import simulate_columnar_vpc

        return simulate_columnar_vpc(
            predictor,
            trace,
            derived,
            shared,
            warmup_records=warmup_records,
            collect_per_pc=collect_per_pc,
            prediction_sink=prediction_sink,
        )

    prep = _prepare_blbp(predictor, trace, derived, shared)
    _replay_blbp(prep)
    return _finish_blbp(
        prep, trace, derived, warmup_records, collect_per_pc,
        prediction_sink,
    )


def simulate_columnar_many(
    predictors: List[object],
    trace: Trace,
    ras_depth: int = 32,
    warmup_records: int = 0,
    collect_per_pc: bool = False,
    derived: Optional[DerivedPlane] = None,
    prediction_sinks: Optional[
        List[Optional[Dict[str, np.ndarray]]]
    ] = None,
) -> List[SimulationResult]:
    """Fused columnar replay of many predictors over one trace.

    One shared precompute pass serves every lane: fold prefix tables,
    hash-mix planes, IBTB candidate tensors and derived loads are built
    once (keyed by everything they depend on) and reused by every
    predictor they fit.  BLBP lanes whose shared planes coincide
    advance lane-parallel through the compiled ``blbp_replay_many``
    core — each branch touches every lane before the next branch, with
    the shared planes hot in cache — and every other supported
    predictor replays solo against the same shared artifacts.

    Results are positionally aligned with ``predictors`` and each is
    bit-identical to a solo :func:`simulate_columnar` (equivalently,
    scalar) run of that lane; lanes are fully independent.  Raises
    ``TypeError`` with the :func:`columnar_support` reason if any
    predictor lacks a kernel — callers mixing supported and unsupported
    predictors must split the group (``repro.sim.engine.simulate_many``
    does exactly that).
    """
    derived = _validated_derived(trace, ras_depth, derived)
    shared = shared_precompute(trace, ras_depth, derived)
    count = len(predictors)
    if prediction_sinks is None:
        sinks: List[Optional[Dict[str, np.ndarray]]] = [None] * count
    else:
        sinks = list(prediction_sinks)
        if len(sinks) != count:
            raise ValueError(
                f"prediction_sinks has {len(sinks)} entries for "
                f"{count} predictors"
            )

    for predictor in predictors:
        supported, reason = columnar_support(predictor)
        if not supported:
            raise TypeError(reason)

    results: List[Optional[SimulationResult]] = [None] * count
    preps: List[Optional[dict]] = [None] * count
    for position, predictor in enumerate(predictors):
        if type(predictor) is BLBP:
            preps[position] = _prepare_blbp(
                predictor, trace, derived, shared
            )

    groups: Dict[tuple, List[int]] = {}
    for position, prep in enumerate(preps):
        if prep is not None:
            groups.setdefault(prep["group_key"], []).append(position)
    for members in groups.values():
        lane_preps = [preps[position] for position in members]
        if not _replay_blbp_group(lane_preps):
            for prep in lane_preps:
                _replay_blbp(prep)
    for position, prep in enumerate(preps):
        if prep is not None:
            results[position] = _finish_blbp(
                prep,
                trace,
                derived,
                warmup_records,
                collect_per_pc,
                sinks[position],
            )

    # ITTAGE / VPC lanes replay solo against the same shared artifacts.
    for position, predictor in enumerate(predictors):
        if results[position] is None:
            results[position] = simulate_columnar(
                predictor,
                trace,
                ras_depth=ras_depth,
                warmup_records=warmup_records,
                collect_per_pc=collect_per_pc,
                derived=derived,
                prediction_sink=sinks[position],
                shared=shared,
            )
    return results
