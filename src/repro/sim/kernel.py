"""The columnar batch simulation kernel (``backend="columnar"``).

The scalar engine retires branches one at a time through Python; this
module replays the same simulation as a handful of whole-trace numpy
tensor passes over the RPDERIV1 derived plane.  The result — predictor
state, per-branch predictions, every counter — is bit-identical to the
scalar loop (pinned by the equivalence suite over the full workload
suite); only the schedule of the arithmetic changes.

The kernel exploits a structural property of BLBP: almost everything the
scalar loop computes per branch is a pure function of the *trace*, not
of earlier predictions.

* **Global-history folds.**  The fold register for interval ``[s, e)``
  after ``c`` stream bits equals an XOR over a contiguous window of the
  outcome stream, with each bit pre-rotated by its stream position.
  Precomputing ``W`` prefix-XOR tables (one per fold phase) turns every
  (branch, interval) fold into two table lookups — no sequential state.
  An initial, possibly warm, history register is handled by prepending
  its bits to the stream as a virtual prefix.
* **Local histories.**  Per local-table slot, the register seen by each
  branch is a sliding window over (initial register bits ++ pushed
  target bits) — one vectorized window product per slot.
* **IBTB.**  Candidate sets evolve from actual targets only, never from
  predictions, so a single cheap structural replay in retirement order
  yields every branch's candidate-set snapshot up front.
* **Weights and θ.**  These *are* prediction-dependent, so the branch
  stream is cut into chunks at **update barriers**: a chunk ends where a
  branch would read a (bank, row) an earlier in-chunk branch writes.
  Within a chunk, every gather/dot/score/argmax/train step batches into
  one tensor op; the per-bit adaptive-θ recurrence replays with an
  optimistic-saturation scan (vectorized until the first counter
  saturation, exact scalar semantics at the saturation row, resume).

A compiled backend (Numba/Cython) can drop in behind
:func:`simulate_columnar`'s interface without touching the engine: the
dispatch in :func:`repro.sim.engine.simulate` only needs this module's
``columnar_supported`` / ``simulate_columnar`` pair.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.hashing import mix_pc, stable_hash64
from repro.core.blbp import BLBP
from repro.core.ibtb import IndirectBTB
from repro.sim import native
from repro.sim.metrics import SimulationResult
from repro.trace.derived import DerivedPlane, compute_derived
from repro.trace.stream import Trace

#: Hard ceiling on chunk length.  Barriers already bound chunks by
#: dependency; the cap bounds the transient tensors (``MAX_CHUNK × N × K``).
MAX_CHUNK = 512

#: Score used to mask candidate-set padding out of the argmax.  Real
#: scores are bounded by K · max_transfer · N ≪ 2^31.
_NEG_SCORE = np.int32(-(2**31) + 1)


def columnar_supported(predictor: object) -> bool:
    """Whether the columnar kernel can replay ``predictor`` exactly.

    The kernel replicates :class:`~repro.core.blbp.BLBP`'s architectural
    state transitions; subclasses may override hooks it cannot see, so
    the check is intentionally exact-type.
    """
    return type(predictor) is BLBP


# ----------------------------------------------------------------------
# Trace-pure precomputation
# ----------------------------------------------------------------------


def _history_stream(
    ghist0: int, pending0: int, history_bits: int, outcomes: np.ndarray
) -> np.ndarray:
    """The full outcome stream, oldest first: virtual prefix ++ trace.

    The virtual prefix is the initial (possibly unmasked, ``pending0``
    bits wide beyond capacity) global-history register, so a kernel run
    over a warm predictor sees exactly the history the scalar loop would.
    """
    prefix_bits = history_bits + pending0
    if prefix_bits:
        nbytes = (prefix_bits + 7) // 8
        raw = np.frombuffer(
            ghist0.to_bytes(nbytes, "big"), dtype=np.uint8
        )
        pre = np.unpackbits(raw)[8 * nbytes - prefix_bits :]
    else:  # pragma: no cover - history_bits >= 1 by config validation
        pre = np.empty(0, dtype=np.uint8)
    return np.concatenate([pre, outcomes.astype(np.uint8)])


def _fold_prefix_tables(ext: np.ndarray, width: int) -> np.ndarray:
    """``P[m, j]`` = XOR of ``ext[u] << ((m - u) % width)`` for u < j.

    The fold of interval ``[s, e)`` after ``c`` consumed stream bits is
    ``P[(c - 1 - s) % W, c - s] ^ P[(c - 1 - s) % W, c - e]`` — each
    window bit lands at fold position ``(c - 1 - s - u) % W``, exactly
    :func:`repro.common.hashing.fold_int` over the live register.
    """
    total = len(ext)
    dtype = np.uint16 if width <= 15 else np.uint32
    table = np.zeros((width, total + 1), dtype=dtype)
    if total == 0:
        return table
    phase = (np.arange(total, dtype=np.int64) % width).astype(np.int64)
    ext_wide = ext.astype(dtype)
    for m in range(width):
        shifts = ((m - phase) % width).astype(dtype)
        table[m, 1:] = np.left_shift(ext_wide, shifts)
        np.bitwise_xor.accumulate(table[m], out=table[m])
    return table


def _branch_folds(
    prefix: np.ndarray,
    consumed: np.ndarray,
    intervals: Tuple[Tuple[int, int], ...],
    width: int,
) -> np.ndarray:
    """Fold values per (branch, interval) from the prefix-XOR tables."""
    count = len(consumed)
    folds = np.zeros((count, len(intervals)), dtype=np.uint64)
    for position, (start, end) in enumerate(intervals):
        phase = (consumed - 1 - start) % width
        high = prefix[phase, consumed - start]
        low = prefix[phase, consumed - end]
        folds[:, position] = (high ^ low).astype(np.uint64)
    return folds


def _local_registers(
    slots: np.ndarray,
    push_bits: np.ndarray,
    initial: List[int],
    length: int,
) -> Tuple[np.ndarray, Dict[int, int]]:
    """Per-branch local register at predict time, plus final table values.

    Branches are grouped by local-table *slot* (aliasing PCs share a
    register); within a slot the register before occurrence ``j`` is a
    ``length``-bit sliding window over the initial register's bits
    followed by the slot's pushed target bits.
    """
    count = len(slots)
    registers = np.zeros(count, dtype=np.int64)
    finals: Dict[int, int] = {}
    if count == 0:
        return registers, finals
    weights = (1 << (length - 1 - np.arange(length, dtype=np.int64)))
    order = np.argsort(slots, kind="stable")
    sorted_slots = slots[order]
    boundaries = np.flatnonzero(np.diff(sorted_slots)) + 1
    group_starts = np.concatenate([[0], boundaries, [count]])
    seed_positions = length - 1 - np.arange(length, dtype=np.int64)
    for g in range(len(group_starts) - 1):
        lo, hi = int(group_starts[g]), int(group_starts[g + 1])
        positions = order[lo:hi]
        slot = int(sorted_slots[lo])
        seed = int(initial[slot])
        padded = np.empty(length + (hi - lo), dtype=np.int64)
        padded[:length] = (seed >> seed_positions) & 1
        padded[length:] = push_bits[positions]
        windows = np.lib.stride_tricks.sliding_window_view(padded, length)
        values = windows @ weights
        registers[positions] = values[: hi - lo]
        finals[slot] = int(values[hi - lo])
    return registers, finals


def _hash_registers(registers: np.ndarray) -> np.ndarray:
    """Vectorized ``stable_hash64`` over the small set of register values."""
    unique, inverse = np.unique(registers, return_inverse=True)
    hashes = np.fromiter(
        (stable_hash64(int(value)) for value in unique),
        dtype=np.uint64,
        count=len(unique),
    )
    return hashes[inverse]


def _replay_ibtb(
    predictor: BLBP, pcs: List[int], targets: List[int]
) -> Tuple[np.ndarray, List[Tuple[int, ...]]]:
    """Structural IBTB replay: per-branch candidate-set snapshot ids.

    The IBTB's evolution depends only on actual targets (``ensure``)
    and on lookup-time lazy invalidation — never on predictions — so
    one pass in retirement order reproduces both every branch's
    candidate set *and* the exact final IBTB state.  Returns, per
    branch, an id into the list of distinct candidate-target tuples.
    """
    ibtb = predictor.ibtb
    count = len(pcs)
    set_ids = np.zeros(count, dtype=np.int64)
    registry: Dict[Tuple[int, ...], int] = {}
    sets: List[Tuple[int, ...]] = []

    if type(ibtb) is IndirectBTB:
        regions = ibtb.regions
        locate = ibtb._locate
        candidates_of = ibtb._candidates
        # pc -> (bucket, tag, rrpv list, target->way, sid,
        #        bucket version, region version).  Valid while neither
        #        version moved; a hit (RRPV promote) moves neither, so
        #        the hot path is two dict probes and two int compares.
        memo: Dict[int, tuple] = {}
        out = set_ids.tolist()
        for position in range(count):
            pc = pcs[position]
            target = targets[position]
            entry = memo.get(pc)
            if (
                entry is None
                or entry[5] != entry[0].version
                or entry[6] != regions.version
            ):
                if entry is None:
                    bucket, tag = locate(pc)
                else:
                    bucket, tag = entry[0], entry[1]
                candidates = candidates_of(bucket, tag)
                key = tuple(stored for _, stored in candidates)
                sid = registry.get(key)
                if sid is None:
                    sid = len(sets)
                    registry[key] = sid
                    sets.append(key)
                entry = (
                    bucket,
                    tag,
                    bucket.rrip._rrpv,
                    # reversed: on (impossible-by-construction) duplicate
                    # targets, keep the first way, like the scalar scan.
                    {stored: way for way, stored in reversed(candidates)},
                    sid,
                    bucket.version,
                    regions.version,
                )
                memo[pc] = entry
            out[position] = entry[4]
            # Inlined IndirectBTB.ensure (hit-promote or fill+insert).
            way = entry[3].get(target)
            if way is not None:
                entry[2][way] = 0  # rrip.touch
            else:
                bucket, tag = entry[0], entry[1]
                region, generation, offset = regions.encode(target)
                victim = bucket.rrip.victim()
                bucket.fill(victim, tag, region, generation, offset)
                bucket.rrip.insert(victim)
        set_ids = np.asarray(out, dtype=np.int64)
    else:
        for position in range(count):
            pc = pcs[position]
            key = tuple(
                target for _, target in ibtb.lookup(pc)
            )
            sid = registry.get(key)
            if sid is None:
                sid = len(sets)
                registry[key] = sid
                sets.append(key)
            set_ids[position] = sid
            ibtb.ensure(pc, targets[position])
    return set_ids, sets


def _candidate_tensors(
    sets: List[Tuple[int, ...]], bit_shifts: np.ndarray, num_bits: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Padded target/bit-matrix/min/max tensors over the distinct sets.

    Empty sets get columnwise min 1 / max 0 so the selective-training
    ``differs`` computation (min/max against the actual bits) yields
    all-False for them — matching the scalar ``bit_lows is None`` path.
    """
    set_count = len(sets)
    max_targets = max((len(s) for s in sets), default=0)
    width = max(1, max_targets)
    padded = np.zeros((set_count, width), dtype=np.uint64)
    sizes = np.zeros(set_count, dtype=np.int64)
    matrices = np.zeros((set_count, width, num_bits), dtype=np.int32)
    lows = np.ones((set_count, num_bits), dtype=np.int32)
    highs = np.zeros((set_count, num_bits), dtype=np.int32)
    for sid, members in enumerate(sets):
        if not members:
            continue
        targets = np.asarray(members, dtype=np.uint64)
        bits = (
            (targets[:, None] >> bit_shifts[None, :]) & np.uint64(1)
        ).astype(np.int32)
        size = len(members)
        padded[sid, :size] = targets
        sizes[sid] = size
        matrices[sid, :size] = bits
        lows[sid] = bits.min(axis=0)
        highs[sid] = bits.max(axis=0)
    return padded, sizes, matrices, lows, highs


# ----------------------------------------------------------------------
# Update barriers
# ----------------------------------------------------------------------


def _previous_conflict(rows: np.ndarray, table_rows: int) -> np.ndarray:
    """Per branch, the latest earlier branch sharing any (bank, row).

    ``-1`` when none.  Computed with one stable argsort over
    bank-qualified row keys: equal keys sort adjacent in retirement
    order, so each element's predecessor under the sort is its latest
    earlier conflict.
    """
    count, banks = rows.shape
    keys = rows + (np.arange(banks, dtype=np.int64) * table_rows)[None, :]
    flat = keys.ravel()
    order = np.argsort(flat, kind="stable")
    ordered = flat[order]
    same = ordered[1:] == ordered[:-1]
    previous_flat = np.full(count * banks, -1, dtype=np.int64)
    previous_flat[order[1:][same]] = order[:-1][same]
    return (previous_flat // banks).reshape(count, banks).max(axis=1)


def _chunk_bounds(previous: np.ndarray, limit: int) -> List[int]:
    """Chunk boundaries: cut where a branch reads an in-chunk write."""
    count = len(previous)
    bounds = [0]
    start = 0
    conflicts = previous.tolist()
    for branch in range(1, count):
        if conflicts[branch] >= start or branch - start >= limit:
            bounds.append(branch)
            start = branch
    bounds.append(count)
    return bounds


# ----------------------------------------------------------------------
# Adaptive-θ replay
# ----------------------------------------------------------------------


def _observe_row(
    active: np.ndarray,
    correct: np.ndarray,
    magnitudes: np.ndarray,
    theta: np.ndarray,
    counter: np.ndarray,
    cmax: int,
    cmin: int,
    out_mask: np.ndarray,
) -> None:
    """Exact scalar ``observe_and_mask`` semantics for one branch."""
    for bit in range(len(theta)):
        if not active[bit]:
            continue
        current = int(theta[bit])
        if correct[bit]:
            magnitude = int(magnitudes[bit])
            if magnitude >= current:
                continue
            counter[bit] -= 1
            if counter[bit] <= cmin:
                counter[bit] = 0
                if current > 1:
                    current -= 1
                    theta[bit] = current
            out_mask[bit] = magnitude < current
        else:
            counter[bit] += 1
            if counter[bit] >= cmax:
                counter[bit] = 0
                theta[bit] = current + 1
            out_mask[bit] = True


def _theta_replay(
    differs: np.ndarray,
    correct: np.ndarray,
    magnitudes: np.ndarray,
    theta: np.ndarray,
    counter: np.ndarray,
    cmax: int,
    cmin: int,
    adaptive: bool,
) -> np.ndarray:
    """Chunk-batched replay of the per-bit threshold controllers.

    θ only moves when a controller counter saturates, which takes tens
    of net observations, so the common case is *no* movement within a
    chunk.  The replay assumes that optimistically: with θ frozen, the
    counter trajectory is a running sum of ±1 deltas, computed for the
    whole chunk in one cumsum.  The first row where that trajectory
    saturates falls back to the exact scalar update (which may move θ),
    and the scan resumes after it.  Before the first saturation the
    trajectory is exact, so the fallback row — and therefore the whole
    replay — is exact.
    """
    count, _num_bits = differs.shape
    mask = np.zeros_like(differs)
    if not adaptive:
        np.logical_and(
            differs, ~correct | (magnitudes < theta[None, :]), out=mask
        )
        return mask
    cursor = 0
    while cursor < count:
        low = magnitudes[cursor:] < theta[None, :]
        active = differs[cursor:]
        right = correct[cursor:]
        delta = np.where(
            active, np.where(right, np.where(low, -1, 0), 1), 0
        ).astype(np.int32)
        trajectory = np.cumsum(delta, axis=0)
        trajectory += counter[None, :]
        saturated = ((trajectory >= cmax) & (delta == 1)) | (
            (trajectory <= cmin) & (delta == -1)
        )
        hit_rows = np.flatnonzero(saturated.any(axis=1))
        if hit_rows.size == 0:
            mask[cursor:] = active & (~right | low)
            counter[:] = trajectory[-1]
            return mask
        first = int(hit_rows[0])
        if first > 0:
            mask[cursor : cursor + first] = active[:first] & (
                ~right[:first] | low[:first]
            )
            counter[:] = trajectory[first - 1]
        row = cursor + first
        _observe_row(
            differs[row],
            correct[row],
            magnitudes[row],
            theta,
            counter,
            cmax,
            cmin,
            mask[row],
        )
        cursor = row + 1
    return mask


# ----------------------------------------------------------------------
# Prediction-dependent replay (two interchangeable implementations)
# ----------------------------------------------------------------------


def _replay_chunked(
    rows: np.ndarray,
    table_rows: int,
    set_ids: np.ndarray,
    padded_targets: np.ndarray,
    set_sizes: np.ndarray,
    bit_matrices: np.ndarray,
    differs_all: np.ndarray,
    desired_bits: np.ndarray,
    lut: np.ndarray,
    lut_offset: int,
    tensor: np.ndarray,
    magnitude: int,
    theta: np.ndarray,
    counter: np.ndarray,
    cmax: int,
    cmin: int,
    adaptive: bool,
    predictions: np.ndarray,
) -> int:
    """Pure-numpy replay: batched tensor ops between update barriers.

    Mutates ``tensor`` / ``theta`` / ``counter`` / ``predictions`` in
    place and returns the number of trained weight bits — the same
    contract as :func:`_replay_compiled`.
    """
    branch_count, bank_count = rows.shape
    previous = _previous_conflict(rows, table_rows)
    bounds = _chunk_bounds(previous, MAX_CHUNK)
    bank_index = np.arange(bank_count)[None, :]
    width_index = np.arange(padded_targets.shape[1])[None, :]
    trained_bits = 0

    for chunk in range(len(bounds) - 1):
        lo, hi = bounds[chunk], bounds[chunk + 1]
        chunk_rows = rows[lo:hi]
        raw = tensor[bank_index, chunk_rows]
        yout = lut[raw.astype(np.intp) + lut_offset].sum(
            axis=1, dtype=np.int32
        )

        chunk_sets = set_ids[lo:hi]
        scores = np.matmul(
            bit_matrices[chunk_sets], yout[:, :, None]
        )[:, :, 0]
        valid = width_index < set_sizes[chunk_sets][:, None]
        best = np.argmax(
            np.where(valid, scores, _NEG_SCORE), axis=1
        )
        predictions[lo:hi] = padded_targets[chunk_sets, best]

        desired = desired_bits[lo:hi]
        correct = (yout >= 0) == desired
        magnitudes = np.abs(yout)
        mask = _theta_replay(
            differs_all[lo:hi],
            correct,
            magnitudes,
            theta,
            counter,
            cmax,
            cmin,
            adaptive,
        )
        trained = int(mask.sum())
        if trained:
            trained_bits += trained
            touched = mask.any(axis=1)
            rows_sel = chunk_rows[touched]
            update = np.where(
                mask[touched], np.where(desired[touched], 1, -1), 0
            ).astype(np.int16)[:, None, :]
            current = tensor[bank_index, rows_sel].astype(np.int16)
            current += update
            np.clip(current, -magnitude, magnitude, out=current)
            tensor[bank_index, rows_sel] = current.astype(np.int8)
    return trained_bits


def _replay_compiled(
    fn,
    rows: np.ndarray,
    table_rows: int,
    set_ids: np.ndarray,
    padded_targets: np.ndarray,
    set_sizes: np.ndarray,
    bit_matrices: np.ndarray,
    differs_all: np.ndarray,
    desired_bits: np.ndarray,
    lut: np.ndarray,
    lut_offset: int,
    tensor: np.ndarray,
    magnitude: int,
    theta: np.ndarray,
    counter: np.ndarray,
    cmax: int,
    cmin: int,
    adaptive: bool,
    predictions: np.ndarray,
) -> int:
    """Replay through the compiled core (:mod:`repro.sim.native`).

    One C call walks the branch stream in retirement order over the
    same precomputed tensors the chunked path consumes; no barriers are
    needed because the walk is already sequential.
    """
    branch_count, bank_count = rows.shape
    num_bits = tensor.shape[2]
    tmax = padded_targets.shape[1]
    differs_u8 = np.ascontiguousarray(differs_all, dtype=np.uint8)
    desired_u8 = np.ascontiguousarray(desired_bits, dtype=np.uint8)
    lut32 = np.ascontiguousarray(lut, dtype=np.int32)
    return int(
        fn(
            branch_count,
            bank_count,
            num_bits,
            table_rows,
            tmax,
            rows.ctypes.data,
            set_ids.ctypes.data,
            padded_targets.ctypes.data,
            set_sizes.ctypes.data,
            bit_matrices.ctypes.data,
            differs_u8.ctypes.data,
            desired_u8.ctypes.data,
            lut32.ctypes.data,
            lut_offset,
            tensor.ctypes.data,
            magnitude,
            theta.ctypes.data,
            counter.ctypes.data,
            cmax,
            cmin,
            1 if adaptive else 0,
            predictions.ctypes.data,
        )
    )


# ----------------------------------------------------------------------
# The kernel
# ----------------------------------------------------------------------


def simulate_columnar(
    predictor: BLBP,
    trace: Trace,
    ras_depth: int = 32,
    warmup_records: int = 0,
    collect_per_pc: bool = False,
    derived: Optional[DerivedPlane] = None,
    prediction_sink: Optional[Dict[str, np.ndarray]] = None,
) -> SimulationResult:
    """Replay ``trace`` through ``predictor`` as columnar tensor passes.

    Bit-identical to ``simulate(predictor, trace, ...)``: the same
    predictions, the same counters, and the same final predictor state
    (``state_dict`` / ``state_hash`` equal).  The predictor may be warm
    — mid-campaign state, restored snapshots — the kernel seeds its
    precomputation from the live registers.

    Callers normally go through :func:`repro.sim.engine.simulate` with
    ``backend="columnar"``, which validates support and falls back to
    the scalar loop for features the kernel does not cover
    (checkpointing, resume, profiling).

    ``prediction_sink``, when given a dict, receives the kernel's
    per-branch arrays after replay — ``indirect_idx`` (record index of
    every indirect branch), ``valid`` (whether a prediction was made),
    and ``predictions`` (the predicted target per branch) — letting
    equivalence tests assert per-branch lockstep against the scalar
    loop rather than just aggregate counts.
    """
    if not columnar_supported(predictor):
        raise TypeError(
            f"columnar kernel supports BLBP exactly, got "
            f"{type(predictor).__name__}"
        )
    if derived is None:
        derived = compute_derived(trace, ras_depth)
    elif not derived.matches(trace, ras_depth):
        raise ValueError(
            f"derived plane is for {derived.trace_name!r} "
            f"({derived.records} records, ras_depth={derived.ras_depth}), "
            f"not {trace.name!r} ({len(trace)} records, "
            f"ras_depth={ras_depth})"
        )

    config = predictor.config
    histories = predictor.histories
    threshold = predictor.threshold
    weights = predictor.weights
    transfer = predictor.transfer

    outcomes = derived.conditional_outcomes()
    conditional_count = derived.conditionals
    indirect_idx = np.asarray(derived.indirect_idx)
    branch_count = len(indirect_idx)
    branch_pcs = derived.indirect_pcs
    branch_targets = np.asarray(derived.indirect_targets)

    # --- trace-pure precomputation ------------------------------------
    ghist0 = histories._ghist
    pending0 = histories._pending
    width = histories._fold_bits
    intervals = config.effective_intervals
    prefix_bits = config.global_history_bits + pending0

    stream = _history_stream(
        ghist0, pending0, config.global_history_bits, outcomes
    )
    prefix = _fold_prefix_tables(stream, width)

    pcs_list = [int(pc) for pc in branch_pcs.tolist()]
    targets_list = [int(t) for t in branch_targets.tolist()]

    unique_pcs, pc_inverse = np.unique(branch_pcs, return_inverse=True)
    bank_count = config.num_subpredictors
    mixes = np.empty((len(unique_pcs), bank_count), dtype=np.uint64)
    for position, pc in enumerate(unique_pcs.tolist()):
        for salt in range(bank_count):
            mixes[position, salt] = mix_pc(int(pc), salt=salt)
    slot_of_pc = (
        mixes[:, 0] % np.uint64(histories._local.num_entries)
    ).astype(np.int64)
    branch_slots = slot_of_pc[pc_inverse]

    push_bits = (
        (branch_targets >> np.uint64(config.local_target_bit)) & np.uint64(1)
    ).astype(np.int64)
    registers, final_registers = _local_registers(
        branch_slots,
        push_bits,
        histories._local._table,
        config.local_history_bits,
    )

    consumed = (
        np.searchsorted(np.asarray(derived.cond_idx), indirect_idx)
        + prefix_bits
    )
    folds = _branch_folds(prefix, consumed, intervals, width)

    table_rows = config.table_rows
    rows = np.empty((branch_count, bank_count), dtype=np.int64)
    mix0 = mixes[pc_inverse, 0]
    if config.use_local_history:
        mix0 = mix0 ^ _hash_registers(registers)
    rows[:, 0] = (mix0 % np.uint64(table_rows)).astype(np.int64)
    for position in range(len(intervals)):
        mixed = mixes[pc_inverse, position + 1] ^ folds[:, position]
        rows[:, position + 1] = (mixed % np.uint64(table_rows)).astype(
            np.int64
        )

    set_ids, sets = _replay_ibtb(predictor, pcs_list, targets_list)
    padded_targets, set_sizes, bit_matrices, set_lows, set_highs = (
        _candidate_tensors(
            sets, predictor._bit_shifts, config.num_target_bits
        )
    )

    target_unique, target_inverse = np.unique(
        branch_targets, return_inverse=True
    )
    unique_bits = (
        (target_unique[:, None] >> predictor._bit_shifts[None, :])
        & np.uint64(1)
    ).astype(np.int32)
    actual_bits = unique_bits[target_inverse]
    desired_bits = actual_bits == 1
    if config.use_selective_update:
        differs_all = (
            np.minimum(set_lows[set_ids], actual_bits)
            != np.maximum(set_highs[set_ids], actual_bits)
        )
    else:
        differs_all = np.ones_like(desired_bits)

    # --- prediction-dependent replay ----------------------------------
    tensor = weights.weights
    lut = transfer._lut
    lut_offset = transfer.magnitude_max
    magnitude = weights.magnitude
    theta = np.asarray(threshold._theta, dtype=np.int64)
    counter = np.asarray(threshold._counter, dtype=np.int64)
    cmax = threshold._max
    cmin = threshold._min
    adaptive = threshold.adaptive

    predictions = np.zeros(branch_count, dtype=np.uint64)
    prediction_valid = set_sizes[set_ids] > 0
    trained_bits = 0

    if branch_count:
        replay = native.load() if tensor.flags.c_contiguous else None
        arguments = (
            rows,
            table_rows,
            set_ids,
            padded_targets,
            set_sizes,
            bit_matrices,
            differs_all,
            desired_bits,
            lut,
            lut_offset,
            tensor,
            magnitude,
            theta,
            counter,
            cmax,
            cmin,
            adaptive,
            predictions,
        )
        if replay is not None:
            trained_bits = _replay_compiled(replay, *arguments)
        else:
            trained_bits = _replay_chunked(*arguments)

    if prediction_sink is not None:
        prediction_sink["indirect_idx"] = indirect_idx.copy()
        prediction_sink["valid"] = prediction_valid.copy()
        prediction_sink["predictions"] = predictions.copy()

    # --- state write-back ---------------------------------------------
    threshold._theta = [int(value) for value in theta]
    threshold._counter = [int(value) for value in counter]
    for slot, value in final_registers.items():
        histories._local._table[slot] = value

    if branch_count:
        trailing = conditional_count - int(
            consumed[-1] - prefix_bits
        )
        pending_final = trailing % 1024
    else:
        pending_final = (pending0 + conditional_count) % 1024
    packed = np.packbits(outcomes) if conditional_count else None
    if conditional_count:
        outcome_int = int.from_bytes(packed.tobytes(), "big") >> (
            8 * len(packed) - conditional_count
        )
    else:
        outcome_int = 0
    unmasked = (ghist0 << conditional_count) | outcome_int
    ghist_mask = histories._ghist_mask
    histories._ghist = (
        ((unmasked >> pending_final) & ghist_mask) << pending_final
    ) | (unmasked & ((1 << pending_final) - 1))
    histories._pending = pending_final
    histories.stat_fold_updates += (
        pending0 + conditional_count - pending_final
    ) * histories._num_folds

    flushed = prefix_bits + conditional_count - pending_final
    final_consumed = np.asarray([flushed], dtype=np.int64)
    final_folds = _branch_folds(prefix, final_consumed, intervals, width)
    for position, fold in enumerate(histories._folds):
        fold.fold = int(final_folds[0, position])

    predictor.stat_predictions += branch_count
    predictor.stat_ibtb_probes += branch_count
    predictor.stat_trained_bits += trained_bits

    # --- result assembly (identical accounting to the scalar loop) ----
    counted = indirect_idx >= warmup_records
    mispredicted = counted & (
        ~prediction_valid | (predictions != branch_targets)
    )
    by_pc: Dict[int, int] = {}
    if collect_per_pc and mispredicted.any():
        miss_pcs, miss_counts = np.unique(
            branch_pcs[mispredicted], return_counts=True
        )
        by_pc = {
            int(pc): int(count)
            for pc, count in zip(miss_pcs.tolist(), miss_counts.tolist())
        }

    return_indices = np.asarray(derived.return_idx)
    returns = 0
    return_mispredictions = 0
    if len(return_indices):
        counted_returns = return_indices >= warmup_records
        returns = int(np.count_nonzero(counted_returns))
        return_mispredictions = int(
            np.count_nonzero(
                counted_returns & (np.asarray(derived.return_ok) == 0)
            )
        )

    return SimulationResult(
        trace_name=trace.name,
        predictor_name=predictor.name,
        total_instructions=trace.total_instructions(),
        indirect_branches=int(np.count_nonzero(counted)),
        indirect_mispredictions=int(np.count_nonzero(mispredicted)),
        return_branches=returns,
        return_mispredictions=return_mispredictions,
        conditional_branches=conditional_count,
        mispredictions_by_pc=by_pc,
    )
