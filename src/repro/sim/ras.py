"""Return-address stack (Kaeli & Emma, §1).

Procedure returns are moving-target branches that a BTB mishandles but a
small hardware stack predicts almost perfectly: calls push their return
address, returns pop it.  The paper (like the CBP infrastructure)
excludes returns from indirect-predictor MPKI because the RAS covers
them; the simulator still models the RAS so return mispredictions can be
reported separately and so trace generators are kept honest about
call/return pairing.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.state import Stateful, check_state, require
from repro.common.storage import StorageBudget


class ReturnAddressStack(Stateful):
    """A fixed-depth circular return-address stack.

    Overflow wraps around (overwriting the oldest entry) and underflow
    predicts nothing, as in real hardware.
    """

    def __init__(self, depth: int = 32) -> None:
        if depth < 1:
            raise ValueError(f"need depth >= 1, got {depth}")
        self.depth = depth
        self._stack: List[int] = []
        #: Pushes dropped to overflow (monitoring).
        self.overflows = 0

    def push(self, return_address: int) -> None:
        """Record the return address of a call."""
        if len(self._stack) >= self.depth:
            self._stack.pop(0)
            self.overflows += 1
        self._stack.append(return_address)

    def predict(self) -> Optional[int]:
        """Predicted target of the next return (top of stack)."""
        return self._stack[-1] if self._stack else None

    def pop(self) -> Optional[int]:
        """Consume the top entry at a return."""
        return self._stack.pop() if self._stack else None

    def __len__(self) -> int:
        return len(self._stack)

    def state_dict(self) -> dict:
        return {
            "v": 1,
            "kind": "ReturnAddressStack",
            "depth": self.depth,
            "stack": list(self._stack),
            "overflows": self.overflows,
        }

    def load_state(self, state: dict) -> None:
        check_state(state, "ReturnAddressStack")
        require(state["depth"] == self.depth, "RAS depth mismatch")
        stack = [int(address) for address in state["stack"]]
        require(len(stack) <= self.depth, "RAS snapshot deeper than stack")
        self._stack = stack
        self.overflows = int(state["overflows"])

    def storage_budget(self) -> StorageBudget:
        budget = StorageBudget("RAS")
        budget.add_table("return addresses", self.depth, 62)
        return budget
