"""Mid-trace simulation checkpoints.

A :class:`SimulationCheckpoint` freezes everything
:func:`repro.sim.engine.simulate` needs to continue a run from inside a
trace: the predictor's architectural state (its ``state_dict()``), the
return-address stack, the record cursor, the remaining warmup skip, and
the metric accumulators.  Restoring one into a fresh process and
replaying the rest of the trace is per-branch identical to never having
stopped — the equivalence suite asserts exactly that.

Checkpoints are JSON documents under the same versioned envelope as
predictor snapshots (see ``docs/checkpointing.md``).  Writes are atomic
(temp file + ``os.replace``) so a worker killed mid-write leaves the
previous checkpoint intact; loads are tolerant — a missing or unreadable
file means "start from the beginning", never a crash, because a
checkpoint is an optimization, not a source of truth.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.common.state import (
    StateError,
    canonical_json,
    check_state,
    hash_state,
    require,
)
from repro.trace.plane import atomic_write_bytes

#: Default records-between-checkpoints for ``--checkpoint-every``.
DEFAULT_CHECKPOINT_INTERVAL = 100_000


@dataclass
class SimulationCheckpoint:
    """A resumable point inside one (predictor, trace) simulation."""

    trace_name: str
    predictor_name: str
    #: Records consumed so far (the next record to replay).
    cursor: int
    #: Remaining warmup records whose mispredictions are not counted.
    skip: int
    indirect: int
    mispredictions: int
    returns: int
    return_mispredictions: int
    conditionals: int
    by_pc: Dict[int, int] = field(default_factory=dict)
    ras: Dict[str, Any] = field(default_factory=dict)
    predictor: Dict[str, Any] = field(default_factory=dict)

    def state_dict(self) -> Dict[str, Any]:
        return {
            "v": 1,
            "kind": "SimulationCheckpoint",
            "trace_name": self.trace_name,
            "predictor_name": self.predictor_name,
            "cursor": self.cursor,
            "skip": self.skip,
            "indirect": self.indirect,
            "mispredictions": self.mispredictions,
            "returns": self.returns,
            "return_mispredictions": self.return_mispredictions,
            "conditionals": self.conditionals,
            "by_pc": {str(pc): count for pc, count in self.by_pc.items()},
            "ras": self.ras,
            "predictor": self.predictor,
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "SimulationCheckpoint":
        check_state(state, "SimulationCheckpoint")
        cursor = int(state["cursor"])
        require(cursor >= 0, "checkpoint cursor must be >= 0")
        return cls(
            trace_name=state["trace_name"],
            predictor_name=state["predictor_name"],
            cursor=cursor,
            skip=int(state["skip"]),
            indirect=int(state["indirect"]),
            mispredictions=int(state["mispredictions"]),
            returns=int(state["returns"]),
            return_mispredictions=int(state["return_mispredictions"]),
            conditionals=int(state["conditionals"]),
            by_pc={int(pc): int(count) for pc, count in state["by_pc"].items()},
            ras=state["ras"],
            predictor=state["predictor"],
        )

    def checkpoint_hash(self) -> str:
        """Canonical SHA-256 of the whole checkpoint document."""
        return hash_state(self.state_dict())


def save_checkpoint(
    checkpoint: SimulationCheckpoint, path: Union[str, Path]
) -> None:
    """Atomically write ``checkpoint`` to ``path``.

    The document lands via a temp file in the same directory plus
    ``os.replace``, so readers only ever see a complete checkpoint —
    a SIGKILL mid-write leaves the previous one in place.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = canonical_json(checkpoint.state_dict())
    atomic_write_bytes(path, payload.encode("utf-8"))


def load_checkpoint(
    path: Union[str, Path]
) -> Optional[SimulationCheckpoint]:
    """Load a checkpoint, or ``None`` when absent or unreadable.

    A checkpoint file is a pure optimization: if it is missing, damaged,
    or from an incompatible protocol version, the caller restarts the
    simulation from record zero instead of failing.
    """
    path = Path(path)
    if not path.exists():
        return None
    try:
        with open(path, "r") as handle:
            state = json.load(handle)
        return SimulationCheckpoint.from_state(state)
    except (OSError, ValueError, KeyError, TypeError, StateError):
        return None


def discard_checkpoint(path: Union[str, Path]) -> None:
    """Remove a checkpoint file if present (end-of-cell cleanup)."""
    try:
        os.unlink(path)
    except OSError:
        pass


__all__ = [
    "DEFAULT_CHECKPOINT_INTERVAL",
    "SimulationCheckpoint",
    "discard_checkpoint",
    "load_checkpoint",
    "save_checkpoint",
]
