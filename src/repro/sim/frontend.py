"""Whole-front-end co-simulation: directions + targets + returns.

The paper evaluates indirect prediction in isolation (returns go to the
RAS, conditionals to a separate predictor).  A processor front-end pays
for *all* of them, and §6's consolidation idea only makes sense
evaluated front-end-wide.  :func:`simulate_frontend` drives a
*front-end predictor* — any :class:`IndirectBranchPredictor` whose
``on_conditional`` also predicts directions and exposes
``conditional_accuracy()`` (COTTAGE, VPC, and
:class:`repro.core.frontend.ConsolidatedBLBPFrontend` all qualify) —
and reports per-class and total branch MPKI.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.predictors.base import IndirectBranchPredictor
from repro.sim.engine import simulate
from repro.trace.stream import Trace


@dataclass
class FrontendResult:
    """Front-end-wide misprediction accounting for one trace."""

    trace_name: str
    frontend_name: str
    total_instructions: int
    indirect_mispredictions: int
    conditional_branches: int
    conditional_mispredictions: int
    return_mispredictions: int

    def indirect_mpki(self) -> float:
        return self._per_kilo(self.indirect_mispredictions)

    def conditional_mpki(self) -> float:
        return self._per_kilo(self.conditional_mispredictions)

    def return_mpki(self) -> float:
        return self._per_kilo(self.return_mispredictions)

    def total_mpki(self) -> float:
        """All branch mispredictions per kilo-instruction."""
        return self._per_kilo(
            self.indirect_mispredictions
            + self.conditional_mispredictions
            + self.return_mispredictions
        )

    def conditional_accuracy(self) -> float:
        if self.conditional_branches == 0:
            return 1.0
        return 1.0 - self.conditional_mispredictions / self.conditional_branches

    def _per_kilo(self, count: int) -> float:
        if self.total_instructions == 0:
            return 0.0
        return 1000.0 * count / self.total_instructions


def simulate_frontend(
    frontend: IndirectBranchPredictor,
    trace: Trace,
    ras_depth: int = 32,
) -> FrontendResult:
    """Run a combined front-end predictor over ``trace``.

    ``frontend`` must expose ``conditional_count`` /
    ``conditional_mispredictions`` attributes maintained by its
    ``on_conditional`` hook (as COTTAGE, VPC, and the consolidated BLBP
    front-end do).
    """
    for attribute in ("conditional_count", "conditional_mispredictions"):
        if not hasattr(frontend, attribute):
            raise TypeError(
                f"{type(frontend).__name__} is not a front-end predictor: "
                f"missing {attribute!r}"
            )
    result = simulate(frontend, trace, ras_depth=ras_depth)
    return FrontendResult(
        trace_name=trace.name,
        frontend_name=frontend.name,
        total_instructions=result.total_instructions,
        indirect_mispredictions=result.indirect_mispredictions,
        conditional_branches=frontend.conditional_count,
        conditional_mispredictions=frontend.conditional_mispredictions,
        return_mispredictions=result.return_mispredictions,
    )
