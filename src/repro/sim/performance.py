"""MPKI → performance model (§4.2's linearity argument).

The paper measures MPKI and cites prior work showing a linear
relationship between MPKI and performance, "thus it is sufficient to
measure MPKI to infer an impact on performance."  This module makes
that inference executable: a simple in-order-retire CPI model charging
a fixed pipeline-refill penalty per misprediction, so results can be
reported as CPI or speedup as well as MPKI.

CPI = base_cpi + penalty_cycles × (mispredictions / instructions)

with independent penalties available for indirect-target, conditional,
and return mispredictions.  The linearity is exact by construction; the
model's value is converting MPKI deltas into intuition-sized speedups
(e.g. "0.5 MPKI at a 20-cycle penalty ≈ 1% CPI").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.metrics import SimulationResult


@dataclass(frozen=True)
class PipelineModel:
    """A branch-misprediction-dominated CPI model.

    Attributes:
        base_cpi: CPI with perfect branch prediction.
        indirect_penalty: refill cycles per indirect-target misprediction
            (the paper notes indirect and conditional branches incur the
            same penalty; ~20 cycles is a deep-pipeline default).
        return_penalty: cycles per RAS misprediction.
    """

    base_cpi: float = 0.6
    indirect_penalty: float = 20.0
    return_penalty: float = 20.0

    def __post_init__(self) -> None:
        if self.base_cpi <= 0:
            raise ValueError(f"base_cpi must be positive, got {self.base_cpi}")
        if self.indirect_penalty < 0 or self.return_penalty < 0:
            raise ValueError("penalties must be non-negative")

    def cpi(self, result: SimulationResult) -> float:
        """CPI implied by a simulation result."""
        if result.total_instructions == 0:
            return self.base_cpi
        indirect_rate = (
            result.indirect_mispredictions / result.total_instructions
        )
        return_rate = (
            result.return_mispredictions / result.total_instructions
        )
        return (
            self.base_cpi
            + self.indirect_penalty * indirect_rate
            + self.return_penalty * return_rate
        )

    def cpi_from_mpki(self, mpki: float) -> float:
        """CPI from an indirect MPKI alone (the paper's linear map)."""
        if mpki < 0:
            raise ValueError(f"negative MPKI {mpki}")
        return self.base_cpi + self.indirect_penalty * mpki / 1000.0

    def speedup(
        self, baseline: SimulationResult, improved: SimulationResult
    ) -> float:
        """Relative speedup of ``improved`` over ``baseline`` (>1 = faster)."""
        return self.cpi(baseline) / self.cpi(improved)

    def mpki_to_ipc_loss(self, mpki: float) -> float:
        """Fraction of perfect-prediction IPC lost to this MPKI."""
        perfect = 1.0 / self.base_cpi
        actual = 1.0 / self.cpi_from_mpki(mpki)
        return 1.0 - actual / perfect
