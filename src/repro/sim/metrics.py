"""Result containers and the MPKI metric.

The paper's metric is mispredictions per kilo-instruction (MPKI), which
§4.2 argues tracks performance linearly.  For indirect predictors the
numerator counts mispredicted indirect jumps/calls (returns excluded —
they belong to the RAS).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class SimulationResult:
    """Outcome of one predictor over one trace."""

    trace_name: str
    predictor_name: str
    total_instructions: int
    indirect_branches: int
    indirect_mispredictions: int
    return_branches: int = 0
    return_mispredictions: int = 0
    conditional_branches: int = 0
    #: Per-static-branch misprediction counts, keyed by PC (diagnostics).
    mispredictions_by_pc: Dict[int, int] = field(default_factory=dict)
    #: Hot-path counters and phase timings for this cell, present only
    #: when the simulation ran with profiling enabled (the
    #: :meth:`~repro.sim.counters.SimCounters.as_dict` layout).
    profile: Optional[Dict[str, float]] = None
    #: Identity of the worker node that executed the cell ("" when it
    #: ran locally).  Provenance only: excluded from equality so a
    #: distributed campaign compares equal to a single-node one.
    node: str = field(default="", compare=False)

    def mpki(self) -> float:
        """Indirect-target mispredictions per 1000 instructions."""
        if self.total_instructions == 0:
            return 0.0
        return 1000.0 * self.indirect_mispredictions / self.total_instructions

    def return_mpki(self) -> float:
        """RAS mispredictions per 1000 instructions (reported separately)."""
        if self.total_instructions == 0:
            return 0.0
        return 1000.0 * self.return_mispredictions / self.total_instructions

    def misprediction_rate(self) -> float:
        """Fraction of indirect branches mispredicted."""
        if self.indirect_branches == 0:
            return 0.0
        return self.indirect_mispredictions / self.indirect_branches


@dataclass
class CampaignResult:
    """Results of a campaign: traces × predictors."""

    #: results[trace_name][predictor_name]
    results: Dict[str, Dict[str, SimulationResult]] = field(default_factory=dict)

    def add(self, result: SimulationResult) -> None:
        self.results.setdefault(result.trace_name, {})[
            result.predictor_name
        ] = result

    def predictors(self) -> List[str]:
        names: List[str] = []
        for per_trace in self.results.values():
            for name in per_trace:
                if name not in names:
                    names.append(name)
        return names

    def traces(self) -> List[str]:
        return list(self.results)

    def mpki_of(self, trace_name: str, predictor_name: str) -> float:
        return self.results[trace_name][predictor_name].mpki()

    def mean_mpki(self, predictor_name: str) -> float:
        """Arithmetic-mean MPKI across traces (the paper's §5.1 summary)."""
        values = [
            per_trace[predictor_name].mpki()
            for per_trace in self.results.values()
            if predictor_name in per_trace
        ]
        if not values:
            raise KeyError(f"no results for predictor {predictor_name!r}")
        return sum(values) / len(values)

    def mpki_series(self, predictor_name: str, trace_order: List[str]) -> List[float]:
        """Per-trace MPKI in a given trace order (for figure series)."""
        return [self.mpki_of(trace, predictor_name) for trace in trace_order]

    def traces_sorted_by(self, predictor_name: str) -> List[str]:
        """Trace names sorted by this predictor's MPKI (Fig. 8 x-axis)."""
        return sorted(
            self.results,
            key=lambda trace: self.results[trace][predictor_name].mpki(),
        )
