"""Prediction-latency model for BLBP's sequential similarity search.

§3.7 argues BLBP's cosine-similarity step is feasible with a small
parallel unit: "a feasible implementation could compute 5 cosine
similarities per cycle in parallel at a modest cost, taking only one
cycle for over half of all predictions and no more than 4 cycles for
90% of the predictions" — because most indirect branches have few
stored targets (Fig. 7).

This module measures exactly that: it records the candidate-set size at
every BLBP prediction over a trace and converts the distribution into
cycle counts at a configurable similarity throughput.  The bench
``benchmarks/bench_latency.py`` checks the two §3.7 percentile claims.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from repro.core.blbp import BLBP
from repro.trace.record import BranchType
from repro.trace.stream import Trace

_COND = int(BranchType.CONDITIONAL)
_INDIRECT = (int(BranchType.INDIRECT_JUMP), int(BranchType.INDIRECT_CALL))


@dataclass
class LatencyProfile:
    """Distribution of per-prediction selection latency."""

    trace_name: str
    similarities_per_cycle: int
    #: histogram: cycles -> number of predictions
    cycles_histogram: Dict[int, int] = field(default_factory=dict)

    @property
    def total_predictions(self) -> int:
        return sum(self.cycles_histogram.values())

    def fraction_within(self, cycles: int) -> float:
        """Fraction of predictions completing in <= ``cycles`` cycles."""
        total = self.total_predictions
        if total == 0:
            return 0.0
        covered = sum(
            count
            for cycle_count, count in self.cycles_histogram.items()
            if cycle_count <= cycles
        )
        return covered / total

    def mean_cycles(self) -> float:
        total = self.total_predictions
        if total == 0:
            return 0.0
        return (
            sum(cycles * count for cycles, count in self.cycles_histogram.items())
            / total
        )

    def merge(self, other: "LatencyProfile") -> "LatencyProfile":
        """Pool another profile's histogram into this one (same config)."""
        if other.similarities_per_cycle != self.similarities_per_cycle:
            raise ValueError("cannot merge profiles with different throughput")
        for cycles, count in other.cycles_histogram.items():
            self.cycles_histogram[cycles] = (
                self.cycles_histogram.get(cycles, 0) + count
            )
        return self


def profile_selection_latency(
    predictor: BLBP,
    trace: Trace,
    similarities_per_cycle: int = 5,
) -> LatencyProfile:
    """Measure BLBP's candidate-search latency distribution on a trace.

    Latency per prediction = ceil(candidates / throughput), minimum one
    cycle (an empty candidate set still spends the lookup cycle).
    """
    if similarities_per_cycle < 1:
        raise ValueError(
            f"similarities_per_cycle must be >= 1, got {similarities_per_cycle}"
        )
    pcs = trace.pcs.tolist()
    types = trace.types.tolist()
    takens = trace.takens.tolist()
    targets = trace.targets.tolist()

    histogram: Dict[int, int] = {}
    for index in range(len(pcs)):
        branch_type = types[index]
        pc = pcs[index]
        if branch_type == _COND:
            predictor.on_conditional(pc, takens[index])
            continue
        target = targets[index]
        if branch_type in _INDIRECT:
            candidates = len(predictor.ibtb.lookup(pc))
            cycles = max(1, math.ceil(candidates / similarities_per_cycle))
            histogram[cycles] = histogram.get(cycles, 0) + 1
            predictor.predict_target(pc)
            predictor.train(pc, target)
        predictor.on_retired(pc, branch_type, target)

    return LatencyProfile(
        trace_name=trace.name,
        similarities_per_cycle=similarities_per_cycle,
        cycles_histogram=histogram,
    )


def format_latency_profile(profile: LatencyProfile) -> str:
    lines = [
        f"BLBP selection latency ({profile.similarities_per_cycle} "
        f"similarities/cycle, {profile.total_predictions} predictions):",
    ]
    for cycles in sorted(profile.cycles_histogram):
        share = profile.cycles_histogram[cycles] / profile.total_predictions
        bar = "#" * int(50 * share)
        lines.append(f"  {cycles:>3} cycle(s)  {100 * share:6.2f}%  {bar}")
    lines.append(
        f"  <=1 cycle: {100 * profile.fraction_within(1):.1f}%   "
        f"<=4 cycles: {100 * profile.fraction_within(4):.1f}%   "
        f"mean {profile.mean_cycles():.2f}"
    )
    return "\n".join(lines)
