"""Statistical utilities for campaign results.

The paper reports arithmetic-mean MPKI over 88 traces without
uncertainty; with synthetic traces we can do better.  This module
provides seeded bootstrap confidence intervals over per-trace MPKI and
a paired bootstrap for predictor *differences* (the quantity behind the
"BLBP improves 5% over ITTAGE" claim), so benches can state whether the
reproduced ordering is resolved above suite-sampling noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.sim.metrics import CampaignResult


@dataclass(frozen=True)
class BootstrapInterval:
    """A bootstrap estimate with a central confidence interval."""

    mean: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def bootstrap_mean(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0xB007,
) -> BootstrapInterval:
    """Bootstrap CI for the mean of ``values``."""
    if not values:
        raise ValueError("need at least one value")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence out of (0,1): {confidence}")
    array = np.asarray(values, dtype=float)
    rng = np.random.default_rng(seed)
    draws = rng.integers(0, len(array), size=(resamples, len(array)))
    means = array[draws].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapInterval(
        mean=float(array.mean()),
        low=float(np.quantile(means, alpha)),
        high=float(np.quantile(means, 1.0 - alpha)),
        confidence=confidence,
    )


def paired_improvement(
    campaign: CampaignResult,
    baseline: str,
    improved: str,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0xB007,
) -> BootstrapInterval:
    """Bootstrap CI for the % MPKI reduction of ``improved`` vs
    ``baseline``, paired per trace (the §5.1 "+5%" quantity).

    Positive values mean ``improved`` has lower mean MPKI.
    """
    traces = campaign.traces()
    base = np.array(
        [campaign.mpki_of(trace, baseline) for trace in traces], dtype=float
    )
    new = np.array(
        [campaign.mpki_of(trace, improved) for trace in traces], dtype=float
    )
    if base.mean() == 0:
        raise ValueError(f"baseline {baseline!r} has zero mean MPKI")
    rng = np.random.default_rng(seed)
    draws = rng.integers(0, len(traces), size=(resamples, len(traces)))
    base_means = base[draws].mean(axis=1)
    new_means = new[draws].mean(axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        reductions = 100.0 * (base_means - new_means) / base_means
    reductions = reductions[np.isfinite(reductions)]
    alpha = (1.0 - confidence) / 2.0
    return BootstrapInterval(
        mean=float(100.0 * (base.mean() - new.mean()) / base.mean()),
        low=float(np.quantile(reductions, alpha)),
        high=float(np.quantile(reductions, 1.0 - alpha)),
        confidence=confidence,
    )


def geometric_mean(values: Sequence[float], epsilon: float = 1e-6) -> float:
    """Geometric mean with an epsilon floor (MPKI can be zero)."""
    array = np.asarray(values, dtype=float) + epsilon
    if np.any(array <= 0):
        raise ValueError("values must be > -epsilon")
    return float(np.exp(np.log(array).mean()) - epsilon)
