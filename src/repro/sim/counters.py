"""Hot-path observability: counters and phase timings for simulations.

The optimized BLBP hot path (fused weight tensor, batched incremental
folds, IBTB lookup caching) trades obviousness for speed; these counters
make its behaviour *observable* so a regression in work volume — e.g. a
fold that starts re-updating eagerly, or an IBTB cache that stops
hitting — shows up as numbers rather than as a silent slowdown.

:class:`SimCounters` accumulates

* **event counts** harvested from the predictor's ``sim_stats()`` hook
  (predictions, IBTB probes, trained weight bits, incremental fold
  updates) plus record/conditional counts from the simulation loop, and
* **phase wall times** (predict / train / conditional-push / total),
  measured only when profiling is requested — the fast path pays
  nothing.

One ``SimCounters`` may be threaded through many ``simulate`` calls to
aggregate a campaign; each cell's own numbers also land on its
:class:`~repro.sim.metrics.SimulationResult` ``profile`` dict, which is
what ``repro simulate --profile`` prints and the exec engine's journal
records.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Iterable, List, Optional

#: sim_stats() keys harvested into same-named counter attributes.
_STAT_KEYS = ("predictions", "ibtb_probes", "trained_bits", "fold_updates")


@dataclass
class SimCounters:
    """Cumulative event counts and phase timings for simulation runs."""

    #: Indirect-target predictions made (``predictor.sim_stats()``).
    predictions: int = 0
    #: IBTB candidate lookups issued.
    ibtb_probes: int = 0
    #: Individual weight bits adjusted by training.
    trained_bits: int = 0
    #: Incremental fold-update steps applied (one per interval per
    #: conditional outcome absorbed).
    fold_updates: int = 0
    #: Conditional branches replayed through the history.
    conditionals: int = 0
    #: Total trace records replayed.
    records: int = 0
    #: Wall time inside ``predict_target`` calls.
    predict_seconds: float = 0.0
    #: Wall time inside ``train`` calls.
    train_seconds: float = 0.0
    #: Wall time inside ``on_conditional`` calls.
    conditional_seconds: float = 0.0
    #: Wall time of the whole simulation loop.
    elapsed_seconds: float = 0.0

    def harvest(self, predictor) -> None:
        """Fold a predictor's ``sim_stats()`` into these counters.

        Predictors without the hook contribute nothing (every counter
        they cannot report stays at its current value).
        """
        stats_hook = getattr(predictor, "sim_stats", None)
        if stats_hook is None:
            return
        stats = stats_hook()
        for key in _STAT_KEYS:
            setattr(self, key, getattr(self, key) + int(stats.get(key, 0)))

    def merge(self, other: "SimCounters") -> None:
        """Add another counter set into this one (campaign aggregation)."""
        for spec in fields(self):
            setattr(
                self,
                spec.name,
                getattr(self, spec.name) + getattr(other, spec.name),
            )

    def throughput(self) -> float:
        """Records per second over the measured wall time (0 if untimed)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.records / self.elapsed_seconds

    def as_dict(self) -> Dict[str, float]:
        """A flat JSON-serializable view (ints stay ints)."""
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "SimCounters":
        """Rebuild from :meth:`as_dict` output (unknown keys ignored)."""
        known = {spec.name for spec in cls.__dataclass_fields__.values()}
        return cls(**{key: value for key, value in data.items() if key in known})


def aggregate_profiles(profiles: Iterable[Optional[Dict[str, float]]]) -> SimCounters:
    """Sum per-cell ``profile`` dicts (``None`` entries skipped)."""
    total = SimCounters()
    for profile in profiles:
        if profile:
            total.merge(SimCounters.from_dict(profile))
    return total


def format_counters(counters: SimCounters) -> str:
    """A small aligned table of counters for terminal output."""
    rows: List[tuple] = [
        ("records", f"{counters.records:,}"),
        ("conditionals", f"{counters.conditionals:,}"),
        ("predictions", f"{counters.predictions:,}"),
        ("ibtb probes", f"{counters.ibtb_probes:,}"),
        ("trained bits", f"{counters.trained_bits:,}"),
        ("fold updates", f"{counters.fold_updates:,}"),
        ("predict time", f"{counters.predict_seconds:.3f} s"),
        ("train time", f"{counters.train_seconds:.3f} s"),
        ("conditional time", f"{counters.conditional_seconds:.3f} s"),
        ("elapsed", f"{counters.elapsed_seconds:.3f} s"),
        ("throughput", f"{counters.throughput():,.0f} records/s"),
    ]
    label_width = max(len(label) for label, _ in rows)
    return "\n".join(f"{label:<{label_width}}  {value}" for label, value in rows)
