"""Cross-session micro-batching: coalesce event traffic, step it fused.

Under load, events arrive from many sessions at once.  Handling each
``events`` message the moment it arrives would interleave thousands of
tiny Python loops with asyncio wakeups; instead each server shard runs a
:class:`MicroBatcher` that collects submissions for a short window
(``--batch-window``, default 2 ms) or until a size cap, then drains them
all in one synchronous pass.

The drain is where fusion happens (:func:`drain_batch`): sessions whose
pending event run is *identical* — the common case when many clients
stream the same workload, and the serving analogue of the engine's
``simulate_many`` sharing one trace across predictors — are grouped and
stepped through :func:`~repro.serve.session.step_sessions_fused`, which
pays the per-event decode and dispatch once for the whole group.
Everything else steps solo.  Per-session submission order is always
preserved (a session with several pending messages runs them solo, in
order), and fused stepping is bit-identical to solo stepping, so
batching is invisible in the results: only the throughput changes.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Sequence, Tuple

from repro.serve.metrics import ServerMetrics
from repro.serve.session import (
    PredictorSession,
    StepOutput,
    step_sessions_fused,
)

#: Default coalescing window in seconds.
DEFAULT_BATCH_WINDOW = 0.002

#: Default event-count cap that triggers an early drain.
DEFAULT_MAX_BATCH_EVENTS = 8192


class _BatchItem:
    """One submitted event run awaiting execution."""

    __slots__ = ("session", "events", "future")

    def __init__(
        self,
        session: PredictorSession,
        events: Sequence[Tuple[int, int, bool, int, int]],
        future: "asyncio.Future[List[StepOutput]]",
    ) -> None:
        self.session = session
        self.events = events
        self.future = future


def drain_batch(
    items: Sequence[_BatchItem], metrics: Optional[ServerMetrics] = None
) -> None:
    """Execute one micro-batch synchronously, resolving every future.

    Sessions with exactly one pending run are grouped by identical event
    payload and stepped fused; sessions with several pending runs (or a
    unique payload) step solo in submission order.  A session that
    raises poisons only its own futures — the rest of the batch still
    completes.
    """
    if not items:
        return

    # Per-session pending lists, in submission order.
    per_session: Dict[int, List[_BatchItem]] = {}
    order: List[_BatchItem] = []
    for item in items:
        runs = per_session.setdefault(id(item.session), [])
        runs.append(item)
        order.append(item)

    # Fusion candidates: sessions with a single pending run, keyed by the
    # exact event payload.
    fusable: Dict[Tuple, List[_BatchItem]] = {}
    for runs in per_session.values():
        if len(runs) == 1:
            fusable.setdefault(tuple(runs[0].events), []).append(runs[0])

    fused_sessions = 0
    fused_groups = 0
    done = set()
    for key, group in fusable.items():
        if len(group) < 2:
            continue
        fused_groups += 1
        fused_sessions += len(group)
        try:
            outputs = step_sessions_fused(
                [item.session for item in group], group[0].events
            )
        except Exception as exc:  # pragma: no cover - predictor bug guard
            for item in group:
                if not item.future.cancelled():
                    item.future.set_exception(exc)
                done.add(id(item))
            continue
        for item, out in zip(group, outputs):
            if not item.future.cancelled():
                item.future.set_result(out)
            done.add(id(item))

    for item in order:
        if id(item) in done:
            continue
        try:
            out = item.session.step_events(item.events)
        except Exception as exc:
            if not item.future.cancelled():
                item.future.set_exception(exc)
            continue
        if not item.future.cancelled():
            item.future.set_result(out)

    if metrics is not None:
        metrics.record_batch(
            events=sum(len(item.events) for item in items),
            sessions=len(per_session),
            fused_sessions=fused_sessions,
            fused_groups=fused_groups,
        )


class MicroBatcher:
    """Collects event submissions for one shard and drains them fused.

    All methods run on the event loop; the drain itself is synchronous
    Python (no awaits), so per-session ordering needs no locks — a
    submission either makes a drain or the next one, never half of each.
    """

    def __init__(
        self,
        window_seconds: float = DEFAULT_BATCH_WINDOW,
        max_batch_events: int = DEFAULT_MAX_BATCH_EVENTS,
        metrics: Optional[ServerMetrics] = None,
    ) -> None:
        if window_seconds < 0:
            raise ValueError(f"window must be >= 0, got {window_seconds}")
        if max_batch_events < 1:
            raise ValueError(
                f"max_batch_events must be >= 1, got {max_batch_events}"
            )
        self.window_seconds = window_seconds
        self.max_batch_events = max_batch_events
        self.metrics = metrics
        self._pending: List[_BatchItem] = []
        self._pending_events = 0
        self._wake: Optional[asyncio.Event] = None
        self._full: Optional[asyncio.Event] = None
        self._task: Optional[asyncio.Task] = None
        self._closed = False

    def _ensure_started(self) -> None:
        if self._task is None or self._task.done():
            self._wake = asyncio.Event()
            self._full = asyncio.Event()
            self._task = asyncio.get_running_loop().create_task(
                self._drain_loop(), name="repro-serve-batcher"
            )

    async def submit(
        self,
        session: PredictorSession,
        events: Sequence[Tuple[int, int, bool, int, int]],
    ) -> List[StepOutput]:
        """Queue one event run; resolves when its micro-batch drains."""
        if self._closed:
            raise RuntimeError("batcher is closed")
        self._ensure_started()
        future: "asyncio.Future[List[StepOutput]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending.append(_BatchItem(session, events, future))
        self._pending_events += len(events)
        self._wake.set()
        if self._pending_events >= self.max_batch_events:
            self._full.set()
        return await future

    def flush(self) -> int:
        """Drain everything pending right now; returns items executed."""
        batch = self._pending
        self._pending = []
        self._pending_events = 0
        if self._wake is not None:
            self._wake.clear()
            self._full.clear()
        drain_batch(batch, self.metrics)
        return len(batch)

    async def close(self) -> None:
        """Flush pending work and stop the drain task."""
        self._closed = True
        self.flush()
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def _drain_loop(self) -> None:
        while True:
            await self._wake.wait()
            if self.window_seconds > 0 and not self._full.is_set():
                try:
                    await asyncio.wait_for(
                        self._full.wait(), timeout=self.window_seconds
                    )
                except asyncio.TimeoutError:
                    pass
            self.flush()


__all__ = [
    "DEFAULT_BATCH_WINDOW",
    "DEFAULT_MAX_BATCH_EVENTS",
    "MicroBatcher",
    "drain_batch",
]
