"""The serve wire protocol: newline-delimited JSON messages.

One message per line, UTF-8 JSON, ``\\n``-terminated.  Every message is
an object with a ``"t"`` type tag.  The protocol is deliberately small —
seven request types, one response shape each — and is specified in full
in ``docs/serving.md``; this module is the single source of truth for
encoding, decoding, and validation on both ends.

Client → server requests:

* ``{"t": "hello"}`` — protocol handshake.
* ``{"t": "open", "session": id, "predictor": key, "warmup": n}`` —
  create (or resume) a predictor session.  ``predictor`` is a
  :mod:`repro.registry` key; ``warmup`` (optional, default 0) is the
  number of leading records whose mispredictions are not counted.
* ``{"t": "events", "session": id, "events": [[pc, bt, taken, target,
  gap], ...]}`` — stream branch events.  Each event is a compact
  5-element array (``bt`` is the integer :class:`~repro.trace.record.
  BranchType`; ``gap`` is the non-branch instruction gap).
* ``{"t": "close", "session": id}`` — finish a session: returns its
  final metrics and ``state_hash`` and deletes its on-disk checkpoint.
* ``{"t": "stats"}`` — server statistics (the ``/stats`` endpoint).
* ``{"t": "drain"}`` — checkpoint every live session to the state dir.
* ``{"t": "shutdown"}`` — drain, then stop the server.

Server → client responses:

* ``{"t": "welcome", "protocol": 1, ...}``
* ``{"t": "opened", "session": id, "resumed": bool, "events": cursor}``
* ``{"t": "out", "session": id, "events": cursor, "out": [...]}`` —
  one entry per submitted event: ``null`` for events that carry no
  prediction (conditionals and direct branches), else ``[prediction,
  correct]`` where ``prediction`` may be ``null`` (a cold predictor or
  empty RAS) and ``correct`` is 0/1.
* ``{"t": "closed", "session": id, "state_hash": h, "result": {...}}``
* ``{"t": "stats", ...}`` / ``{"t": "drained", "sessions": n}`` /
  ``{"t": "error", "error": msg, ...}``
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence, Tuple

#: Version of the wire protocol; sent in ``welcome`` and checked by the
#: client.  Bump only for changes that break existing clients.
PROTOCOL_VERSION = 1

#: Upper bound on one encoded message line (the asyncio reader limit).
#: 4 MiB comfortably holds tens of thousands of events per message.
MAX_LINE_BYTES = 4 * 1024 * 1024

#: Valid integer branch-type values (``repro.trace.record.BranchType``).
_BRANCH_TYPES = frozenset(range(6))


class ProtocolError(ValueError):
    """A malformed or out-of-contract protocol message."""


def encode(message: Dict[str, Any]) -> bytes:
    """Encode one message as a compact JSON line (with trailing newline)."""
    return (
        json.dumps(message, separators=(",", ":"), allow_nan=False) + "\n"
    ).encode("utf-8")


def decode(line: bytes) -> Dict[str, Any]:
    """Decode one received line into a message dict.

    Raises:
        ProtocolError: when the line is not a JSON object or has no
            ``"t"`` type tag.
    """
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"undecodable message line: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(message).__name__}"
        )
    tag = message.get("t")
    if not isinstance(tag, str):
        raise ProtocolError("message has no string 't' type tag")
    return message


#: One parsed branch event: ``(pc, branch_type, taken, target, gap)``.
Event = Tuple[int, int, bool, int, int]


def parse_event(raw: Any) -> Event:
    """Validate and normalize one wire event array.

    Raises:
        ProtocolError: when the event is not a well-formed 5-element
            ``[pc, branch_type, taken, target, gap]`` array.
    """
    if not isinstance(raw, (list, tuple)) or len(raw) != 5:
        raise ProtocolError(
            f"event must be a [pc, type, taken, target, gap] array, "
            f"got {raw!r}"
        )
    pc, branch_type, taken, target, gap = raw
    if not isinstance(pc, int) or isinstance(pc, bool) or pc < 0:
        raise ProtocolError(f"event pc must be a non-negative int, got {pc!r}")
    if branch_type not in _BRANCH_TYPES:
        raise ProtocolError(f"unknown branch type {branch_type!r}")
    if not isinstance(taken, (bool, int)):
        raise ProtocolError(f"event taken must be a bool, got {taken!r}")
    if not isinstance(target, int) or isinstance(target, bool) or target < 0:
        raise ProtocolError(
            f"event target must be a non-negative int, got {target!r}"
        )
    if not isinstance(gap, int) or isinstance(gap, bool) or gap < 0:
        raise ProtocolError(
            f"event gap must be a non-negative int, got {gap!r}"
        )
    return int(pc), int(branch_type), bool(taken), int(target), int(gap)


def parse_events(raw: Any) -> List[Event]:
    """Validate a full ``events`` payload (a non-empty array of events)."""
    if not isinstance(raw, list) or not raw:
        raise ProtocolError("'events' must be a non-empty array")
    return [parse_event(entry) for entry in raw]


def trace_events(trace) -> List[Event]:
    """A :class:`~repro.trace.stream.Trace` as a list of wire events.

    The canonical bridge between the batch world and the serve world:
    streaming these events through a session reproduces ``simulate`` on
    the trace bit-for-bit.
    """
    return [
        (int(pc), int(bt), bool(tk), int(tg), int(gap))
        for pc, bt, tk, tg, gap in zip(
            trace.pcs.tolist(),
            trace.types.tolist(),
            trace.takens.tolist(),
            trace.targets.tolist(),
            trace.gaps.tolist(),
        )
    ]


def require_session_id(message: Dict[str, Any]) -> str:
    """Extract and validate the ``session`` field of a message."""
    session_id = message.get("session")
    if not isinstance(session_id, str) or not session_id:
        raise ProtocolError("message needs a non-empty string 'session' id")
    if len(session_id) > 256:
        raise ProtocolError("session id longer than 256 characters")
    return session_id


def error_message(error: str, **extra: Any) -> Dict[str, Any]:
    """Build an ``error`` response."""
    message: Dict[str, Any] = {"t": "error", "error": error}
    message.update(extra)
    return message


__all__ = [
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "Event",
    "ProtocolError",
    "decode",
    "encode",
    "error_message",
    "parse_event",
    "parse_events",
    "require_session_id",
    "trace_events",
]
