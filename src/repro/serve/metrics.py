"""Server-side metrics: the numbers behind the ``/stats`` endpoint.

The serve layer's observability surface, kept deliberately allocation
light — counters bump on the hot path, so everything here is integer
arithmetic plus one small deque for the recent-throughput window.
Aggregates reported:

* **session lifecycle** — opened / resumed / rehydrated / evicted /
  closed counts, plus live-resident and on-disk gauges filled in by the
  session manager at snapshot time;
* **event throughput** — cumulative events and events/sec, plus a
  sliding-window rate over the last few seconds (the number a load test
  watches);
* **batching** — batches drained, mean events and sessions per batch
  (batch occupancy), and how many session-steps went through the fused
  cross-session path;
* **per-session MPKI** — optionally included in a snapshot for every
  resident session (``stats`` with ``sessions: true``).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple

#: Seconds of history kept for the sliding-window event rate.
RATE_WINDOW_SECONDS = 10.0


class ServerMetrics:
    """Mutable counters shared by the session manager and batchers."""

    def __init__(self, clock=time.monotonic) -> None:
        self._clock = clock
        self.started_at = clock()
        # Session lifecycle.
        self.sessions_opened = 0
        self.sessions_resumed = 0
        self.sessions_rehydrated = 0
        self.sessions_evicted = 0
        self.sessions_closed = 0
        # Events and batching.
        self.events_total = 0
        self.batches = 0
        self.batch_events = 0
        self.batch_sessions = 0
        self.fused_sessions = 0
        self.fused_groups = 0
        self.protocol_errors = 0
        self._recent: Deque[Tuple[float, int]] = deque()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_batch(
        self, events: int, sessions: int, fused_sessions: int, fused_groups: int
    ) -> None:
        """Account one drained micro-batch."""
        now = self._clock()
        self.batches += 1
        self.batch_events += events
        self.batch_sessions += sessions
        self.fused_sessions += fused_sessions
        self.fused_groups += fused_groups
        self.events_total += events
        self._recent.append((now, events))
        horizon = now - RATE_WINDOW_SECONDS
        while self._recent and self._recent[0][0] < horizon:
            self._recent.popleft()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def recent_events_per_second(self) -> float:
        """Event rate over the sliding window (0.0 when idle)."""
        if not self._recent:
            return 0.0
        now = self._clock()
        horizon = now - RATE_WINDOW_SECONDS
        events = sum(count for stamp, count in self._recent if stamp >= horizon)
        span = min(RATE_WINDOW_SECONDS, max(now - self._recent[0][0], 1e-9))
        return events / span

    def as_dict(self) -> Dict[str, Any]:
        """A JSON-ready snapshot of every aggregate."""
        elapsed = max(self._clock() - self.started_at, 1e-9)
        return {
            "uptime_seconds": round(elapsed, 3),
            "sessions": {
                "opened": self.sessions_opened,
                "resumed": self.sessions_resumed,
                "rehydrated": self.sessions_rehydrated,
                "evicted": self.sessions_evicted,
                "closed": self.sessions_closed,
            },
            "events": {
                "total": self.events_total,
                "per_second": round(self.events_total / elapsed, 2),
                "recent_per_second": round(self.recent_events_per_second(), 2),
            },
            "batching": {
                "batches": self.batches,
                "mean_events_per_batch": round(
                    self.batch_events / self.batches, 2
                ) if self.batches else 0.0,
                "mean_sessions_per_batch": round(
                    self.batch_sessions / self.batches, 2
                ) if self.batches else 0.0,
                "fused_sessions": self.fused_sessions,
                "fused_groups": self.fused_groups,
                "fused_share": round(
                    self.fused_sessions / self.batch_sessions, 4
                ) if self.batch_sessions else 0.0,
            },
            "protocol_errors": self.protocol_errors,
        }


__all__ = ["RATE_WINDOW_SECONDS", "ServerMetrics"]
