"""The prediction server: asyncio TCP, thousands of hosted sessions.

Architecture (see ``docs/serving.md`` for the full lifecycle):

* **Connections** speak the newline-delimited JSON protocol of
  :mod:`repro.serve.protocol`.  The read loop never blocks on
  execution: each ``events`` message is submitted to a shard batcher
  and its response future is appended to a per-connection writer queue,
  so many messages — across connections and sessions — are in flight
  at once and can coalesce into one micro-batch.  The writer task
  resolves futures in FIFO order, preserving per-connection response
  order under pipelining.
* **Shards**: sessions are sharded across ``workers`` micro-batchers by
  a hash of the session id, so one session's events always land in the
  same batcher (order preserved) while load spreads across shards.
* **The session manager** owns the resident set: an LRU capped at
  ``max_resident``.  Opening or touching a session beyond the cap
  evicts the least-recently-used idle session to the state directory
  as an atomic checkpoint; the next event for an evicted session
  transparently rehydrates it (``state_hash`` verified on reload).
* **Drain and restart**: ``drain`` (or SIGTERM/SIGINT) flushes every
  batcher and checkpoints every resident session, so a restarted
  server with the same ``--state-dir`` resumes every session
  bit-identically — clients re-``open``, learn the server's cursor
  from the ``opened`` response, and continue streaming from there.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import re
import signal
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.common.state import canonical_json
from repro.registry import RegistryError, indirect_names
from repro.serve import protocol
from repro.serve.batcher import (
    DEFAULT_BATCH_WINDOW,
    DEFAULT_MAX_BATCH_EVENTS,
    MicroBatcher,
)
from repro.serve.metrics import ServerMetrics
from repro.serve.session import PredictorSession, SessionError
from repro.trace.plane import atomic_write_bytes

#: Default resident-session cap.
DEFAULT_MAX_RESIDENT = 1024

#: Default number of shard batchers.
DEFAULT_WORKERS = 4

_SAFE_ID = re.compile(r"[^A-Za-z0-9._-]")


class SessionStore:
    """Atomic session checkpoints in one state directory.

    File names are built from a sanitized session id plus a short hash
    of the full id, so arbitrary ids map to unique, filesystem-safe
    paths.  Writes go through the trace plane's atomic-write helper;
    loads are strict — a damaged or hash-mismatched checkpoint raises
    instead of silently resurrecting wrong state.  Closing a session
    deletes its file (no stale checkpoints survive a clean close).
    """

    SUFFIX = ".session.json"

    def __init__(self, state_dir: Union[str, Path]) -> None:
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)

    def path_for(self, session_id: str) -> Path:
        digest = hashlib.sha256(session_id.encode("utf-8")).hexdigest()[:12]
        stem = _SAFE_ID.sub("_", session_id)[:48] or "session"
        return self.state_dir / f"{stem}-{digest}{self.SUFFIX}"

    def save(self, session: PredictorSession) -> Path:
        path = self.path_for(session.session_id)
        atomic_write_bytes(
            path, canonical_json(session.checkpoint()).encode("utf-8")
        )
        return path

    def load(self, session_id: str) -> Optional[Dict[str, Any]]:
        """The raw checkpoint document for ``session_id``, or ``None``."""
        path = self.path_for(session_id)
        if not path.exists():
            return None
        try:
            with open(path, "r") as handle:
                return json.load(handle)
        except (OSError, ValueError) as exc:
            raise SessionError(
                f"unreadable session checkpoint {path.name}: {exc}"
            ) from exc

    def delete(self, session_id: str) -> None:
        try:
            self.path_for(session_id).unlink()
        except OSError:
            pass

    def count(self) -> int:
        """Checkpoint files currently on disk."""
        return sum(1 for _ in self.state_dir.glob(f"*{self.SUFFIX}"))


class SessionManager:
    """The resident set: LRU-capped, spillable, rehydratable."""

    def __init__(
        self,
        store: SessionStore,
        max_resident: int = DEFAULT_MAX_RESIDENT,
        metrics: Optional[ServerMetrics] = None,
        ras_depth: int = 32,
    ) -> None:
        if max_resident < 1:
            raise ValueError(f"max_resident must be >= 1, got {max_resident}")
        self.store = store
        self.max_resident = max_resident
        self.metrics = metrics or ServerMetrics()
        self.ras_depth = ras_depth
        self._resident: "Dict[str, PredictorSession]" = {}
        self._pending: Dict[str, int] = {}
        self._idle: Dict[str, asyncio.Event] = {}

    # -- lifecycle ------------------------------------------------------

    def open(
        self, session_id: str, predictor_key: str, warmup_records: int = 0
    ) -> Dict[str, Any]:
        """Open (or resume) a session; returns the ``opened`` payload."""
        if session_id in self._resident:
            raise SessionError(f"session {session_id!r} is already open")
        checkpoint = self.store.load(session_id)
        if checkpoint is not None:
            stored_key = checkpoint.get("predictor_key")
            if stored_key != predictor_key:
                raise SessionError(
                    f"session {session_id!r} was checkpointed with predictor "
                    f"{stored_key!r}, not {predictor_key!r}"
                )
            session = PredictorSession.from_checkpoint(checkpoint)
            resumed = True
            self.metrics.sessions_resumed += 1
        else:
            if predictor_key not in indirect_names():
                raise SessionError(
                    f"unknown predictor {predictor_key!r}; run "
                    f"`python -m repro registry` to list registered "
                    f"predictor keys"
                )
            session = PredictorSession(
                session_id,
                predictor_key,
                warmup_records=warmup_records,
                ras_depth=self.ras_depth,
            )
            resumed = False
            self.metrics.sessions_opened += 1
        self._admit(session)
        return {
            "session": session_id,
            "predictor": predictor_key,
            "resumed": resumed,
            "events": session.cursor,
        }

    def get(self, session_id: str) -> PredictorSession:
        """The live session, transparently rehydrated if evicted."""
        session = self._resident.get(session_id)
        if session is not None:
            # LRU touch: re-insert at the most-recent end.
            del self._resident[session_id]
            self._resident[session_id] = session
            return session
        checkpoint = self.store.load(session_id)
        if checkpoint is None:
            raise SessionError(
                f"unknown session {session_id!r} (never opened, or already "
                f"closed)"
            )
        session = PredictorSession.from_checkpoint(checkpoint)
        self.metrics.sessions_rehydrated += 1
        self._admit(session)
        return session

    def close(self, session_id: str) -> Dict[str, Any]:
        """Finalize a session; returns the ``closed`` payload."""
        session = self.get(session_id)
        result = session.result()
        payload = {
            "session": session_id,
            "predictor": session.predictor_key,
            "state_hash": session.state_hash(),
            "result": {
                "events": session.cursor,
                "total_instructions": session.total_instructions,
                "indirect_branches": result.indirect_branches,
                "indirect_mispredictions": result.indirect_mispredictions,
                "return_branches": result.return_branches,
                "return_mispredictions": result.return_mispredictions,
                "conditional_branches": result.conditional_branches,
                "mpki": result.mpki(),
            },
        }
        self._resident.pop(session_id, None)
        self._pending.pop(session_id, None)
        self._idle.pop(session_id, None)
        # Stale-file hygiene: a cleanly closed session leaves no
        # checkpoint behind.
        self.store.delete(session_id)
        self.metrics.sessions_closed += 1
        return payload

    # -- in-flight accounting (eviction safety) -------------------------

    def acquire(self, session_id: str) -> None:
        """Mark one in-flight event run (blocks eviction)."""
        self._pending[session_id] = self._pending.get(session_id, 0) + 1
        event = self._idle.get(session_id)
        if event is not None:
            event.clear()

    def release(self, session_id: str) -> None:
        remaining = self._pending.get(session_id, 0) - 1
        if remaining > 0:
            self._pending[session_id] = remaining
        else:
            self._pending.pop(session_id, None)
            event = self._idle.get(session_id)
            if event is not None:
                event.set()

    async def wait_idle(self, session_id: str) -> None:
        """Wait until ``session_id`` has no in-flight event runs."""
        while self._pending.get(session_id, 0) > 0:
            event = self._idle.setdefault(session_id, asyncio.Event())
            event.clear()
            await event.wait()

    # -- eviction and drain ---------------------------------------------

    def _admit(self, session: PredictorSession) -> None:
        self._resident[session.session_id] = session
        # The session being admitted is about to be handed to the caller
        # (which steps it before any ``acquire``), so the sweep must not
        # evict it: an eviction here would orphan the live object and
        # leave a stale checkpoint on disk.
        self.evict_over_capacity(protect=session.session_id)

    def evict_over_capacity(self, protect: Optional[str] = None) -> int:
        """Evict least-recently-used idle sessions down to the cap."""
        evicted = 0
        while len(self._resident) > self.max_resident:
            victim_id = next(
                (
                    sid
                    for sid in self._resident
                    if sid != protect and self._pending.get(sid, 0) == 0
                ),
                None,
            )
            if victim_id is None:
                break  # everything is in flight; soft cap
            self.evict(victim_id)
            evicted += 1
        return evicted

    def evict(self, session_id: str) -> None:
        """Checkpoint one resident session to disk and drop it."""
        session = self._resident.pop(session_id)
        self.store.save(session)
        self.metrics.sessions_evicted += 1

    def drain_to_disk(self) -> int:
        """Checkpoint every resident session (kept resident); count."""
        for session in self._resident.values():
            self.store.save(session)
        return len(self._resident)

    # -- reporting ------------------------------------------------------

    def resident_count(self) -> int:
        return len(self._resident)

    def session_stats(self) -> Dict[str, Dict[str, Any]]:
        """Per-resident-session metrics for the stats endpoint."""
        return {
            sid: {
                "predictor": session.predictor_key,
                "events": session.cursor,
                "mpki": round(session.mpki(), 4),
            }
            for sid, session in self._resident.items()
        }


class PredictionServer:
    """The asyncio TCP server hosting checkpointed predictor sessions."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        state_dir: Union[str, Path] = "serve-state",
        max_resident: int = DEFAULT_MAX_RESIDENT,
        batch_window: float = DEFAULT_BATCH_WINDOW,
        max_batch_events: int = DEFAULT_MAX_BATCH_EVENTS,
        workers: int = DEFAULT_WORKERS,
        ras_depth: int = 32,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.host = host
        self.port = port
        self.metrics = ServerMetrics()
        self.store = SessionStore(state_dir)
        self.manager = SessionManager(
            self.store,
            max_resident=max_resident,
            metrics=self.metrics,
            ras_depth=ras_depth,
        )
        self.batchers = [
            MicroBatcher(batch_window, max_batch_events, self.metrics)
            for _ in range(workers)
        ]
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopping = asyncio.Event()
        self._connections: "set[asyncio.Task]" = set()

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> int:
        """Bind and start serving; returns the actual port."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def serve_until_stopped(self, install_signals: bool = True) -> int:
        """Run until ``shutdown``/SIGTERM/SIGINT; drain; sessions saved."""
        if self._server is None:
            await self.start()
        loop = asyncio.get_running_loop()
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self._stopping.set)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass
        await self._stopping.wait()
        return await self.stop()

    def request_stop(self) -> None:
        self._stopping.set()

    async def drain(self) -> int:
        """Flush every batcher and checkpoint every resident session."""
        for batcher in self.batchers:
            batcher.flush()
        return self.manager.drain_to_disk()

    async def stop(self) -> int:
        """Stop serving: close listeners, drain, checkpoint. Returns the
        number of sessions checkpointed."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()
        saved = await self.drain()
        for batcher in self.batchers:
            await batcher.close()
        return saved

    # -- connection handling --------------------------------------------

    def _shard(self, session_id: str) -> MicroBatcher:
        return self.batchers[
            zlib.crc32(session_id.encode("utf-8")) % len(self.batchers)
        ]

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        responses: "asyncio.Queue[Optional[asyncio.Future]]" = asyncio.Queue()
        writer_task = asyncio.get_running_loop().create_task(
            self._write_responses(responses, writer)
        )
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                ):  # pragma: no cover - oversized line
                    await self._enqueue_ready(
                        responses,
                        protocol.error_message("message line too long"),
                    )
                    break
                if not line:
                    break
                if line.strip() == b"":
                    continue
                stop = await self._dispatch(line, responses)
                if stop:
                    break
        except (ConnectionResetError, asyncio.CancelledError):
            # Server stop cancels connection tasks; absorb the
            # cancellation so the task finishes cleanly (a task left in
            # the cancelled state makes asyncio's stream machinery log
            # spurious errors at close).
            if task is not None:
                task.uncancel()
        finally:
            try:
                await responses.put(None)
                await writer_task
            except asyncio.CancelledError:  # pragma: no cover
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                OSError,
                asyncio.CancelledError,
            ):  # pragma: no cover
                pass
            self._connections.discard(task)

    async def _write_responses(
        self,
        responses: "asyncio.Queue[Optional[asyncio.Future]]",
        writer: asyncio.StreamWriter,
    ) -> None:
        """Resolve response futures in FIFO order; write each line."""
        while True:
            future = await responses.get()
            if future is None:
                return
            try:
                payload = await future
            except asyncio.CancelledError:
                return
            except Exception as exc:  # execution failure -> error reply
                payload = protocol.error_message(str(exc))
            try:
                writer.write(protocol.encode(payload))
                await writer.drain()
            except (ConnectionResetError, OSError):
                return

    async def _enqueue_ready(
        self, responses: "asyncio.Queue", payload: Dict[str, Any]
    ) -> None:
        future = asyncio.get_running_loop().create_future()
        future.set_result(payload)
        await responses.put(future)

    async def _dispatch(
        self, line: bytes, responses: "asyncio.Queue"
    ) -> bool:
        """Handle one message line; returns True to end the connection."""
        try:
            message = protocol.decode(line)
            tag = message["t"]
            if tag == "events":
                session_id = protocol.require_session_id(message)
                events = protocol.parse_events(message.get("events"))
                session = self.manager.get(session_id)
                self.manager.acquire(session_id)
                future = asyncio.get_running_loop().create_task(
                    self._run_events(session_id, session, events)
                )
                await responses.put(future)
                return False
            if tag == "open":
                session_id = protocol.require_session_id(message)
                predictor_key = message.get("predictor")
                if not isinstance(predictor_key, str):
                    raise protocol.ProtocolError(
                        "open needs a string 'predictor' registry key"
                    )
                warmup = message.get("warmup", 0)
                if not isinstance(warmup, int) or warmup < 0:
                    raise protocol.ProtocolError(
                        f"warmup must be a non-negative int, got {warmup!r}"
                    )
                payload = self.manager.open(session_id, predictor_key, warmup)
                payload["t"] = "opened"
                await self._enqueue_ready(responses, payload)
                return False
            if tag == "close":
                session_id = protocol.require_session_id(message)
                future = asyncio.get_running_loop().create_task(
                    self._run_close(session_id)
                )
                await responses.put(future)
                return False
            if tag == "hello":
                await self._enqueue_ready(
                    responses,
                    {
                        "t": "welcome",
                        "protocol": protocol.PROTOCOL_VERSION,
                        "predictors": indirect_names(),
                        "workers": len(self.batchers),
                        "max_resident": self.manager.max_resident,
                    },
                )
                return False
            if tag == "stats":
                payload = self.stats(
                    include_sessions=bool(message.get("sessions"))
                )
                await self._enqueue_ready(responses, payload)
                return False
            if tag == "drain":
                saved = await self.drain()
                await self._enqueue_ready(
                    responses, {"t": "drained", "sessions": saved}
                )
                return False
            if tag == "shutdown":
                await self._enqueue_ready(
                    responses, {"t": "stopping", "sessions":
                                self.manager.resident_count()}
                )
                self._stopping.set()
                return True
            raise protocol.ProtocolError(f"unknown message type {tag!r}")
        except (protocol.ProtocolError, SessionError, RegistryError) as exc:
            self.metrics.protocol_errors += 1
            await self._enqueue_ready(
                responses, protocol.error_message(str(exc))
            )
            return False

    async def _run_events(
        self,
        session_id: str,
        session: PredictorSession,
        events: List[protocol.Event],
    ) -> Dict[str, Any]:
        try:
            outputs = await self._shard(session_id).submit(session, events)
        finally:
            self.manager.release(session_id)
        return {
            "t": "out",
            "session": session_id,
            "events": session.cursor,
            "out": [
                list(entry) if entry is not None else None
                for entry in outputs
            ],
        }

    async def _run_close(self, session_id: str) -> Dict[str, Any]:
        # Wait out any in-flight event runs so close sees final state.
        await self.manager.wait_idle(session_id)
        payload = self.manager.close(session_id)
        payload["t"] = "closed"
        return payload

    # -- stats ----------------------------------------------------------

    def stats(self, include_sessions: bool = False) -> Dict[str, Any]:
        payload = self.metrics.as_dict()
        payload["t"] = "stats"
        payload["sessions"]["resident"] = self.manager.resident_count()
        payload["sessions"]["on_disk"] = self.store.count()
        payload["max_resident"] = self.manager.max_resident
        payload["workers"] = len(self.batchers)
        if include_sessions:
            payload["per_session"] = self.manager.session_stats()
        return payload


__all__ = [
    "DEFAULT_MAX_RESIDENT",
    "DEFAULT_WORKERS",
    "PredictionServer",
    "SessionManager",
    "SessionStore",
]
