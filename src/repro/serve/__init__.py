"""``repro.serve`` — prediction-as-a-service.

The layer that turns the batch simulator into a long-running system: an
asyncio TCP server hosting thousands of concurrent predictor sessions.
Clients open a session naming a :mod:`repro.registry` predictor key,
stream branch events over a newline-delimited JSON protocol, and get
per-event predictions and outcomes back.  The server coalesces events
arriving across sessions into fused micro-batches, evicts idle sessions
to disk as PR 4 checkpoints under an LRU resident-set cap, rehydrates
them transparently on the next event (``state_hash`` verified on
reload), and checkpoints every live session on drain/SIGTERM so a
restarted server resumes every stream bit-identically.

Start a server::

    python -m repro serve --port 9317 --state-dir /tmp/serve

Drive load against it::

    python -m repro.serve.client --port 9317 --sessions 1000 --events 100

Module map: :mod:`~repro.serve.protocol` (wire format),
:mod:`~repro.serve.session` (the per-session state machine and its
checkpoint envelope), :mod:`~repro.serve.batcher` (cross-session fused
micro-batching), :mod:`~repro.serve.server` (session manager, eviction,
the asyncio server), :mod:`~repro.serve.client` (lockstep client + load
driver), :mod:`~repro.serve.metrics` (the ``stats`` endpoint's
counters).
"""

from repro.serve.batcher import MicroBatcher, drain_batch
from repro.serve.metrics import ServerMetrics
from repro.serve.protocol import PROTOCOL_VERSION, ProtocolError, trace_events
from repro.serve.server import (
    PredictionServer,
    SessionManager,
    SessionStore,
)
from repro.serve.session import (
    PredictorSession,
    SessionError,
    step_sessions_fused,
)

# Client symbols are re-exported lazily: importing them eagerly would
# put repro.serve.client in sys.modules before ``python -m
# repro.serve.client`` executes it, making runpy warn.
_CLIENT_EXPORTS = {"ClientError", "ServeClient", "drive_load"}


def __getattr__(name):
    if name in _CLIENT_EXPORTS:
        from repro.serve import client

        return getattr(client, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "PROTOCOL_VERSION",
    "ClientError",
    "MicroBatcher",
    "PredictionServer",
    "PredictorSession",
    "ProtocolError",
    "ServeClient",
    "ServerMetrics",
    "SessionError",
    "SessionManager",
    "SessionStore",
    "drain_batch",
    "drive_load",
    "step_sessions_fused",
    "trace_events",
]
