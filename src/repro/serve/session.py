"""Predictor sessions: one online learner suspended between events.

A :class:`PredictorSession` is the serve-side incarnation of one
``simulate(predictor, trace)`` call, unrolled into an event-at-a-time
state machine.  :meth:`PredictorSession.step` issues the predictor the
*exact* call sequence the engine's ``_replay_span`` hot loop would —
conditional hook, predict/train/retire for indirects, RAS traffic for
calls and returns, warmup accounting — so a session fed a trace's
events, in order, finishes with predictions, metrics, and a final
``state_hash`` bit-identical to :func:`repro.sim.engine.simulate` on
that trace.  The equivalence suite asserts exactly that.

Because all mutable state (predictor, RAS, accumulators, cursor) rides
the PR 4 snapshot protocol, a session can be *suspended* at any event
boundary: :meth:`checkpoint` freezes it into the same
:class:`~repro.sim.checkpoint.SimulationCheckpoint` document the batch
engine uses, wrapped in a ``ServeSessionCheckpoint`` envelope that also
records the registry key and the predictor's ``state_hash`` at suspend
time.  :meth:`PredictorSession.from_checkpoint` rebuilds the session in
any process and verifies the restored predictor hashes identically —
a corrupted or mismatched checkpoint is refused, never silently loaded.

:func:`step_sessions_fused` is the cross-session analogue of the
engine's ``_replay_span_many``: when many sessions have the *same*
pending event run (the common case under load — many clients streaming
the same workload), one pass over the shared events amortizes the
per-event decode and type dispatch across all of them while issuing
each session its exact solo call sequence (own RAS, own accumulators),
so fused stepping is bit-identical to stepping each session alone.

Long event runs take a columnar shortcut: when a run has at least
:data:`COLUMNAR_STEP_THRESHOLD` events and every hosted predictor has a
columnar kernel, the run is packed into a transient
:class:`~repro.trace.stream.Trace` and replayed through
:func:`repro.sim.kernel.simulate_columnar_many` — predictor work as
tensor passes (fused sessions as lanes over one shared precompute),
while the per-session RAS and warmup/metric accounting replay in a
cheap Python sweep over the events.  The kernels are bit-identical to
the scalar call sequence, so outputs, counters, and final
``state_hash`` are unchanged; runs below the threshold, or hosting
predictors without a kernel, step exactly as before.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.registry import RegistryError, make_indirect
from repro.sim.checkpoint import SimulationCheckpoint
from repro.sim.kernel import columnar_supported, simulate_columnar_many
from repro.sim.metrics import SimulationResult
from repro.sim.ras import ReturnAddressStack
from repro.trace.record import BranchRecord, BranchType
from repro.trace.stream import Trace

_COND = int(BranchType.CONDITIONAL)
_DIRECT_CALL = int(BranchType.DIRECT_CALL)
_INDIRECT_JUMP = int(BranchType.INDIRECT_JUMP)
_INDIRECT_CALL = int(BranchType.INDIRECT_CALL)
_RETURN = int(BranchType.RETURN)

#: Envelope kind of a serve-layer session checkpoint file.
SESSION_CHECKPOINT_KIND = "ServeSessionCheckpoint"

#: Minimum pending events before a session run is worth packing into a
#: transient trace for the columnar kernels; short interactive runs stay
#: on the per-event scalar path (trace construction would dominate).
COLUMNAR_STEP_THRESHOLD = 256

#: One per-event output: ``None`` for events that carry no prediction
#: (conditionals, direct branches), else ``(prediction-or-None, correct)``.
StepOutput = Optional[Tuple[Optional[int], int]]


class SessionError(ValueError):
    """A session could not be created, stepped, or restored."""


class PredictorSession:
    """One hosted predictor consuming a branch-event stream."""

    def __init__(
        self,
        session_id: str,
        predictor_key: str,
        warmup_records: int = 0,
        ras_depth: int = 32,
    ) -> None:
        if warmup_records < 0:
            raise SessionError(
                f"warmup_records must be >= 0, got {warmup_records}"
            )
        try:
            self.predictor = make_indirect(predictor_key)
        except RegistryError as exc:
            raise SessionError(str(exc)) from exc
        self.session_id = session_id
        self.predictor_key = predictor_key
        self.warmup_records = warmup_records
        self.ras_depth = ras_depth
        self.ras = ReturnAddressStack(ras_depth)
        #: Events consumed so far (the stream cursor).
        self.cursor = 0
        #: Remaining warmup events whose mispredictions are not counted.
        self.skip = warmup_records
        self.indirect = 0
        self.mispredictions = 0
        self.returns = 0
        self.return_mispredictions = 0
        self.conditionals = 0
        #: Sum of per-event instruction gaps (for MPKI denominators).
        self.instruction_gaps = 0

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------

    def step(
        self, pc: int, branch_type: int, taken: bool, target: int, gap: int = 0
    ) -> StepOutput:
        """Consume one branch event; return its prediction output.

        The call sequence into the predictor and the RAS — and the
        warmup/metric accounting — mirror the engine's ``_replay_span``
        exactly, so session state evolution is bit-identical to a batch
        simulation of the same records.
        """
        self.cursor += 1
        self.instruction_gaps += gap
        predictor = self.predictor

        if branch_type == _COND:
            predictor.on_conditional(pc, taken)
            self.conditionals += 1
            if self.skip:
                self.skip -= 1
            return None

        counted = not self.skip
        if self.skip:
            self.skip -= 1

        if branch_type == _INDIRECT_JUMP or branch_type == _INDIRECT_CALL:
            prediction = predictor.predict_target(pc)
            correct = 1 if prediction == target else 0
            if counted:
                self.indirect += 1
                if not correct:
                    self.mispredictions += 1
            predictor.train(pc, target)
            predictor.on_retired(pc, branch_type, target)
            if branch_type == _INDIRECT_CALL:
                self.ras.push(pc + 4)
            return (prediction, correct)
        if branch_type == _RETURN:
            ras_prediction = self.ras.predict()
            self.ras.pop()
            correct = 1 if ras_prediction == target else 0
            if counted:
                self.returns += 1
                if not correct:
                    self.return_mispredictions += 1
            predictor.on_retired(pc, branch_type, target)
            return (ras_prediction, correct)
        if branch_type == _DIRECT_CALL:
            self.ras.push(pc + 4)
        predictor.on_retired(pc, branch_type, target)
        return None

    def step_events(
        self, events: Sequence[Tuple[int, int, bool, int, int]]
    ) -> List[StepOutput]:
        """Consume a run of events; one output per event.

        Runs of at least :data:`COLUMNAR_STEP_THRESHOLD` events on a
        columnar-supported predictor replay through the batch kernels
        (bit-identical outputs and state); everything else steps
        per-event.
        """
        if _columnar_eligible([self], events):
            outputs = _step_sessions_columnar([self], events)
            if outputs is not None:
                return outputs[0]
        step = self.step
        return [step(pc, bt, taken, target, gap)
                for pc, bt, taken, target, gap in events]

    # ------------------------------------------------------------------
    # Results and state
    # ------------------------------------------------------------------

    @property
    def total_instructions(self) -> int:
        """All instructions represented by the stream so far."""
        return self.instruction_gaps + self.cursor

    def result(self) -> SimulationResult:
        """The session's metrics in the batch engine's result shape."""
        return SimulationResult(
            trace_name=self.session_id,
            predictor_name=self.predictor.name,
            total_instructions=self.total_instructions,
            indirect_branches=self.indirect,
            indirect_mispredictions=self.mispredictions,
            return_branches=self.returns,
            return_mispredictions=self.return_mispredictions,
            conditional_branches=self.conditionals,
        )

    def mpki(self) -> float:
        """Indirect MPKI over the stream consumed so far."""
        return self.result().mpki()

    def state_hash(self) -> str:
        """Canonical hash of the hosted predictor's architectural state."""
        return self.predictor.state_hash()

    # ------------------------------------------------------------------
    # Suspend / resume
    # ------------------------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """Freeze the whole session into a JSON-ready checkpoint document.

        The inner ``checkpoint`` field is a regular
        :class:`SimulationCheckpoint` snapshot (predictor + RAS + cursor
        + accumulators); the envelope adds what the serve layer needs to
        rebuild and verify the session: the registry key, the warmup and
        RAS configuration, the gap accumulator, and the predictor's
        ``state_hash`` at suspend time.
        """
        inner = SimulationCheckpoint(
            trace_name=self.session_id,
            predictor_name=self.predictor.name,
            cursor=self.cursor,
            skip=self.skip,
            indirect=self.indirect,
            mispredictions=self.mispredictions,
            returns=self.returns,
            return_mispredictions=self.return_mispredictions,
            conditionals=self.conditionals,
            by_pc={},
            ras=self.ras.state_dict(),
            predictor=self.predictor.state_dict(),
        )
        return {
            "v": 1,
            "kind": SESSION_CHECKPOINT_KIND,
            "session": self.session_id,
            "predictor_key": self.predictor_key,
            "warmup_records": self.warmup_records,
            "ras_depth": self.ras_depth,
            "instruction_gaps": self.instruction_gaps,
            "predictor_hash": self.predictor.state_hash(),
            "checkpoint": inner.state_dict(),
        }

    @classmethod
    def from_checkpoint(cls, state: Dict[str, Any]) -> "PredictorSession":
        """Rebuild a suspended session; verify the restored state hash.

        Raises:
            SessionError: when the document is malformed, the registry
                key is unknown, or the restored predictor's
                ``state_hash`` differs from the hash recorded at suspend
                time (a corrupted or tampered checkpoint).
        """
        try:
            if state.get("kind") != SESSION_CHECKPOINT_KIND:
                raise SessionError(
                    f"not a {SESSION_CHECKPOINT_KIND} document: "
                    f"kind={state.get('kind')!r}"
                )
            session = cls(
                session_id=state["session"],
                predictor_key=state["predictor_key"],
                warmup_records=int(state["warmup_records"]),
                ras_depth=int(state["ras_depth"]),
            )
            inner = SimulationCheckpoint.from_state(state["checkpoint"])
            expected_hash = state["predictor_hash"]
            gaps = int(state["instruction_gaps"])
        except SessionError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise SessionError(f"malformed session checkpoint: {exc}") from exc
        session.predictor.load_state(inner.predictor)
        session.ras.load_state(inner.ras)
        session.cursor = inner.cursor
        session.skip = inner.skip
        session.indirect = inner.indirect
        session.mispredictions = inner.mispredictions
        session.returns = inner.returns
        session.return_mispredictions = inner.return_mispredictions
        session.conditionals = inner.conditionals
        session.instruction_gaps = gaps
        restored_hash = session.predictor.state_hash()
        if restored_hash != expected_hash:
            raise SessionError(
                f"session {session.session_id!r}: restored predictor state "
                f"hash {restored_hash[:12]}… does not match the hash "
                f"{str(expected_hash)[:12]}… recorded at suspend time"
            )
        return session

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PredictorSession({self.session_id!r}, {self.predictor_key!r}, "
            f"events={self.cursor}, mpki={self.mpki():.3f})"
        )


def step_sessions_fused(
    sessions: Sequence[PredictorSession],
    events: Sequence[Tuple[int, int, bool, int, int]],
) -> List[List[StepOutput]]:
    """Step every session through the same event run in one fused pass.

    The cross-session counterpart of the engine's ``_replay_span_many``:
    the per-event costs that do not depend on the session — tuple
    unpacking and branch-type dispatch — are paid once per event instead
    of once per (session, event).  Each session still keeps its own RAS,
    warmup countdown, and accumulators, and receives exactly the calls
    :meth:`PredictorSession.step` would issue, so the outputs and final
    session states are bit-identical to solo stepping.

    Returns one output list (aligned with ``events``) per session.
    """
    count = len(sessions)
    outputs: List[List[StepOutput]] = [[] for _ in range(count)]
    if not count:
        return outputs
    if _columnar_eligible(sessions, events):
        columnar = _step_sessions_columnar(sessions, events)
        if columnar is not None:
            return columnar
    engines = [
        (
            session,
            session.predictor,
            session.predictor.predict_target,
            session.predictor.train,
            session.predictor.on_conditional,
            session.predictor.on_retired,
            session.ras,
            outputs[slot],
        )
        for slot, session in enumerate(sessions)
    ]
    for pc, branch_type, taken, target, gap in events:
        if branch_type == _COND:
            for session, _, _, _, on_conditional, _, _, out in engines:
                session.cursor += 1
                session.instruction_gaps += gap
                on_conditional(pc, taken)
                session.conditionals += 1
                if session.skip:
                    session.skip -= 1
                out.append(None)
        elif branch_type == _INDIRECT_JUMP or branch_type == _INDIRECT_CALL:
            for session, _, predict_target, train, _, on_retired, ras, out in engines:
                session.cursor += 1
                session.instruction_gaps += gap
                counted = not session.skip
                if session.skip:
                    session.skip -= 1
                prediction = predict_target(pc)
                correct = 1 if prediction == target else 0
                if counted:
                    session.indirect += 1
                    if not correct:
                        session.mispredictions += 1
                train(pc, target)
                on_retired(pc, branch_type, target)
                if branch_type == _INDIRECT_CALL:
                    ras.push(pc + 4)
                out.append((prediction, correct))
        elif branch_type == _RETURN:
            for session, _, _, _, _, on_retired, ras, out in engines:
                session.cursor += 1
                session.instruction_gaps += gap
                counted = not session.skip
                if session.skip:
                    session.skip -= 1
                ras_prediction = ras.predict()
                ras.pop()
                correct = 1 if ras_prediction == target else 0
                if counted:
                    session.returns += 1
                    if not correct:
                        session.return_mispredictions += 1
                on_retired(pc, branch_type, target)
                out.append((ras_prediction, correct))
        else:  # direct call / direct jump
            push = branch_type == _DIRECT_CALL
            for session, _, _, _, _, on_retired, ras, out in engines:
                session.cursor += 1
                session.instruction_gaps += gap
                if session.skip:
                    session.skip -= 1
                if push:
                    ras.push(pc + 4)
                on_retired(pc, branch_type, target)
                out.append(None)
    return outputs


def _columnar_eligible(
    sessions: Sequence[PredictorSession],
    events: Sequence[Tuple[int, int, bool, int, int]],
) -> bool:
    """Whether this event run should take the columnar shortcut."""
    if len(events) < COLUMNAR_STEP_THRESHOLD:
        return False
    depth = sessions[0].ras_depth
    return all(
        session.ras_depth == depth
        and columnar_supported(session.predictor)
        for session in sessions
    )


def _step_sessions_columnar(
    sessions: Sequence[PredictorSession],
    events: Sequence[Tuple[int, int, bool, int, int]],
) -> Optional[List[List[StepOutput]]]:
    """Replay one event run through the columnar kernels, all sessions.

    The predictor work — history folds, table reads, training — runs as
    one fused :func:`~repro.sim.kernel.simulate_columnar_many` pass over
    a transient trace built from the events (one shared precompute for
    every session); each session's RAS, warmup countdown, and metric
    accounting then replay in a cheap Python sweep using the kernels'
    per-branch prediction arrays.  Outputs, accumulators, and final
    predictor state are bit-identical to per-event stepping.

    Returns ``None`` when the events cannot form a trace (an unknown
    branch-type code); the caller falls back to the scalar path, whose
    per-event validation reports the offending event precisely.
    """
    try:
        records = [
            BranchRecord(
                pc, BranchType(branch_type), bool(taken), target,
                inst_gap=gap,
            )
            for pc, branch_type, taken, target, gap in events
        ]
        trace = Trace.from_records("serve-step", records)
    except (ValueError, TypeError):
        return None

    sinks: List[Dict[str, np.ndarray]] = [{} for _ in sessions]
    simulate_columnar_many(
        [session.predictor for session in sessions],
        trace,
        ras_depth=sessions[0].ras_depth,
        prediction_sinks=sinks,
    )

    outputs: List[List[StepOutput]] = []
    for session, sink in zip(sessions, sinks):
        valid = sink["valid"].tolist()
        predictions = sink["predictions"].tolist()
        ras = session.ras
        out: List[StepOutput] = []
        position = 0
        for pc, branch_type, taken, target, gap in events:
            session.cursor += 1
            session.instruction_gaps += gap
            if branch_type == _COND:
                session.conditionals += 1
                if session.skip:
                    session.skip -= 1
                out.append(None)
                continue
            counted = not session.skip
            if session.skip:
                session.skip -= 1
            if (
                branch_type == _INDIRECT_JUMP
                or branch_type == _INDIRECT_CALL
            ):
                prediction = (
                    predictions[position] if valid[position] else None
                )
                position += 1
                correct = 1 if prediction == target else 0
                if counted:
                    session.indirect += 1
                    if not correct:
                        session.mispredictions += 1
                if branch_type == _INDIRECT_CALL:
                    ras.push(pc + 4)
                out.append((prediction, correct))
            elif branch_type == _RETURN:
                ras_prediction = ras.predict()
                ras.pop()
                correct = 1 if ras_prediction == target else 0
                if counted:
                    session.returns += 1
                    if not correct:
                        session.return_mispredictions += 1
                out.append((ras_prediction, correct))
            else:
                if branch_type == _DIRECT_CALL:
                    ras.push(pc + 4)
                out.append(None)
        outputs.append(out)
    return outputs


__all__ = [
    "COLUMNAR_STEP_THRESHOLD",
    "SESSION_CHECKPOINT_KIND",
    "PredictorSession",
    "SessionError",
    "StepOutput",
    "step_sessions_fused",
]
