"""Client library and load driver for the prediction server.

:class:`ServeClient` is the simple lockstep client — one request, one
response — used by tests, scripts, and interactive poking.  The load
driver (:func:`drive_load`, also ``python -m repro.serve.client``)
is the throughput instrument: it multiplexes many sessions over a few
connections with **windowed pipelining** (up to ``window`` event
messages in flight per connection), which is what lets the server
coalesce events from different sessions into fused micro-batches.

Load streams are deterministic: session ``i`` replays the events of a
:class:`~repro.workloads.vdispatch.VirtualDispatchSpec` trace seeded by
``i % distinct_streams``, so (a) a re-run drives byte-identical traffic,
(b) sessions sharing a stream exercise the server's cross-session
fusion, and (c) any slice ``[offset, offset+count)`` of a session's
stream can be re-derived later — the serve-smoke script uses that to
stream half, kill the server, and resume the rest after a restart.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.serve import protocol
from repro.serve.protocol import Event, ProtocolError

#: Default predictor rotation for driven sessions.
DEFAULT_PREDICTORS = ("BLBP", "ITTAGE", "BTB")


class ClientError(RuntimeError):
    """The server answered with an error, or the connection broke."""


class ServeClient:
    """A lockstep (request → response) protocol client."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServeClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=protocol.MAX_LINE_BYTES
        )
        return cls(reader, writer)

    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one message, await one response; raise on ``error``."""
        self._writer.write(protocol.encode(message))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ClientError("server closed the connection")
        response = protocol.decode(line)
        if response.get("t") == "error":
            raise ClientError(response.get("error", "unknown server error"))
        return response

    async def hello(self) -> Dict[str, Any]:
        return await self.request({"t": "hello"})

    async def open(
        self,
        session_id: str,
        predictor: str,
        warmup: int = 0,
    ) -> Dict[str, Any]:
        return await self.request(
            {
                "t": "open",
                "session": session_id,
                "predictor": predictor,
                "warmup": warmup,
            }
        )

    async def events(
        self, session_id: str, events: Sequence[Event]
    ) -> Dict[str, Any]:
        return await self.request(
            {
                "t": "events",
                "session": session_id,
                "events": [list(event) for event in events],
            }
        )

    async def close_session(self, session_id: str) -> Dict[str, Any]:
        return await self.request({"t": "close", "session": session_id})

    async def stats(self, sessions: bool = False) -> Dict[str, Any]:
        return await self.request({"t": "stats", "sessions": sessions})

    async def drain(self) -> Dict[str, Any]:
        return await self.request({"t": "drain"})

    async def shutdown(self) -> Dict[str, Any]:
        return await self.request({"t": "shutdown"})

    async def aclose(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, OSError):
            pass


# ----------------------------------------------------------------------
# Deterministic load streams
# ----------------------------------------------------------------------


def stream_for(
    stream_index: int, num_events: int, mean_gap: float = 8.0
) -> List[Event]:
    """The deterministic event stream for one stream index.

    Derived from a virtual-dispatch workload trace (indirect calls,
    filler conditionals, instruction gaps), so driven sessions exercise
    the same predictor machinery as the batch suite.
    """
    from repro.workloads.vdispatch import VirtualDispatchSpec

    spec = VirtualDispatchSpec(
        name=f"serve-load-{stream_index}",
        seed=0xC0FFEE + stream_index,
        num_records=num_events,
        num_sites=4,
        num_types=4,
        determinism=0.85,
        mean_gap=mean_gap,
        filler_conditionals=6,
    )
    return protocol.trace_events(spec.generate())


def session_plan(
    sessions: int,
    predictors: Sequence[str] = DEFAULT_PREDICTORS,
    distinct_streams: int = 16,
) -> List[Tuple[str, str, int]]:
    """The driven fleet: ``(session_id, predictor_key, stream_index)``.

    Stream indices repeat every ``distinct_streams`` sessions — sessions
    sharing a stream are the server's fusion candidates.
    """
    distinct = max(1, min(distinct_streams, sessions))
    return [
        (
            f"load-{index:05d}",
            predictors[index % len(predictors)],
            index % distinct,
        )
        for index in range(sessions)
    ]


# ----------------------------------------------------------------------
# The windowed-pipelining load driver
# ----------------------------------------------------------------------


async def _drive_connection(
    host: str,
    port: int,
    assigned: List[Tuple[str, str, List[Event]]],
    chunk: int,
    window: int,
    do_open: bool,
    do_close: bool,
    warmup: int,
    outcome: Dict[str, Any],
) -> None:
    """Drive one connection's share of the fleet.

    Writes up to ``window`` event messages ahead of the responses read
    back; responses arrive in request order, so a deque of expected
    session ids keeps the accounting straight.
    """
    reader, writer = await asyncio.open_connection(
        host, port, limit=protocol.MAX_LINE_BYTES
    )
    try:
        client = ServeClient(reader, writer)
        if do_open:
            for session_id, predictor, _ in assigned:
                opened = await client.open(
                    session_id, predictor, warmup=warmup
                )
                if opened["resumed"]:
                    outcome["resumed"] += 1

        in_flight: "deque[Tuple[str, int]]" = deque()

        async def read_one() -> None:
            line = await reader.readline()
            if not line:
                raise ClientError("server closed the connection mid-stream")
            response = protocol.decode(line)
            if response.get("t") == "error":
                raise ClientError(response["error"])
            session_id, sent = in_flight.popleft()
            outcome["events"] += sent
            for entry in response["out"]:
                if entry is not None:
                    outcome["predictions"] += 1
                    if not entry[1]:
                        outcome["mispredictions"] += 1

        # Interleave sessions round-robin so chunks from different
        # sessions are simultaneously in flight (fusion fodder).
        queues: "deque[Tuple[str, deque]]" = deque()
        for session_id, _, events in assigned:
            chunks: deque = deque(
                events[start : start + chunk]
                for start in range(0, len(events), chunk)
            )
            if chunks:
                queues.append((session_id, chunks))

        while queues:
            session_id, chunks = queues.popleft()
            chunk_events = chunks.popleft()
            if chunks:
                queues.append((session_id, chunks))
            writer.write(
                protocol.encode(
                    {
                        "t": "events",
                        "session": session_id,
                        "events": [list(event) for event in chunk_events],
                    }
                )
            )
            in_flight.append((session_id, len(chunk_events)))
            if len(in_flight) >= window:
                await writer.drain()
                await read_one()
        await writer.drain()
        while in_flight:
            await read_one()

        if do_close:
            for session_id, _, _ in assigned:
                closed = await client.close_session(session_id)
                outcome["closed"][session_id] = {
                    "state_hash": closed["state_hash"],
                    "mpki": closed["result"]["mpki"],
                    "events": closed["result"]["events"],
                }
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, OSError):
            pass


async def drive_load(
    host: str,
    port: int,
    sessions: int = 50,
    events_per_session: int = 200,
    predictors: Sequence[str] = DEFAULT_PREDICTORS,
    chunk: int = 64,
    window: int = 16,
    connections: int = 8,
    distinct_streams: int = 16,
    offset: int = 0,
    count: Optional[int] = None,
    do_open: bool = True,
    do_close: bool = True,
    warmup: int = 0,
) -> Dict[str, Any]:
    """Drive ``sessions`` concurrent sessions; return throughput stats.

    ``offset``/``count`` select a slice of every session's deterministic
    stream (default: all of it), which is how a driver resumes sessions
    against a restarted server: run once with the first half, restart,
    run again with ``offset`` at the cut and ``do_open`` resuming.
    """
    plan = session_plan(sessions, predictors, distinct_streams)
    streams: Dict[int, List[Event]] = {}
    for _, _, stream_index in plan:
        if stream_index not in streams:
            streams[stream_index] = stream_for(
                stream_index, events_per_session
            )
    stop = (
        events_per_session
        if count is None
        else min(offset + count, events_per_session)
    )

    connections = max(1, min(connections, sessions))
    shares: List[List[Tuple[str, str, List[Event]]]] = [
        [] for _ in range(connections)
    ]
    for index, (session_id, predictor, stream_index) in enumerate(plan):
        events = streams[stream_index][offset:stop]
        shares[index % connections].append((session_id, predictor, events))

    outcome: Dict[str, Any] = {
        "events": 0,
        "predictions": 0,
        "mispredictions": 0,
        "resumed": 0,
        "closed": {},
    }
    started = time.perf_counter()
    await asyncio.gather(
        *(
            _drive_connection(
                host, port, share, chunk, window,
                do_open, do_close, warmup, outcome,
            )
            for share in shares
            if share
        )
    )
    elapsed = time.perf_counter() - started
    outcome.update(
        {
            "sessions": sessions,
            "connections": connections,
            "chunk": chunk,
            "window": window,
            "distinct_streams": min(max(1, distinct_streams), sessions),
            "predictors": list(predictors),
            "elapsed_seconds": round(elapsed, 4),
            "events_per_second": round(outcome["events"] / elapsed, 2)
            if elapsed > 0
            else 0.0,
        }
    )
    return outcome


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve.client",
        description="load driver for the repro prediction server",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--sessions", type=int, default=50)
    parser.add_argument("--events", type=int, default=200,
                        help="events per session (default 200)")
    parser.add_argument(
        "--predictors", default=",".join(DEFAULT_PREDICTORS),
        help="comma list of registry keys to rotate across sessions",
    )
    parser.add_argument("--chunk", type=int, default=64,
                        help="events per message (default 64)")
    parser.add_argument("--window", type=int, default=16,
                        help="messages in flight per connection")
    parser.add_argument("--connections", type=int, default=8)
    parser.add_argument("--distinct-streams", type=int, default=16,
                        help="distinct event streams across the fleet")
    parser.add_argument("--offset", type=int, default=0,
                        help="start each session's stream at this event")
    parser.add_argument("--count", type=int, default=None,
                        help="events per session to send (default: rest)")
    parser.add_argument("--no-close", dest="close", action="store_false",
                        help="leave sessions open (for drain/resume tests)")
    parser.add_argument("--warmup", type=int, default=0)
    parser.add_argument("--json", action="store_true",
                        help="print the full outcome as JSON")
    args = parser.parse_args(argv)

    outcome = asyncio.run(
        drive_load(
            args.host,
            args.port,
            sessions=args.sessions,
            events_per_session=args.events,
            predictors=[p.strip() for p in args.predictors.split(",")],
            chunk=args.chunk,
            window=args.window,
            connections=args.connections,
            distinct_streams=args.distinct_streams,
            offset=args.offset,
            count=args.count,
            do_close=args.close,
            warmup=args.warmup,
        )
    )
    if args.json:
        print(json.dumps(outcome, indent=2, sort_keys=True))
    else:
        print(
            f"{outcome['sessions']} sessions, {outcome['events']} events in "
            f"{outcome['elapsed_seconds']}s "
            f"({outcome['events_per_second']} events/s, "
            f"{outcome['mispredictions']}/{outcome['predictions']} "
            f"mispredictions)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
