"""ITTAGE: the tagged geometric-history indirect target predictor (Seznec).

The paper's state-of-the-art comparison point (0.193 MPKI, Table 2) is
the 64 KB ITTAGE from the second championship branch prediction
competition.  ITTAGE keeps a tagless base table plus several
partially-tagged tables indexed by hashes of the branch PC with
geometrically-growing slices of global history; the matching entry with
the longest history provides the prediction, with a confidence-gated
fallback to the next-longest match ("altpred").

History discipline follows Seznec's implementation: conditional branches
shift their outcome into global history; indirect branches shift several
low-order target bits (so the history encodes *which* target was taken,
not just that a branch was); all branches update a path history of PC
bits.  Folded-history registers keep index/tag computation O(1) per
branch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.common.hashing import FoldedHistory, mix_pc, stable_hash64
from repro.common.state import (
    StateError,
    check_state,
    dataclass_fingerprint,
    decode_array,
    encode_array,
    require,
)
from repro.common.storage import StorageBudget
from repro.predictors.base import IndirectBranchPredictor
from repro.trace.record import BranchType


def geometric_lengths(count: int, minimum: int = 4, maximum: int = 640) -> Tuple[int, ...]:
    """Geometric history-length series (Seznec's GEHL construction)."""
    if count < 1:
        raise ValueError(f"need >= 1 lengths, got {count}")
    if count == 1:
        return (maximum,)
    ratio = (maximum / minimum) ** (1.0 / (count - 1))
    lengths = []
    for position in range(count):
        length = int(round(minimum * ratio**position))
        if lengths and length <= lengths[-1]:
            length = lengths[-1] + 1
        lengths.append(length)
    return tuple(lengths)


@dataclass(frozen=True)
class ITTAGEConfig:
    """Sizing and behaviour knobs for :class:`ITTAGE`.

    Defaults approximate the 64 KB JWAC-2 configuration: a 4K-entry base
    table and seven 1K-entry tagged tables with history lengths from 4
    to 640 branches.
    """

    num_tagged: int = 7
    base_entries: int = 8192
    tagged_entries: int = 1024
    tag_bits: Tuple[int, ...] = (9, 9, 10, 10, 11, 11, 12)
    history_lengths: Tuple[int, ...] = field(default_factory=lambda: geometric_lengths(7))
    confidence_bits: int = 2
    useful_bits: int = 2
    target_bits_per_indirect: int = 3
    path_bits: int = 16
    u_reset_period: int = 1 << 16
    use_alt_bits: int = 4
    seed: int = 0xC0FFEE

    def __post_init__(self) -> None:
        if len(self.tag_bits) != self.num_tagged:
            raise ValueError(
                f"{self.num_tagged} tagged tables but {len(self.tag_bits)} tag widths"
            )
        if len(self.history_lengths) != self.num_tagged:
            raise ValueError(
                f"{self.num_tagged} tagged tables but "
                f"{len(self.history_lengths)} history lengths"
            )
        if list(self.history_lengths) != sorted(self.history_lengths):
            raise ValueError("history lengths must be non-decreasing")


class _HistoryRing:
    """Circular raw-history buffer backing the folded registers."""

    __slots__ = ("_buffer", "_capacity", "_head")

    def __init__(self, capacity: int) -> None:
        self._buffer = [0] * capacity
        self._capacity = capacity
        self._head = 0

    def bit_at(self, age: int) -> int:
        """The bit shifted in ``age`` pushes ago (0 = most recent)."""
        return self._buffer[(self._head - 1 - age) % self._capacity]

    def push(self, bit: int) -> None:
        self._buffer[self._head] = bit
        self._head = (self._head + 1) % self._capacity


class _TaggedTable:
    """One partially-tagged ITTAGE table."""

    __slots__ = ("entries", "tag_bits", "tags", "targets", "ctr", "useful", "valid")

    def __init__(self, entries: int, tag_bits: int) -> None:
        self.entries = entries
        self.tag_bits = tag_bits
        self.tags = np.zeros(entries, dtype=np.int64)
        self.targets = np.zeros(entries, dtype=np.uint64)
        self.ctr = np.zeros(entries, dtype=np.int8)
        self.useful = np.zeros(entries, dtype=np.int8)
        self.valid = np.zeros(entries, dtype=bool)


class ITTAGE(IndirectBranchPredictor):
    """Seznec's ITTAGE indirect target predictor."""

    name = "ITTAGE"

    def __init__(self, config: Optional[ITTAGEConfig] = None) -> None:
        self.config = config or ITTAGEConfig()
        cfg = self.config
        self._rng = np.random.default_rng(cfg.seed)

        self._base_targets = np.zeros(cfg.base_entries, dtype=np.uint64)
        self._base_ctr = np.zeros(cfg.base_entries, dtype=np.int8)
        self._base_valid = np.zeros(cfg.base_entries, dtype=bool)

        self._tables = [
            _TaggedTable(cfg.tagged_entries, cfg.tag_bits[i])
            for i in range(cfg.num_tagged)
        ]
        self._index_bits = max(1, (cfg.tagged_entries - 1).bit_length())

        capacity = max(cfg.history_lengths) + 1
        self._ring = _HistoryRing(capacity)
        self._index_folds = [
            FoldedHistory(length, self._index_bits) for length in cfg.history_lengths
        ]
        self._tag_folds = [
            FoldedHistory(length, cfg.tag_bits[i])
            for i, length in enumerate(cfg.history_lengths)
        ]
        self._tag_folds2 = [
            FoldedHistory(length, max(1, cfg.tag_bits[i] - 1))
            for i, length in enumerate(cfg.history_lengths)
        ]
        self._path = 0
        self._use_alt = 0  # signed meta-counter: >= 0 favours altpred on weak entries
        self._use_alt_max = (1 << (cfg.use_alt_bits - 1)) - 1
        self._use_alt_min = -(1 << (cfg.use_alt_bits - 1))
        self._updates = 0
        self._ctx = None  # prediction context carried from predict to train
        self._conf_max = (1 << cfg.confidence_bits) - 1
        self._useful_max = (1 << cfg.useful_bits) - 1

    # ------------------------------------------------------------------
    # Index / tag computation
    # ------------------------------------------------------------------

    def _base_index(self, pc: int) -> int:
        return mix_pc(pc) % self.config.base_entries

    def _tagged_index(self, pc: int, table: int) -> int:
        pc_hash = mix_pc(pc, salt=table + 1)
        folded = self._index_folds[table].fold
        path = self._path & ((1 << min(self.config.path_bits, 16)) - 1)
        mixed = pc_hash ^ folded ^ (path >> (table & 3))
        return (mixed & ((1 << self._index_bits) - 1)) % self.config.tagged_entries

    def _tagged_tag(self, pc: int, table: int) -> int:
        pc_hash = mix_pc(pc, salt=0x7AC + table)
        tag = pc_hash ^ self._tag_folds[table].fold ^ (self._tag_folds2[table].fold << 1)
        return tag & ((1 << self.config.tag_bits[table]) - 1)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def predict_target(self, pc: int) -> Optional[int]:
        cfg = self.config
        hits: List[Tuple[int, int]] = []  # (table, index), longest first
        indices = []
        tags = []
        for table_number in range(cfg.num_tagged):
            index = self._tagged_index(pc, table_number)
            tag = self._tagged_tag(pc, table_number)
            indices.append(index)
            tags.append(tag)
            table = self._tables[table_number]
            if table.valid[index] and int(table.tags[index]) == tag:
                hits.append((table_number, index))
        hits.sort(reverse=True)

        base_index = self._base_index(pc)
        base_target = (
            int(self._base_targets[base_index])
            if self._base_valid[base_index]
            else None
        )

        provider = hits[0] if hits else None
        if provider is not None:
            table = self._tables[provider[0]]
            provider_target = int(table.targets[provider[1]])
            provider_ctr = int(table.ctr[provider[1]])
        else:
            provider_target = None
            provider_ctr = 0

        if len(hits) > 1:
            alt_table = self._tables[hits[1][0]]
            alt_target: Optional[int] = int(alt_table.targets[hits[1][1]])
        else:
            alt_target = base_target

        if provider is None:
            final = base_target
            used_alt = True
        elif provider_ctr == 0 and self._use_alt >= 0 and alt_target is not None:
            # Weak (likely newly-allocated) provider: trust the altpred.
            final = alt_target
            used_alt = True
        else:
            final = provider_target
            used_alt = False

        self._ctx = {
            "pc": pc,
            "indices": indices,
            "tags": tags,
            "hits": hits,
            "provider": provider,
            "provider_target": provider_target,
            "provider_ctr": provider_ctr,
            "alt_target": alt_target,
            "base_index": base_index,
            "base_target": base_target,
            "final": final,
            "used_alt": used_alt,
        }
        return final

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def train(self, pc: int, target: int) -> None:
        ctx = self._ctx
        if ctx is None or ctx["pc"] != pc:
            # Train called without a matching predict (e.g. warm-up
            # replay): recompute prediction state first.
            self.predict_target(pc)
            ctx = self._ctx
        self._ctx = None
        cfg = self.config
        mispredicted = ctx["final"] != target

        provider = ctx["provider"]
        if provider is not None:
            table_number, index = provider
            table = self._tables[table_number]
            provider_correct = ctx["provider_target"] == target
            alt_correct = ctx["alt_target"] == target

            # Meta-counter: on weak providers, learn whether altpred is
            # the better choice.
            if ctx["provider_ctr"] == 0 and ctx["provider_target"] != ctx["alt_target"]:
                if alt_correct and not provider_correct:
                    if self._use_alt < self._use_alt_max:
                        self._use_alt += 1
                elif provider_correct and not alt_correct:
                    if self._use_alt > self._use_alt_min:
                        self._use_alt -= 1

            # Usefulness: provider right where altpred was wrong.
            if ctx["provider_target"] != ctx["alt_target"]:
                if provider_correct and int(table.useful[index]) < self._useful_max:
                    table.useful[index] += 1
                elif not provider_correct and int(table.useful[index]) > 0:
                    table.useful[index] -= 1

            # Confidence / target update.
            if provider_correct:
                if int(table.ctr[index]) < self._conf_max:
                    table.ctr[index] += 1
            else:
                if int(table.ctr[index]) > 0:
                    table.ctr[index] -= 1
                else:
                    table.targets[index] = target
                    table.ctr[index] = 1

        # Base table: last-target with hysteresis.
        base_index = ctx["base_index"]
        if not self._base_valid[base_index]:
            self._base_valid[base_index] = True
            self._base_targets[base_index] = target
            self._base_ctr[base_index] = 1
        elif int(self._base_targets[base_index]) == target:
            if int(self._base_ctr[base_index]) < self._conf_max:
                self._base_ctr[base_index] += 1
        else:
            if int(self._base_ctr[base_index]) > 0:
                self._base_ctr[base_index] -= 1
            else:
                self._base_targets[base_index] = target
                self._base_ctr[base_index] = 1

        # Allocation on misprediction: claim an entry with longer history.
        if mispredicted:
            provider_rank = provider[0] if provider is not None else -1
            self._allocate(ctx, provider_rank, target)

        self._updates += 1
        if self._updates % cfg.u_reset_period == 0:
            for table in self._tables:
                table.useful[:] = 0

    def _allocate(self, ctx: dict, provider_rank: int, target: int) -> None:
        cfg = self.config
        candidates = []
        for table_number in range(provider_rank + 1, cfg.num_tagged):
            index = ctx["indices"][table_number]
            if int(self._tables[table_number].useful[index]) == 0:
                candidates.append(table_number)
        if not candidates:
            # No free entry: age the competition so future allocations win.
            for table_number in range(provider_rank + 1, cfg.num_tagged):
                index = ctx["indices"][table_number]
                table = self._tables[table_number]
                if int(table.useful[index]) > 0:
                    table.useful[index] -= 1
            return
        # Favour shorter-history tables geometrically (Seznec's skew).
        chosen = candidates[0]
        for candidate in candidates[1:]:
            if self._rng.random() < 0.5:
                break
            chosen = candidate
        index = ctx["indices"][chosen]
        table = self._tables[chosen]
        table.valid[index] = True
        table.tags[index] = ctx["tags"][chosen]
        table.targets[index] = target
        table.ctr[index] = 0
        table.useful[index] = 0

    # ------------------------------------------------------------------
    # History discipline
    # ------------------------------------------------------------------

    def _push_history_bit(self, bit: int) -> None:
        outgoing = [
            self._ring.bit_at(length - 1) for length in self.config.history_lengths
        ]
        self._ring.push(bit)
        for fold, out in zip(self._index_folds, outgoing):
            fold.update(bit, out)
        for fold, out in zip(self._tag_folds, outgoing):
            fold.update(bit, out)
        for fold, out in zip(self._tag_folds2, outgoing):
            fold.update(bit, out)

    def on_conditional(self, pc: int, taken: bool) -> None:
        self._push_history_bit(int(taken))
        self._push_path(pc)

    def on_retired(self, pc: int, branch_type: int, target: int) -> None:
        cfg = self.config
        if branch_type in (
            int(BranchType.INDIRECT_JUMP),
            int(BranchType.INDIRECT_CALL),
        ):
            # Insert bits of a target *hash* rather than raw low-order
            # bits: raw bits 2..4 can be constant across an aligned
            # target set, which would erase the information Seznec's
            # history insertion is meant to provide.
            hashed = stable_hash64(target)
            for bit_position in range(cfg.target_bits_per_indirect):
                self._push_history_bit((hashed >> bit_position) & 1)
        else:
            self._push_history_bit(1)
        self._push_path(pc)

    def _push_path(self, pc: int) -> None:
        self._path = ((self._path << 2) | ((pc >> 2) & 3)) & (
            (1 << self.config.path_bits) - 1
        )

    # ------------------------------------------------------------------
    # Snapshot/restore.  The allocation tie-breaker consumes the RNG, so
    # its bit-generator state is architectural and rides in the snapshot.
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        if self._ctx is not None:
            raise StateError(
                "cannot snapshot ITTAGE between predict_target and train; "
                "snapshot at record boundaries"
            )
        return {
            "v": 1,
            "kind": "ITTAGE",
            "config": dataclass_fingerprint(self.config),
            "base_targets": encode_array(self._base_targets),
            "base_ctr": encode_array(self._base_ctr),
            "base_valid": encode_array(self._base_valid),
            "tables": [
                {
                    "tags": encode_array(table.tags),
                    "targets": encode_array(table.targets),
                    "ctr": encode_array(table.ctr),
                    "useful": encode_array(table.useful),
                    "valid": encode_array(table.valid),
                }
                for table in self._tables
            ],
            "ring": list(self._ring._buffer),
            "ring_head": self._ring._head,
            "index_folds": [fold.state_dict() for fold in self._index_folds],
            "tag_folds": [fold.state_dict() for fold in self._tag_folds],
            "tag_folds2": [fold.state_dict() for fold in self._tag_folds2],
            "path": self._path,
            "use_alt": self._use_alt,
            "updates": self._updates,
            "rng": self._rng.bit_generator.state,
        }

    def load_state(self, state: dict) -> None:
        check_state(state, "ITTAGE")
        require(
            state["config"] == dataclass_fingerprint(self.config),
            "ITTAGE snapshot was taken under a different configuration",
        )
        require(
            len(state["tables"]) == len(self._tables),
            "ITTAGE table count mismatch",
        )
        require(
            len(state["ring"]) == len(self._ring._buffer),
            "ITTAGE history ring size mismatch",
        )
        for table, payload in zip(self._tables, state["tables"]):
            for attr in ("tags", "targets", "ctr", "useful", "valid"):
                decoded = decode_array(payload[attr])
                current = getattr(table, attr)
                require(
                    decoded.shape == current.shape
                    and decoded.dtype == current.dtype,
                    f"ITTAGE table {attr} mismatch",
                )
                setattr(table, attr, decoded)
        self._base_targets = decode_array(state["base_targets"])
        self._base_ctr = decode_array(state["base_ctr"])
        self._base_valid = decode_array(state["base_valid"])
        self._ring._buffer = [int(bit) for bit in state["ring"]]
        self._ring._head = int(state["ring_head"])
        for folds, payloads in (
            (self._index_folds, state["index_folds"]),
            (self._tag_folds, state["tag_folds"]),
            (self._tag_folds2, state["tag_folds2"]),
        ):
            require(len(folds) == len(payloads), "ITTAGE fold count mismatch")
            for fold, payload in zip(folds, payloads):
                fold.load_state(payload)
        self._path = int(state["path"])
        self._use_alt = int(state["use_alt"])
        self._updates = int(state["updates"])
        self._rng.bit_generator.state = state["rng"]
        self._ctx = None

    # ------------------------------------------------------------------

    def storage_budget(self) -> StorageBudget:
        cfg = self.config
        budget = StorageBudget(self.name)
        # Targets counted region-compressed as in the paper (§3.6):
        # 7-bit region number + 20-bit offset.
        target_bits = 27
        budget.add_table(
            "base table", cfg.base_entries, target_bits + cfg.confidence_bits
        )
        for table_number in range(cfg.num_tagged):
            entry_bits = (
                cfg.tag_bits[table_number]
                + target_bits
                + cfg.confidence_bits
                + cfg.useful_bits
            )
            budget.add_table(
                f"tagged table {table_number} (hist {cfg.history_lengths[table_number]})",
                cfg.tagged_entries,
                entry_bits,
            )
        budget.add("region array", 128 * 37)
        budget.add("global history", max(cfg.history_lengths))
        budget.add("path history", cfg.path_bits)
        budget.add("use-alt meta counter", cfg.use_alt_bits)
        return budget
