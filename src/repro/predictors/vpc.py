"""VPC: Virtual Program Counter indirect prediction (Kim et al., ISCA '07).

VPC "devirtualizes" an indirect branch in hardware: a branch with T
observed targets is treated as a sequence of T virtual direct branches.
Prediction iterates over *virtual PCs* — hashes of the real PC and the
iteration number — querying the BTB for a stored target and the
conditional predictor for a taken/not-taken vote; the first iteration
whose conditional prediction says "taken" supplies the target.

Training reinforces the iteration holding the correct target as taken
and every earlier iteration as not-taken; if no iteration holds the
correct target, it is inserted at the least-recently-useful virtual slot.
Because the conditional predictor is shared with real conditional
branches, VPC slightly degrades conditional accuracy — the paper reports
2.05 % degradation; :attr:`conditional_mispredictions` tracks ours.

Our implementation follows the published algorithm; one simplification
(also noted in DESIGN.md) is that prediction-time iterations do not shift
a speculative virtual GHR — history advances only at training, through
the conditional predictor's own ``update``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.common.hashing import mix_pc, stable_hash64
from repro.common.state import (
    StateError,
    check_state,
    dataclass_fingerprint,
    decode_array,
    encode_array,
    require,
)
from repro.common.storage import StorageBudget
from repro.cond.base import ConditionalPredictor
from repro.cond.mpp import MultiperspectivePerceptron
from repro.predictors.base import IndirectBranchPredictor


@dataclass(frozen=True)
class VPCConfig:
    """Sizing knobs for :class:`VPCPredictor` (Table 2 defaults)."""

    #: Kim et al. evaluate MAX_ITER in the 10-16 range; 16 keeps VPC
    #: viable on interpreter-style branches with 12+ hot targets.
    max_iterations: int = 16
    btb_entries: int = 32768
    btb_tag_bits: int = 12
    #: When every visited iteration predicts not-taken, fall back to the
    #: first stored target (slot 0) instead of stalling.  Kim et al.
    #: treat the no-taken case as a stall/misprediction; the fallback
    #: bounds VPC's worst case at BTB behaviour on megamorphic branches.
    fallback_to_first: bool = True

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )
        if self.btb_entries < 1:
            raise ValueError(f"btb_entries must be >= 1, got {self.btb_entries}")


class _DirectMappedBTB:
    """Partially-tagged direct-mapped BTB with recency ticks for VPC."""

    def __init__(self, entries: int, tag_bits: int) -> None:
        self.entries = entries
        self.tag_bits = tag_bits
        self._tags = np.full(entries, -1, dtype=np.int64)
        self._targets = np.zeros(entries, dtype=np.uint64)
        self._ticks = np.zeros(entries, dtype=np.int64)
        self._clock = 0

    def _slot(self, vpca: int) -> Tuple[int, int]:
        hashed = stable_hash64(vpca)
        return hashed % self.entries, (hashed >> 22) & ((1 << self.tag_bits) - 1)

    def lookup(self, vpca: int) -> Optional[int]:
        index, tag = self._slot(vpca)
        if int(self._tags[index]) == tag:
            return int(self._targets[index])
        return None

    def touch(self, vpca: int) -> None:
        index, tag = self._slot(vpca)
        if int(self._tags[index]) == tag:
            self._clock += 1
            self._ticks[index] = self._clock

    def tick_of(self, vpca: int) -> int:
        index, _ = self._slot(vpca)
        return int(self._ticks[index])

    def is_hit(self, vpca: int) -> bool:
        index, tag = self._slot(vpca)
        return int(self._tags[index]) == tag

    def insert(self, vpca: int, target: int) -> None:
        index, tag = self._slot(vpca)
        self._clock += 1
        self._tags[index] = tag
        self._targets[index] = target
        self._ticks[index] = self._clock

    def state_dict(self) -> dict:
        return {
            "v": 1,
            "kind": "DirectMappedBTB",
            "entries": self.entries,
            "tag_bits": self.tag_bits,
            "tags": encode_array(self._tags),
            "targets": encode_array(self._targets),
            "ticks": encode_array(self._ticks),
            "clock": self._clock,
        }

    def load_state(self, state: dict) -> None:
        check_state(state, "DirectMappedBTB")
        require(
            state["entries"] == self.entries
            and state["tag_bits"] == self.tag_bits,
            "VPC BTB geometry mismatch",
        )
        tags = decode_array(state["tags"])
        targets = decode_array(state["targets"])
        ticks = decode_array(state["ticks"])
        require(
            tags.shape == self._tags.shape
            and targets.shape == self._targets.shape
            and ticks.shape == self._ticks.shape,
            "VPC BTB table mismatch",
        )
        self._tags = tags.astype(np.int64)
        self._targets = targets.astype(np.uint64)
        self._ticks = ticks.astype(np.int64)
        self._clock = int(state["clock"])


class VPCPredictor(IndirectBranchPredictor):
    """Kim et al.'s VPC prediction over a shared conditional predictor."""

    name = "VPC"

    def __init__(
        self,
        config: Optional[VPCConfig] = None,
        conditional: Optional[ConditionalPredictor] = None,
    ) -> None:
        self.config = config or VPCConfig()
        self.conditional = conditional or MultiperspectivePerceptron()
        self._btb = _DirectMappedBTB(
            self.config.btb_entries, self.config.btb_tag_bits
        )
        self._ctx: Optional[dict] = None
        # Conditional-accuracy bookkeeping (the paper reports 2.05 %
        # degradation from sharing the predictor with VPC).
        self.conditional_count = 0
        self.conditional_mispredictions = 0

    def _vpca(self, pc: int, iteration: int) -> int:
        if iteration == 0:
            return pc
        return mix_pc(pc, salt=iteration) ^ (iteration * 0x1F3)

    # ------------------------------------------------------------------

    def predict_target(self, pc: int) -> Optional[int]:
        visited: List[Tuple[int, Optional[int]]] = []  # (vpca, btb target)
        prediction: Optional[int] = None
        hit_iteration: Optional[int] = None
        for iteration in range(self.config.max_iterations):
            vpca = self._vpca(pc, iteration)
            target = self._btb.lookup(vpca)
            if target is None:
                # No more stored targets for this branch: stop iterating.
                break
            visited.append((vpca, target))
            if self.conditional.predict(vpca):
                prediction = target
                hit_iteration = iteration
                break
        if prediction is None and visited and self.config.fallback_to_first:
            prediction = visited[0][1]
            hit_iteration = 0
        self._ctx = {
            "pc": pc,
            "visited": visited,
            "prediction": prediction,
            "hit_iteration": hit_iteration,
        }
        return prediction

    # ------------------------------------------------------------------

    def train(self, pc: int, target: int) -> None:
        ctx = self._ctx
        if ctx is None or ctx["pc"] != pc:
            self.predict_target(pc)
            ctx = self._ctx
        self._ctx = None

        visited = ctx["visited"]
        prediction = ctx["prediction"]

        if prediction == target:
            # Correct: reinforce the hit iteration as taken, the ones
            # before it as not-taken.
            hit = ctx["hit_iteration"]
            for iteration, (vpca, _) in enumerate(visited):
                self.conditional.train_weights(vpca, taken=(iteration == hit))
            self._btb.touch(visited[hit][0])
            return

        # Mispredicted (or no prediction).  Search every iteration for the
        # correct target; the search replays vpcas beyond the visited
        # prefix, as the training algorithm in the paper does.
        found_iteration = None
        all_vpcas: List[int] = []
        for iteration in range(self.config.max_iterations):
            vpca = self._vpca(pc, iteration)
            all_vpcas.append(vpca)
            stored = self._btb.lookup(vpca)
            if stored == target and found_iteration is None:
                found_iteration = iteration

        if found_iteration is not None:
            for iteration in range(found_iteration + 1):
                vpca = all_vpcas[iteration]
                if self._btb.is_hit(vpca) or iteration == found_iteration:
                    self.conditional.train_weights(
                        vpca, taken=(iteration == found_iteration)
                    )
            self._btb.touch(all_vpcas[found_iteration])
            return

        # Target not stored anywhere: insert at an empty slot if one
        # exists, else the least-recently-useful virtual slot; train the
        # inserted iteration taken and the visited prefix not-taken.
        victim_iteration = None
        for iteration, vpca in enumerate(all_vpcas):
            if not self._btb.is_hit(vpca):
                victim_iteration = iteration
                break
        if victim_iteration is None:
            ticks = [self._btb.tick_of(vpca) for vpca in all_vpcas]
            victim_iteration = int(np.argmin(ticks))
        for iteration, (vpca, _) in enumerate(visited):
            if iteration != victim_iteration:
                self.conditional.train_weights(vpca, taken=False)
        inserted_vpca = all_vpcas[victim_iteration]
        self._btb.insert(inserted_vpca, target)
        self.conditional.train_weights(inserted_vpca, taken=True)

    # ------------------------------------------------------------------

    def on_conditional(self, pc: int, taken: bool) -> None:
        predicted = self.conditional.predict(pc)
        self.conditional_count += 1
        if predicted != taken:
            self.conditional_mispredictions += 1
        self.conditional.update(pc, taken)

    def conditional_accuracy(self) -> float:
        """Accuracy of the shared conditional predictor on real branches."""
        if self.conditional_count == 0:
            return 1.0
        return 1.0 - self.conditional_mispredictions / self.conditional_count

    def state_dict(self) -> dict:
        if self._ctx is not None:
            raise StateError(
                "cannot snapshot VPC between predict_target and train; "
                "snapshot at record boundaries"
            )
        return {
            "v": 1,
            "kind": "VPCPredictor",
            "config": dataclass_fingerprint(self.config),
            "btb": self._btb.state_dict(),
            "conditional": self.conditional.state_dict(),
            "conditional_count": self.conditional_count,
            "conditional_mispredictions": self.conditional_mispredictions,
        }

    def load_state(self, state: dict) -> None:
        check_state(state, "VPCPredictor")
        require(
            state["config"] == dataclass_fingerprint(self.config),
            "VPC snapshot was taken under a different configuration",
        )
        self._btb.load_state(state["btb"])
        self.conditional.load_state(state["conditional"])
        self.conditional_count = int(state["conditional_count"])
        self.conditional_mispredictions = int(
            state["conditional_mispredictions"]
        )
        self._ctx = None

    def storage_budget(self) -> StorageBudget:
        budget = StorageBudget(self.name)
        budget.add_table(
            "BTB targets", self.config.btb_entries, 62
        )
        budget.add_table(
            "BTB partial tags", self.config.btb_entries, self.config.btb_tag_bits
        )
        budget.add_table("BTB recency ticks", self.config.btb_entries, 8)
        for component, bits in self.conditional.storage_budget().items:
            budget.add(f"conditional: {component}", bits)
        return budget
