"""Chang, Hao & Patt's Target Cache (related work, §2.2).

Indexes a tagged target table with a hash of the branch PC and a
*pattern history* of recent indirect-branch targets, so a polymorphic
branch occupies several entries — one per history context — instead of
thrashing a single BTB slot.  Included as an extension baseline; it sits
between the BTB and ITTAGE in accuracy on our suite.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.hashing import mix_pc, stable_hash64
from repro.common.state import check_state, decode_array, encode_array, require
from repro.common.storage import StorageBudget
from repro.predictors.base import IndirectBranchPredictor
from repro.trace.record import BranchType


class TargetCache(IndirectBranchPredictor):
    """Pattern-history indexed, tagged target cache.

    Args:
        num_entries: table size (power of two recommended).
        tag_bits: partial tag width.
        history_targets: number of recent indirect targets in the
            pattern history.
        bits_per_target: low-order target bits recorded per history slot.
    """

    name = "TargetCache"

    def __init__(
        self,
        num_entries: int = 8192,
        tag_bits: int = 10,
        history_targets: int = 3,
        bits_per_target: int = 3,
    ) -> None:
        if num_entries < 1:
            raise ValueError(f"need >= 1 entries, got {num_entries}")
        if history_targets < 1:
            raise ValueError(f"need >= 1 history targets, got {history_targets}")
        self.num_entries = num_entries
        self.tag_bits = tag_bits
        self.history_targets = history_targets
        self.bits_per_target = bits_per_target
        self._tags = np.full(num_entries, -1, dtype=np.int64)
        self._targets = np.zeros(num_entries, dtype=np.uint64)
        self._history = 0
        self._history_bits = history_targets * bits_per_target
        self._history_mask = (1 << self._history_bits) - 1

    def _index_and_tag(self, pc: int) -> tuple:
        # Hash (not XOR-fold) the pattern history: folding is insensitive
        # to chunk order, which collapses the distinct phases of an
        # alternating target pattern onto one entry.
        pc_hash = mix_pc(pc)
        index = (pc_hash ^ stable_hash64(self._history)) % self.num_entries
        tag = (pc_hash >> 24) & ((1 << self.tag_bits) - 1)
        return index, tag

    def predict_target(self, pc: int) -> Optional[int]:
        index, tag = self._index_and_tag(pc)
        if int(self._tags[index]) == tag:
            return int(self._targets[index])
        return None

    def train(self, pc: int, target: int) -> None:
        index, tag = self._index_and_tag(pc)
        self._tags[index] = tag
        self._targets[index] = target

    def on_retired(self, pc: int, branch_type: int, target: int) -> None:
        if branch_type in (
            int(BranchType.INDIRECT_JUMP),
            int(BranchType.INDIRECT_CALL),
        ):
            # Record a hash of the target so alignment in the target set
            # cannot zero out the recorded history bits.
            bits = stable_hash64(target) & ((1 << self.bits_per_target) - 1)
            self._history = (
                (self._history << self.bits_per_target) | bits
            ) & self._history_mask

    def state_dict(self) -> dict:
        return {
            "v": 1,
            "kind": "TargetCache",
            "num_entries": self.num_entries,
            "tag_bits": self.tag_bits,
            "history_targets": self.history_targets,
            "bits_per_target": self.bits_per_target,
            "tags": encode_array(self._tags),
            "targets": encode_array(self._targets),
            "history": self._history,
        }

    def load_state(self, state: dict) -> None:
        check_state(state, "TargetCache")
        require(
            state["num_entries"] == self.num_entries
            and state["tag_bits"] == self.tag_bits
            and state["history_targets"] == self.history_targets
            and state["bits_per_target"] == self.bits_per_target,
            "TargetCache geometry mismatch",
        )
        tags = decode_array(state["tags"])
        targets = decode_array(state["targets"])
        require(
            tags.shape == self._tags.shape
            and targets.shape == self._targets.shape,
            "TargetCache table mismatch",
        )
        history = int(state["history"])
        require(
            0 <= history <= self._history_mask,
            "TargetCache history out of range",
        )
        self._tags = tags.astype(np.int64)
        self._targets = targets.astype(np.uint64)
        self._history = history

    def storage_budget(self) -> StorageBudget:
        budget = StorageBudget(self.name)
        budget.add_table("targets", self.num_entries, 64 - 2)
        budget.add_table("partial tags", self.num_entries, self.tag_bits)
        budget.add("target pattern history", self._history_bits)
        return budget
