"""Indirect branch target predictors: the paper's baselines.

* :class:`~repro.predictors.btb.BranchTargetBuffer` — last-taken BTB
  (the paper's baseline, 3.40 MPKI);
* :class:`~repro.predictors.two_bit_btb.TwoBitBTB` — Calder & Grunwald's
  replace-after-two-misses variant;
* :class:`~repro.predictors.target_cache.TargetCache` — Chang et al.'s
  pattern-history indexed target cache (related-work extra);
* :class:`~repro.predictors.ittage.ITTAGE` — Seznec's tagged geometric
  indirect predictor, the paper's state-of-the-art comparison;
* :class:`~repro.predictors.vpc.VPCPredictor` — Kim et al.'s hardware
  devirtualization over a conditional predictor and BTB.

The paper's own contribution, BLBP, lives in :mod:`repro.core`.
"""

from repro.predictors.base import IndirectBranchPredictor
from repro.predictors.btb import BranchTargetBuffer
from repro.predictors.cottage import COTTAGE
from repro.predictors.ittage import ITTAGE, ITTAGEConfig
from repro.predictors.target_cache import TargetCache
from repro.predictors.two_bit_btb import TwoBitBTB
from repro.predictors.vpc import VPCConfig, VPCPredictor

__all__ = [
    "IndirectBranchPredictor",
    "BranchTargetBuffer",
    "COTTAGE",
    "TwoBitBTB",
    "TargetCache",
    "ITTAGE",
    "ITTAGEConfig",
    "VPCPredictor",
    "VPCConfig",
]
