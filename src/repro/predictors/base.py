"""Interface for indirect branch target predictors.

The simulation engine drives every predictor through the same three
calls, mirroring the CBP infrastructure the paper uses (§4.2):

1. ``predict_target(pc)`` at fetch of an indirect branch;
2. ``train(pc, actual_target)`` at resolution of that same branch —
   always called exactly once after each ``predict_target``;
3. ``on_branch(record)`` at retirement of *every* branch (conditional,
   direct, return, and the indirect branch itself, after ``train``), so
   predictors maintain whatever history discipline their paper defines.

Predictors must be self-contained: all history registers live inside the
predictor, never in the simulator.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Optional

from repro.common.state import hash_state
from repro.common.storage import StorageBudget
from repro.trace.record import BranchRecord, BranchType


class IndirectBranchPredictor(abc.ABC):
    """A branch *target* predictor for indirect jumps and calls."""

    #: Human-readable predictor name, used in result tables.
    name: str = "indirect"

    @abc.abstractmethod
    def predict_target(self, pc: int) -> Optional[int]:
        """Predict the target of the indirect branch at ``pc``.

        Returns ``None`` when the predictor has no prediction (e.g. a
        cold BTB); the simulator counts that as a misprediction.
        """

    @abc.abstractmethod
    def train(self, pc: int, target: int) -> None:
        """Train with the resolved target of the last-predicted branch."""

    def on_conditional(self, pc: int, taken: bool) -> None:
        """Observe a retired conditional branch (default: ignore).

        History-based predictors override this to shift the outcome into
        their global-history registers.
        """

    def on_retired(self, pc: int, branch_type: int, target: int) -> None:
        """Observe a retired non-conditional branch (default: ignore).

        ``branch_type`` is the integer value of a :class:`BranchType`
        (passed raw so the simulation hot loop avoids enum construction).
        Predictors whose history discipline folds in target or path bits
        (e.g. ITTAGE) override this.
        """

    def on_branch(self, record: BranchRecord) -> None:
        """Convenience dispatcher from a record to the granular hooks."""
        if record.branch_type is BranchType.CONDITIONAL:
            self.on_conditional(record.pc, record.taken)
        else:
            self.on_retired(record.pc, int(record.branch_type), record.target)

    @abc.abstractmethod
    def storage_budget(self) -> StorageBudget:
        """Itemized hardware state of this predictor."""

    # ------------------------------------------------------------------
    # Snapshot/restore protocol (see docs/checkpointing.md).  Every
    # registered predictor implements the pair; the base raises so a
    # predictor that forgot fails loudly at checkpoint time, not with
    # silently-empty state.
    # ------------------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """A JSON-ready snapshot of all architectural state."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support snapshot/restore"
        )

    def load_state(self, state: Dict[str, Any]) -> None:
        """Restore a freshly constructed predictor from a snapshot."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support snapshot/restore"
        )

    def state_hash(self) -> str:
        """Canonical SHA-256 of :meth:`state_dict` (determinism checks)."""
        return hash_state(self.state_dict())
