"""Calder & Grunwald's 2-bit branch target buffer.

Identical to the baseline BTB except that a stored target is replaced
only after **two consecutive mispredictions**, implemented with a 2-bit
hysteresis counter per entry (§2.2).  This filters out one-off target
excursions for mostly-monomorphic branches but still cannot track truly
polymorphic ones.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.hashing import mix_pc
from repro.common.state import check_state, decode_array, encode_array, require
from repro.common.storage import StorageBudget
from repro.predictors.base import IndirectBranchPredictor


class TwoBitBTB(IndirectBranchPredictor):
    """Direct-mapped BTB with two-miss replacement hysteresis."""

    name = "2bit-BTB"

    def __init__(self, num_entries: int = 32768, tag_bits: int = 12) -> None:
        if num_entries < 1:
            raise ValueError(f"need >= 1 entries, got {num_entries}")
        if tag_bits < 1:
            raise ValueError(f"need >= 1 tag bits, got {tag_bits}")
        self.num_entries = num_entries
        self.tag_bits = tag_bits
        self._tags = np.full(num_entries, -1, dtype=np.int64)
        self._targets = np.zeros(num_entries, dtype=np.uint64)
        self._misses = np.zeros(num_entries, dtype=np.uint8)

    def _index_and_tag(self, pc: int) -> tuple:
        hashed = mix_pc(pc)
        return hashed % self.num_entries, (hashed >> 20) & ((1 << self.tag_bits) - 1)

    def predict_target(self, pc: int) -> Optional[int]:
        index, tag = self._index_and_tag(pc)
        if int(self._tags[index]) == tag:
            return int(self._targets[index])
        return None

    def train(self, pc: int, target: int) -> None:
        index, tag = self._index_and_tag(pc)
        if int(self._tags[index]) != tag:
            # Cold or conflicting entry: fill immediately.
            self._tags[index] = tag
            self._targets[index] = target
            self._misses[index] = 0
            return
        if int(self._targets[index]) == target:
            self._misses[index] = 0
            return
        if int(self._misses[index]) >= 1:
            # Second consecutive miss: replace the stored target.
            self._targets[index] = target
            self._misses[index] = 0
        else:
            self._misses[index] += 1

    def state_dict(self) -> dict:
        return {
            "v": 1,
            "kind": "TwoBitBTB",
            "num_entries": self.num_entries,
            "tag_bits": self.tag_bits,
            "tags": encode_array(self._tags),
            "targets": encode_array(self._targets),
            "misses": encode_array(self._misses),
        }

    def load_state(self, state: dict) -> None:
        check_state(state, "TwoBitBTB")
        require(
            state["num_entries"] == self.num_entries
            and state["tag_bits"] == self.tag_bits,
            "TwoBitBTB geometry mismatch",
        )
        tags = decode_array(state["tags"])
        targets = decode_array(state["targets"])
        misses = decode_array(state["misses"])
        require(
            tags.shape == self._tags.shape
            and targets.shape == self._targets.shape
            and misses.shape == self._misses.shape,
            "TwoBitBTB table mismatch",
        )
        self._tags = tags.astype(np.int64)
        self._targets = targets.astype(np.uint64)
        self._misses = misses.astype(np.uint8)

    def storage_budget(self) -> StorageBudget:
        budget = StorageBudget(self.name)
        budget.add_table("targets", self.num_entries, 64 - 2)
        budget.add_table("partial tags", self.num_entries, self.tag_bits)
        budget.add_table("hysteresis", self.num_entries, 1)
        return budget
