"""COTTAGE: combined TAGE + ITTAGE front-end predictor (Seznec).

§2.2: "The COTTAGE predictor incorporates both a TAGE and ITTAGE
predictor in one to predict both branch directions and targets."  This
composition serves two roles in the reproduction:

* an end-to-end front-end model (conditional directions via TAGE,
  indirect targets via ITTAGE) for examples that simulate both
  prediction problems at once;
* a second conditional substrate for VPC-style experiments (TAGE is a
  :class:`~repro.cond.base.ConditionalPredictor`, so
  ``VPCPredictor(conditional=TAGE())`` also works).

The indirect half retires every branch into ITTAGE's history, and the
conditional half tracks its own accuracy like VPC does, so both sides
of the front-end can be reported from a single simulation pass.
"""

from __future__ import annotations

from typing import Optional

from repro.common.state import check_state
from repro.common.storage import StorageBudget
from repro.cond.tage import TAGE, TAGEConfig
from repro.predictors.base import IndirectBranchPredictor
from repro.predictors.ittage import ITTAGE, ITTAGEConfig


class COTTAGE(IndirectBranchPredictor):
    """TAGE for directions + ITTAGE for targets, as one predictor."""

    name = "COTTAGE"

    def __init__(
        self,
        tage_config: Optional[TAGEConfig] = None,
        ittage_config: Optional[ITTAGEConfig] = None,
    ) -> None:
        self.tage = TAGE(tage_config)
        self.ittage = ITTAGE(ittage_config)
        self.conditional_count = 0
        self.conditional_mispredictions = 0

    # Indirect side -----------------------------------------------------

    def predict_target(self, pc: int) -> Optional[int]:
        return self.ittage.predict_target(pc)

    def train(self, pc: int, target: int) -> None:
        self.ittage.train(pc, target)

    def on_retired(self, pc: int, branch_type: int, target: int) -> None:
        self.ittage.on_retired(pc, branch_type, target)

    # Conditional side ----------------------------------------------------

    def on_conditional(self, pc: int, taken: bool) -> None:
        predicted = self.tage.predict(pc)
        self.conditional_count += 1
        if predicted != taken:
            self.conditional_mispredictions += 1
        self.tage.update(pc, taken)
        self.ittage.on_conditional(pc, taken)

    def conditional_accuracy(self) -> float:
        """Direction accuracy of the TAGE half."""
        if self.conditional_count == 0:
            return 1.0
        return 1.0 - self.conditional_mispredictions / self.conditional_count

    # Snapshot/restore --------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "v": 1,
            "kind": "COTTAGE",
            "tage": self.tage.state_dict(),
            "ittage": self.ittage.state_dict(),
            "conditional_count": self.conditional_count,
            "conditional_mispredictions": self.conditional_mispredictions,
        }

    def load_state(self, state: dict) -> None:
        check_state(state, "COTTAGE")
        self.tage.load_state(state["tage"])
        self.ittage.load_state(state["ittage"])
        self.conditional_count = int(state["conditional_count"])
        self.conditional_mispredictions = int(
            state["conditional_mispredictions"]
        )

    # ------------------------------------------------------------------

    def storage_budget(self) -> StorageBudget:
        budget = StorageBudget(self.name)
        for component, bits in self.tage.storage_budget().items:
            budget.add(f"TAGE: {component}", bits)
        for component, bits in self.ittage.storage_budget().items:
            budget.add(f"ITTAGE: {component}", bits)
        return budget
