"""The baseline branch target buffer (Lee & Smith).

A 32K-entry, direct-mapped, partially-tagged cache indexed by branch PC,
storing the most recently observed target (Table 2).  Sufficient for
monomorphic branches, poor for polymorphic ones — the paper's baseline
lands at 3.40 MPKI versus 0.183 for BLBP.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.hashing import mix_pc
from repro.common.state import check_state, decode_array, encode_array, require
from repro.common.storage import StorageBudget
from repro.predictors.base import IndirectBranchPredictor


class BranchTargetBuffer(IndirectBranchPredictor):
    """Direct-mapped, partially-tagged, last-taken-target BTB."""

    name = "BTB"

    def __init__(self, num_entries: int = 32768, tag_bits: int = 12) -> None:
        if num_entries < 1:
            raise ValueError(f"need >= 1 entries, got {num_entries}")
        if tag_bits < 1:
            raise ValueError(f"need >= 1 tag bits, got {tag_bits}")
        self.num_entries = num_entries
        self.tag_bits = tag_bits
        self._tags = np.full(num_entries, -1, dtype=np.int64)
        self._targets = np.zeros(num_entries, dtype=np.uint64)

    def _index_and_tag(self, pc: int) -> tuple:
        hashed = mix_pc(pc)
        index = hashed % self.num_entries
        tag = (hashed >> 20) & ((1 << self.tag_bits) - 1)
        return index, tag

    def predict_target(self, pc: int) -> Optional[int]:
        index, tag = self._index_and_tag(pc)
        if int(self._tags[index]) == tag:
            return int(self._targets[index])
        return None

    def train(self, pc: int, target: int) -> None:
        index, tag = self._index_and_tag(pc)
        self._tags[index] = tag
        self._targets[index] = target

    def state_dict(self) -> dict:
        return {
            "v": 1,
            "kind": "BranchTargetBuffer",
            "num_entries": self.num_entries,
            "tag_bits": self.tag_bits,
            "tags": encode_array(self._tags),
            "targets": encode_array(self._targets),
        }

    def load_state(self, state: dict) -> None:
        check_state(state, "BranchTargetBuffer")
        require(
            state["num_entries"] == self.num_entries
            and state["tag_bits"] == self.tag_bits,
            "BranchTargetBuffer geometry mismatch",
        )
        tags = decode_array(state["tags"])
        targets = decode_array(state["targets"])
        require(
            tags.shape == self._tags.shape
            and targets.shape == self._targets.shape,
            "BranchTargetBuffer table mismatch",
        )
        self._tags = tags.astype(np.int64)
        self._targets = targets.astype(np.uint64)

    def storage_budget(self) -> StorageBudget:
        budget = StorageBudget(self.name)
        # 64-bit targets stored uncompressed in the baseline.
        budget.add_table("targets", self.num_entries, 64 - 2)
        budget.add_table("partial tags", self.num_entries, self.tag_bits)
        return budget
