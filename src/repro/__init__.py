"""repro: Bit-level Perceptron Prediction for Indirect Branches.

A from-scratch Python reproduction of Garza, Mirbagher-Ajorpaz, Khan &
Jiménez, *Bit-level Perceptron Prediction for Indirect Branches*,
ISCA 2019 — the BLBP predictor, its baselines (BTB, VPC, ITTAGE), a
CBP-style trace simulator, and synthetic workload suites.

Quickstart::

    from repro import BLBP, ITTAGE, simulate
    from repro.workloads import VirtualDispatchSpec

    trace = VirtualDispatchSpec(
        name="demo", seed=1, num_records=20000, num_types=4
    ).generate()
    result = simulate(BLBP(), trace)
    print(result.mpki())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core import BLBP, BLBPConfig, paper_config
from repro.exec import run_campaign_parallel
from repro.predictors import (
    ITTAGE,
    BranchTargetBuffer,
    ITTAGEConfig,
    IndirectBranchPredictor,
    TargetCache,
    TwoBitBTB,
    VPCConfig,
    VPCPredictor,
)
from repro.sim import (
    CampaignResult,
    ReturnAddressStack,
    SimulationResult,
    run_campaign,
    simulate,
)
from repro.trace import BranchRecord, BranchType, Trace, compute_stats

__version__ = "1.0.0"

__all__ = [
    "BLBP",
    "BLBPConfig",
    "paper_config",
    "ITTAGE",
    "ITTAGEConfig",
    "VPCPredictor",
    "VPCConfig",
    "BranchTargetBuffer",
    "TwoBitBTB",
    "TargetCache",
    "IndirectBranchPredictor",
    "simulate",
    "run_campaign",
    "run_campaign_parallel",
    "SimulationResult",
    "CampaignResult",
    "ReturnAddressStack",
    "Trace",
    "BranchRecord",
    "BranchType",
    "compute_stats",
    "__version__",
]
