"""The derived plane: per-trace precomputation shared by every predictor.

Several quantities the simulation loop recomputes per (trace, predictor)
cell are pure functions of the trace alone:

* **Return-address-stack outcomes.**  The RAS sees only calls and returns,
  never a predictor decision, so its per-return prediction sequence for a
  given depth is fixed by the trace.  Replaying push/pop per predictor is
  pure waste in a multi-predictor campaign.
* **Indirect-branch index arrays.**  Which records are indirect, their
  PCs and targets — the only records most predictors score on.
* **Conditional-outcome bitstream.**  The taken/not-taken sequence,
  packed 8 outcomes per byte.
* **Per-PC grouping.**  CSR-style ordinal lists per static indirect
  branch, for diagnostics and per-PC analyses.

:func:`compute_derived` builds all of this once; :func:`write_derived` /
:func:`read_derived` cache it on disk next to the spill (``RPDERIV1``
format, raw little-endian columns like ``RPTRACE2``), keyed by the spill's
content hash and the RAS depth so a stale plane can never be attached to
the wrong trace.  :func:`cached_derived` adds the per-worker in-memory LRU
used by fused execution.

The replay here intentionally re-implements the ``ReturnAddressStack``
contract (bounded stack, overflow drops the oldest entry, underflow
predicts ``None``) without importing ``repro.sim`` — the trace package
sits below the simulation package.  A hypothesis differential test pins
the two implementations together (``tests/trace/test_derived.py``).
"""

from __future__ import annotations

import json
import os
import struct
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.trace.plane import (
    atomic_write_bytes,
    spilled_hash,
    trace_content_hash,
)
from repro.trace.record import BranchType
from repro.trace.stream import Trace

MAGIC_DERIVED = b"RPDERIV1"

_ALIGNMENT = 64

_COND = int(BranchType.CONDITIONAL)
_DIRECT_CALL = int(BranchType.DIRECT_CALL)
_INDIRECT_CALL = int(BranchType.INDIRECT_CALL)
_RETURN = int(BranchType.RETURN)

#: On-disk column order and fixed little-endian dtypes.
_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("indirect_idx", "<i8"),
    ("indirect_pcs", "<u8"),
    ("indirect_targets", "<u8"),
    ("cond_idx", "<i8"),
    ("cond_bits", "u1"),
    ("return_idx", "<i8"),
    ("return_preds", "<u8"),
    ("return_pred_valid", "u1"),
    ("return_ok", "u1"),
    ("pc_unique", "<u8"),
    ("pc_offsets", "<i8"),
    ("pc_order", "<i8"),
)


@dataclass
class DerivedPlane:
    """Precomputed, predictor-independent structure of one trace."""

    trace_name: str
    records: int
    ras_depth: int
    content_hash: str
    conditionals: int
    indirect_idx: np.ndarray
    indirect_pcs: np.ndarray
    indirect_targets: np.ndarray
    cond_idx: np.ndarray
    cond_bits: np.ndarray
    return_idx: np.ndarray
    return_preds: np.ndarray
    return_pred_valid: np.ndarray
    return_ok: np.ndarray
    pc_unique: np.ndarray
    pc_offsets: np.ndarray
    pc_order: np.ndarray

    def matches(self, trace: Trace, ras_depth: int) -> bool:
        """Cheap identity check before the plane substitutes for replay."""
        return (
            self.trace_name == trace.name
            and self.records == len(trace)
            and self.ras_depth == ras_depth
        )

    def return_predictions(self) -> List[Optional[int]]:
        """Per-return RAS predictions, in trace order (``None`` = empty RAS)."""
        preds = self.return_preds.tolist()
        valid = self.return_pred_valid.tolist()
        return [p if v else None for p, v in zip(preds, valid)]

    def conditional_outcomes(self) -> np.ndarray:
        """The taken/not-taken bitstream, unpacked to a bool array."""
        return np.unpackbits(self.cond_bits, count=self.conditionals).astype(bool)

    def pc_groups(self) -> Dict[int, np.ndarray]:
        """Ordinals into ``indirect_idx`` grouped per static indirect PC."""
        groups = {}
        for i, pc in enumerate(self.pc_unique.tolist()):
            lo = int(self.pc_offsets[i])
            hi = int(self.pc_offsets[i + 1])
            groups[pc] = self.pc_order[lo:hi]
        return groups


def compute_derived(
    trace: Trace,
    ras_depth: int = 32,
    content_hash: Optional[str] = None,
) -> DerivedPlane:
    """Build the derived plane for ``trace`` at ``ras_depth``."""
    if ras_depth < 1:
        raise ValueError(f"ras_depth must be >= 1, got {ras_depth}")
    types = trace.types
    indirect_idx = np.flatnonzero(trace.indirect_mask()).astype(np.int64)
    indirect_pcs = np.ascontiguousarray(trace.pcs[indirect_idx])
    indirect_targets = np.ascontiguousarray(trace.targets[indirect_idx])

    cond_idx = np.flatnonzero(types == _COND).astype(np.int64)
    cond_outcomes = trace.takens[cond_idx]
    cond_bits = np.packbits(cond_outcomes) if len(cond_idx) else np.empty(0, np.uint8)

    return_idx = np.flatnonzero(types == _RETURN).astype(np.int64)

    # RAS replay over the call/return subsequence only.  Semantics must
    # match ReturnAddressStack exactly: bounded depth, overflow drops the
    # oldest frame, underflow predicts None, pop on empty is a no-op.
    flow_mask = (
        (types == _DIRECT_CALL) | (types == _INDIRECT_CALL) | (types == _RETURN)
    )
    flow_idx = np.flatnonzero(flow_mask)
    flow_types = types[flow_idx].tolist()
    flow_pcs = trace.pcs[flow_idx].tolist()
    flow_targets = trace.targets[flow_idx].tolist()

    preds = np.zeros(len(return_idx), dtype=np.uint64)
    valid = np.zeros(len(return_idx), dtype=np.uint8)
    ok = np.zeros(len(return_idx), dtype=np.uint8)
    stack: List[int] = []
    position = 0
    for branch_type, pc, target in zip(flow_types, flow_pcs, flow_targets):
        if branch_type == _RETURN:
            if stack:
                prediction = stack[-1]
                preds[position] = prediction
                valid[position] = 1
                ok[position] = 1 if prediction == target else 0
                stack.pop()
            # else: prediction is None; never equal to an integer target.
            position += 1
        else:
            if len(stack) == ras_depth:
                stack.pop(0)
            stack.append(pc + 4)

    # CSR grouping of indirect ordinals by static PC.
    order = np.argsort(indirect_pcs, kind="stable").astype(np.int64)
    sorted_pcs = indirect_pcs[order]
    if len(sorted_pcs):
        pc_unique, starts = np.unique(sorted_pcs, return_index=True)
        pc_offsets = np.append(starts, len(sorted_pcs)).astype(np.int64)
    else:
        pc_unique = np.empty(0, dtype=np.uint64)
        pc_offsets = np.zeros(1, dtype=np.int64)

    if content_hash is None:
        content_hash = trace_content_hash(trace)
    return DerivedPlane(
        trace_name=trace.name,
        records=len(trace),
        ras_depth=ras_depth,
        content_hash=content_hash,
        conditionals=len(cond_idx),
        indirect_idx=indirect_idx,
        indirect_pcs=indirect_pcs,
        indirect_targets=indirect_targets,
        cond_idx=cond_idx,
        cond_bits=cond_bits,
        return_idx=return_idx,
        return_preds=preds,
        return_pred_valid=valid,
        return_ok=ok,
        pc_unique=np.ascontiguousarray(pc_unique, dtype=np.uint64),
        pc_offsets=pc_offsets,
        pc_order=order,
    )


def _pad_to(offset: int, alignment: int = _ALIGNMENT) -> int:
    remainder = offset % alignment
    return offset if remainder == 0 else offset + (alignment - remainder)


def derived_path_for(spill_path: Union[str, Path], ras_depth: int) -> Path:
    """Where the derived plane for ``spill_path`` at ``ras_depth`` lives."""
    spill_path = Path(spill_path)
    return spill_path.with_name(f"{spill_path.name}.d{ras_depth}.plane")


def write_derived(plane: DerivedPlane, path: Union[str, Path]) -> None:
    """Cache ``plane`` at ``path`` (atomic; raw aligned LE columns)."""
    path = Path(path)
    raw = {}
    for name, dtype in _COLUMNS:
        raw[name] = np.ascontiguousarray(
            getattr(plane, name), dtype=np.dtype(dtype)
        ).tobytes()

    table: List[dict] = []
    header_stub = {
        "version": 1,
        "trace_name": plane.trace_name,
        "records": plane.records,
        "ras_depth": plane.ras_depth,
        "content_hash": plane.content_hash,
        "conditionals": plane.conditionals,
        "columns": table,
    }
    prefix = len(MAGIC_DERIVED) + 4
    offsets = {name: 0 for name, _ in _COLUMNS}
    while True:
        table.clear()
        for name, dtype in _COLUMNS:
            table.append(
                {
                    "name": name,
                    "dtype": dtype,
                    "offset": offsets[name],
                    "bytes": len(raw[name]),
                }
            )
        encoded = json.dumps(header_stub, sort_keys=True).encode("utf-8")
        data_start = _pad_to(prefix + len(encoded))
        cursor = data_start
        new_offsets = {}
        for name, _ in _COLUMNS:
            cursor = _pad_to(cursor)
            new_offsets[name] = cursor
            cursor += len(raw[name])
        if new_offsets == offsets:
            break
        offsets = new_offsets

    # Serialize fully, then publish through atomic_write_bytes: each
    # writer stages into its own mkstemp sibling, so two processes
    # recomputing the same plane concurrently cannot truncate each
    # other's staging file — last rename wins with a complete file
    # either way.  (A fixed ".tmp" staging name raced exactly that way.)
    parts = [
        MAGIC_DERIVED,
        struct.pack("<I", len(encoded)),
        encoded,
        b"\x00" * (data_start - prefix - len(encoded)),
    ]
    cursor = data_start
    for name, _ in _COLUMNS:
        aligned = _pad_to(cursor)
        parts.append(b"\x00" * (aligned - cursor))
        parts.append(raw[name])
        cursor = aligned + len(raw[name])
    atomic_write_bytes(path, b"".join(parts))


def read_derived(path: Union[str, Path]) -> DerivedPlane:
    """Attach a cached derived plane (``np.memmap``; raises on damage)."""
    path = Path(path)
    with open(path, "rb") as handle:
        magic = handle.read(len(MAGIC_DERIVED))
        if magic != MAGIC_DERIVED:
            raise ValueError(f"{path} is not an RPDERIV1 derived-plane file")
        (header_len,) = struct.unpack("<I", handle.read(4))
        header = json.loads(handle.read(header_len).decode("utf-8"))
    arrays = {}
    for entry in header["columns"]:
        dtype = np.dtype(entry["dtype"])
        if entry["bytes"] % dtype.itemsize:
            raise ValueError(f"{path}: column {entry['name']} byte count misaligned")
        count = entry["bytes"] // dtype.itemsize
        if count:
            arrays[entry["name"]] = np.memmap(
                path, mode="r", dtype=dtype, offset=entry["offset"], shape=(count,)
            )
        else:
            arrays[entry["name"]] = np.empty(0, dtype=dtype)
    missing = {name for name, _ in _COLUMNS} - set(arrays)
    if missing:
        raise ValueError(f"{path}: missing derived columns {sorted(missing)}")
    return DerivedPlane(
        trace_name=header["trace_name"],
        records=int(header["records"]),
        ras_depth=int(header["ras_depth"]),
        content_hash=header["content_hash"],
        conditionals=int(header["conditionals"]),
        **{name: arrays[name] for name, _ in _COLUMNS},
    )


def load_or_compute_derived(
    trace: Trace,
    spill_path: Optional[Union[str, Path]] = None,
    ras_depth: int = 32,
    content_hash: Optional[str] = None,
) -> DerivedPlane:
    """The derived plane for ``trace``, via the on-disk cache when possible.

    With a ``spill_path``, a valid cached plane (matching trace name,
    record count, RAS depth, and content hash) is attached zero-copy;
    otherwise the plane is computed and written next to the spill for the
    next reader.  Damaged or stale cache files are silently recomputed.
    """
    if content_hash is None and spill_path is not None:
        content_hash = spilled_hash(spill_path)
    if content_hash is None:
        content_hash = trace_content_hash(trace)

    cache_path = (
        derived_path_for(spill_path, ras_depth) if spill_path is not None else None
    )
    if cache_path is not None and cache_path.exists():
        try:
            plane = read_derived(cache_path)
        except (OSError, ValueError, KeyError):
            plane = None
        if (
            plane is not None
            and plane.matches(trace, ras_depth)
            and plane.content_hash == content_hash
        ):
            return plane

    plane = compute_derived(trace, ras_depth, content_hash=content_hash)
    if cache_path is not None:
        write_derived(plane, cache_path)
    return plane


_derived_cache: "OrderedDict[Tuple[str, int, int, int], DerivedPlane]" = OrderedDict()
_DERIVED_CACHE_CAPACITY = 8


def cached_derived(
    spill_path: Union[str, Path], trace: Trace, ras_depth: int
) -> DerivedPlane:
    """Per-worker LRU front for :func:`load_or_compute_derived`.

    Keyed by the *spill's* ``(path, size, mtime_ns)`` plus the RAS depth,
    mirroring :class:`repro.trace.plane.TraceCache` — a rewritten spill
    invalidates its derived plane along with its mapping.
    """
    spill_path = Path(spill_path)
    stat = os.stat(spill_path)
    key = (str(spill_path), stat.st_size, stat.st_mtime_ns, ras_depth)
    cached = _derived_cache.get(key)
    if cached is not None:
        _derived_cache.move_to_end(key)
        return cached
    for stale in [k for k in _derived_cache if k[0] == key[0] and k[3] == ras_depth]:
        del _derived_cache[stale]
    plane = load_or_compute_derived(trace, spill_path, ras_depth)
    _derived_cache[key] = plane
    while len(_derived_cache) > _DERIVED_CACHE_CAPACITY:
        _derived_cache.popitem(last=False)
    return plane
