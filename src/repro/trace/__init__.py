"""CBP-style branch-trace infrastructure.

The paper evaluates predictors on branch traces from the Championship
Branch Prediction (CBP) infrastructure: a stream of branch records, each
carrying the branch PC, its type, its outcome, its target, and the number
of non-branch instructions since the previous branch.  This package
defines that record format, an in-memory/on-disk trace container, and the
per-trace statistics the paper's Figures 1, 6, and 7 are computed from.
"""

from repro.trace.derived import (
    DerivedPlane,
    cached_derived,
    compute_derived,
    derived_path_for,
    load_or_compute_derived,
    read_derived,
    write_derived,
)
from repro.trace.plane import (
    TraceCache,
    atomic_write_bytes,
    attach_trace,
    cached_trace,
    spilled_hash,
    trace_content_hash,
    write_trace_v2,
)
from repro.trace.ingest import (
    IngestError,
    detect_format,
    load_any_trace,
    read_champsim_trace,
    read_gem5_trace,
    write_champsim_trace,
    write_gem5_trace,
)
from repro.trace.record import BranchRecord, BranchType
from repro.trace.sampling import (
    SampledRegion,
    SamplingPlan,
    interval_features,
    kmedoids,
    representative_window,
    simpoint_plan,
    systematic_sample,
    window,
)
from repro.trace.source import (
    FileSource,
    MaterializedSource,
    SampledSource,
    SourceError,
    TraceSource,
    WorkloadSource,
    as_source,
)
from repro.trace.stats import TraceStats, compute_stats
from repro.trace.stream import Trace, read_trace, write_trace, write_trace_v1

__all__ = [
    "BranchRecord",
    "BranchType",
    "Trace",
    "read_trace",
    "write_trace",
    "write_trace_v1",
    "write_trace_v2",
    "atomic_write_bytes",
    "attach_trace",
    "cached_trace",
    "spilled_hash",
    "trace_content_hash",
    "TraceCache",
    "DerivedPlane",
    "compute_derived",
    "cached_derived",
    "derived_path_for",
    "load_or_compute_derived",
    "read_derived",
    "write_derived",
    "TraceStats",
    "compute_stats",
    "IngestError",
    "detect_format",
    "load_any_trace",
    "read_champsim_trace",
    "read_gem5_trace",
    "write_champsim_trace",
    "write_gem5_trace",
    "SampledRegion",
    "SamplingPlan",
    "interval_features",
    "kmedoids",
    "representative_window",
    "simpoint_plan",
    "systematic_sample",
    "window",
    "TraceSource",
    "MaterializedSource",
    "WorkloadSource",
    "FileSource",
    "SampledSource",
    "SourceError",
    "as_source",
]
