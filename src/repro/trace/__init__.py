"""CBP-style branch-trace infrastructure.

The paper evaluates predictors on branch traces from the Championship
Branch Prediction (CBP) infrastructure: a stream of branch records, each
carrying the branch PC, its type, its outcome, its target, and the number
of non-branch instructions since the previous branch.  This package
defines that record format, an in-memory/on-disk trace container, and the
per-trace statistics the paper's Figures 1, 6, and 7 are computed from.
"""

from repro.trace.record import BranchRecord, BranchType
from repro.trace.stats import TraceStats, compute_stats
from repro.trace.stream import Trace, read_trace, write_trace

__all__ = [
    "BranchRecord",
    "BranchType",
    "Trace",
    "read_trace",
    "write_trace",
    "TraceStats",
    "compute_stats",
]
