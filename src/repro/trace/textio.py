"""Text (CSV) trace interchange format.

The binary RPTRACE1 format (:mod:`repro.trace.stream`) is for caching;
this module adds a human-readable interchange format so users can
import branch traces produced by *other* tools (a Pin tool, a QEMU
plugin, a CBP-trace converter) and run this library's predictors on
them.

Format: one record per line, comma-separated::

    pc,type,taken,target,gap

with ``pc``/``target`` in hex (0x-prefixed or bare), ``type`` either
the integer BranchType value or its name (case-insensitive:
``conditional``, ``direct_jump``, ``direct_call``, ``indirect_jump``,
``indirect_call``, ``return``), ``taken`` as 0/1, and ``gap`` a decimal
instruction count.  Lines starting with ``#`` and blank lines are
ignored.  A ``# name: <trace name>`` header line names the trace.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

import numpy as np

from repro.trace.record import BranchType
from repro.trace.stream import Trace

_TYPE_NAMES = {bt.name.lower(): int(bt) for bt in BranchType}


def _parse_int(token: str, line_number: int, what: str) -> int:
    # pc/target are documented as hex whether or not they carry an "0x"
    # prefix; base 16 accepts both spellings (a bare "ff" used to fall
    # through to int(token, 0) and raise, and a bare "10" misparsed as
    # decimal ten).
    token = token.strip()
    try:
        return int(token, 16)
    except ValueError:
        raise ValueError(
            f"line {line_number}: bad {what} {token!r}"
        ) from None


def _parse_gap(token: str, line_number: int) -> int:
    # Gaps are decimal instruction counts, unlike the hex pc/target.
    token = token.strip()
    try:
        return int(token, 10)
    except ValueError:
        raise ValueError(
            f"line {line_number}: bad gap {token!r}"
        ) from None


def _parse_type(token: str, line_number: int) -> int:
    token = token.strip().lower()
    if token in _TYPE_NAMES:
        return _TYPE_NAMES[token]
    try:
        value = int(token)
        BranchType(value)  # validates
        return value
    except ValueError:
        raise ValueError(
            f"line {line_number}: unknown branch type {token!r}; expected "
            f"one of {sorted(_TYPE_NAMES)} or 0..5"
        ) from None


def read_text_trace(path: Union[str, Path], name: str = None) -> Trace:
    """Parse a CSV trace file into a :class:`Trace`."""
    path = Path(path)
    pcs: List[int] = []
    types: List[int] = []
    takens: List[bool] = []
    targets: List[int] = []
    gaps: List[int] = []
    trace_name = name or path.stem

    with open(path) as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                if line[1:].strip().lower().startswith("name:") and name is None:
                    trace_name = line.split(":", 1)[1].strip()
                continue
            fields = line.split(",")
            if len(fields) != 5:
                raise ValueError(
                    f"line {line_number}: expected 5 fields "
                    f"(pc,type,taken,target,gap), got {len(fields)}"
                )
            pc = _parse_int(fields[0], line_number, "pc")
            branch_type = _parse_type(fields[1], line_number)
            taken_token = fields[2].strip()
            if taken_token not in ("0", "1"):
                raise ValueError(
                    f"line {line_number}: taken must be 0 or 1, "
                    f"got {taken_token!r}"
                )
            taken = taken_token == "1"
            if branch_type != int(BranchType.CONDITIONAL) and not taken:
                raise ValueError(
                    f"line {line_number}: non-conditional branches must be "
                    f"taken"
                )
            target = _parse_int(fields[3], line_number, "target")
            gap = _parse_gap(fields[4], line_number)
            if gap < 0:
                raise ValueError(f"line {line_number}: negative gap {gap}")
            pcs.append(pc)
            types.append(branch_type)
            takens.append(taken)
            targets.append(target)
            gaps.append(gap)

    if not pcs:
        raise ValueError(f"{path} contains no records")
    return Trace(
        name=trace_name,
        pcs=np.array(pcs, dtype=np.uint64),
        types=np.array(types, dtype=np.uint8),
        takens=np.array(takens, dtype=bool),
        targets=np.array(targets, dtype=np.uint64),
        gaps=np.array(gaps, dtype=np.uint32),
    )


def write_text_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write a :class:`Trace` in the CSV interchange format."""
    path = Path(path)
    with open(path, "w") as handle:
        handle.write(f"# name: {trace.name}\n")
        handle.write("# pc,type,taken,target,gap\n")
        for record in trace.records():
            handle.write(
                f"{record.pc:#x},{record.branch_type.name.lower()},"
                f"{int(record.taken)},{record.target:#x},{record.inst_gap}\n"
            )
