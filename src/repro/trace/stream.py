"""The :class:`Trace` container and its binary serialization.

Traces are held in memory as parallel NumPy arrays (column-major) rather
than lists of record objects: the simulation engine iterates millions of
records, and attribute access on dataclasses dominates runtime otherwise.
Record-object views are still available for tests and tooling.

Two on-disk formats exist.  ``RPTRACE1`` (legacy, still readable) stores
the five columns via ``np.save``; ``RPTRACE2`` (the default spill format,
``repro.trace.plane``) stores raw little-endian column bytes at aligned
offsets so workers can attach them with ``np.memmap`` — zero-copy, shared
through the page cache.  :func:`read_trace` dispatches on the magic.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Iterable, Iterator, Sequence, Union

import numpy as np

from repro.trace.record import BranchRecord, BranchType

_MAGIC = b"RPTRACE1"


class Trace:
    """An immutable branch trace with column-oriented storage.

    Columns:
        pcs, targets: uint64 arrays.
        types: uint8 array of :class:`BranchType` values.
        takens: bool array.
        gaps: uint32 array of non-branch instruction gaps.
    """

    __slots__ = ("name", "pcs", "types", "takens", "targets", "gaps", "_scalars")

    def __init__(
        self,
        name: str,
        pcs: np.ndarray,
        types: np.ndarray,
        takens: np.ndarray,
        targets: np.ndarray,
        gaps: np.ndarray,
    ) -> None:
        length = len(pcs)
        for column, label in (
            (types, "types"),
            (takens, "takens"),
            (targets, "targets"),
            (gaps, "gaps"),
        ):
            if len(column) != length:
                raise ValueError(
                    f"column {label} has length {len(column)}, expected {length}"
                )
        self.name = name
        self.pcs = np.ascontiguousarray(pcs, dtype=np.uint64)
        self.types = np.ascontiguousarray(types, dtype=np.uint8)
        self.takens = np.ascontiguousarray(takens, dtype=bool)
        self.targets = np.ascontiguousarray(targets, dtype=np.uint64)
        self.gaps = np.ascontiguousarray(gaps, dtype=np.uint32)
        self._scalars = None

    @classmethod
    def from_records(cls, name: str, records: Sequence[BranchRecord]) -> "Trace":
        """Build a trace from record objects (convenient in tests)."""
        return cls(
            name=name,
            pcs=np.array([r.pc for r in records], dtype=np.uint64),
            types=np.array([int(r.branch_type) for r in records], dtype=np.uint8),
            takens=np.array([r.taken for r in records], dtype=bool),
            targets=np.array([r.target for r in records], dtype=np.uint64),
            gaps=np.array([r.inst_gap for r in records], dtype=np.uint32),
        )

    def __len__(self) -> int:
        return len(self.pcs)

    def __getitem__(self, index: int) -> BranchRecord:
        return BranchRecord(
            pc=int(self.pcs[index]),
            branch_type=BranchType(int(self.types[index])),
            taken=bool(self.takens[index]),
            target=int(self.targets[index]),
            inst_gap=int(self.gaps[index]),
        )

    def records(self) -> Iterator[BranchRecord]:
        """Iterate record objects (slow path; for tests and tooling)."""
        for index in range(len(self)):
            yield self[index]

    def total_instructions(self) -> int:
        """All simulated instructions: branches plus the gaps between them."""
        return int(self.gaps.sum()) + len(self)

    def count_of(self, branch_type: BranchType) -> int:
        """Dynamic executions of ``branch_type`` in this trace."""
        return int(np.count_nonzero(self.types == int(branch_type)))

    def scalar_columns(self):
        """``(pcs, types, takens, targets)`` as plain Python lists, memoized.

        The per-branch interpreter loop is dominated by NumPy scalar boxing
        unless the columns are extracted up front; memoizing the extraction
        lets every predictor fused onto this trace share one copy.
        """
        cached = self._scalars
        if cached is None:
            cached = (
                self.pcs.tolist(),
                self.types.tolist(),
                self.takens.tolist(),
                self.targets.tolist(),
            )
            self._scalars = cached
        return cached

    def indirect_mask(self) -> np.ndarray:
        """Boolean mask of records the indirect predictor must handle."""
        return (self.types == int(BranchType.INDIRECT_JUMP)) | (
            self.types == int(BranchType.INDIRECT_CALL)
        )

    def head(self, n: int) -> "Trace":
        """A new trace containing the first ``n`` records."""
        return Trace(
            name=self.name,
            pcs=self.pcs[:n],
            types=self.types[:n],
            takens=self.takens[:n],
            targets=self.targets[:n],
            gaps=self.gaps[:n],
        )

    def __repr__(self) -> str:
        return (
            f"Trace(name={self.name!r}, records={len(self)}, "
            f"instructions={self.total_instructions()})"
        )


def write_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Serialize ``trace`` to ``path`` in the current spill format.

    Writes RPTRACE2 (zero-copy attachable; see ``repro.trace.plane``).
    :func:`write_trace_v1` keeps the legacy format reachable for tests and
    interop; :func:`read_trace` reads both.
    """
    from repro.trace.plane import write_trace_v2

    write_trace_v2(trace, path)


def write_trace_v1(trace: Trace, path: Union[str, Path]) -> None:
    """Serialize ``trace`` to ``path`` in the legacy RPTRACE1 format."""
    path = Path(path)
    header = json.dumps({"name": trace.name, "records": len(trace)}).encode()
    with open(path, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(struct.pack("<I", len(header)))
        handle.write(header)
        for column in (trace.pcs, trace.types, trace.takens, trace.targets, trace.gaps):
            np.save(handle, column, allow_pickle=False)


def read_trace(path: Union[str, Path]) -> Trace:
    """Load a trace written by :func:`write_trace` (RPTRACE2 or RPTRACE1)."""
    path = Path(path)
    with open(path, "rb") as handle:
        magic = handle.read(len(_MAGIC))
        if magic == b"RPTRACE2":
            from repro.trace.plane import attach_trace

            return attach_trace(path)
        if magic != _MAGIC:
            raise ValueError(f"{path} is not an RPTRACE1/RPTRACE2 trace file")
        (header_len,) = struct.unpack("<I", handle.read(4))
        header = json.loads(handle.read(header_len).decode())
        pcs = np.load(handle, allow_pickle=False)
        types = np.load(handle, allow_pickle=False)
        takens = np.load(handle, allow_pickle=False)
        targets = np.load(handle, allow_pickle=False)
        gaps = np.load(handle, allow_pickle=False)
    return Trace(header["name"], pcs, types, takens, targets, gaps)


def concatenate(name: str, traces: Iterable[Trace]) -> Trace:
    """Concatenate traces end-to-end into one trace named ``name``."""
    traces = list(traces)
    if not traces:
        raise ValueError("cannot concatenate zero traces")
    return Trace(
        name=name,
        pcs=np.concatenate([t.pcs for t in traces]),
        types=np.concatenate([t.types for t in traces]),
        takens=np.concatenate([t.takens for t in traces]),
        targets=np.concatenate([t.targets for t in traces]),
        gaps=np.concatenate([t.gaps for t in traces]),
    )
