"""Trace provenance: where traces come from, behind one abstraction.

The paper's SPEC traces are simpoints — representative windows cut from
much longer executions (§4.2) — yet everything downstream of a trace
(campaign planning, distributed shipping, search scoring, serving) only
needs three things from it: a stable **name**, a **content hash** that
identifies its bytes, and the ability to **materialize** it into the
RPTRACE2 spill format workers attach zero-copy.  :class:`TraceSource`
captures exactly that contract, so synthetic generators, imported
external traces, and sampled slices of long traces all flow through the
same planning/spill/ship machinery:

* :class:`MaterializedSource` — an in-memory :class:`Trace` (what every
  existing call site passes); wrapping is free and behavior-preserving.
* :class:`WorkloadSource` — a :class:`~repro.workloads.base.WorkloadSpec`
  (or any object with ``.name`` and ``.generate()``), generated lazily
  and memoized; a campaign plan over workload sources spills byte-for-
  byte what the eager ``spec.generate()`` path spilled.
* :class:`FileSource` — an on-disk trace in any readable format
  (RPTRACE1/2, interchange CSV, or an ingested external format — see
  :mod:`repro.trace.ingest`).  For RPTRACE2 files the name, record
  count, and content hash come straight from the header, so identity
  questions never decode the columns.
* :class:`SampledSource` — any source wrapped with SimPoint-style
  region selection (:func:`repro.trace.sampling.simpoint_plan`); its
  materialized trace is the concatenation of the plan's representative
  windows.  For calibrated MPKI estimates, feed its ``plan`` to
  :func:`repro.sim.engine.simulate_sampled` instead of simulating the
  concatenation directly.

:func:`as_source` coerces any of the accepted inputs (``Trace``,
``WorkloadSpec``, an existing source) so call sites stay polymorphic.
"""

from __future__ import annotations

import abc
from pathlib import Path
from typing import Optional, Union

from repro.trace.plane import (
    read_header_v2,
    spilled_hash,
    trace_content_hash,
    write_trace_v2,
)
from repro.trace.stream import Trace


class SourceError(ValueError):
    """A trace source could not be resolved or materialized."""


class TraceSource(abc.ABC):
    """One provenance of a branch trace.

    Subclasses implement :meth:`_materialize`; the base class memoizes
    the materialized trace and derives identity (``content_hash``),
    size (``__len__``), and spilling from it.  Subclasses with cheaper
    identity metadata (e.g. an RPTRACE2 header) override the derived
    methods to stay lazy.
    """

    _trace: Optional[Trace] = None
    _hash: Optional[str] = None

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """The trace name (the identity campaigns key cells on)."""

    @abc.abstractmethod
    def _materialize(self) -> Trace:
        """Produce the trace (called at most once; memoized)."""

    def trace(self) -> Trace:
        """The materialized trace, memoized across calls."""
        if self._trace is None:
            # Memoize before the name check: sources that derive their
            # lazy name *from* the trace (e.g. a headerless FileSource)
            # resolve ``self.name`` through this memo.
            self._trace = trace = self._materialize()
            if trace.name != self.name:
                self._trace = None
                raise SourceError(
                    f"source {self.name!r} materialized a trace named "
                    f"{trace.name!r}; names are cell identity and must match"
                )
        return self._trace

    def content_hash(self) -> str:
        """SHA-256 identity of the trace (name + canonical column bytes).

        Matches :func:`repro.trace.plane.trace_content_hash` of the
        materialized trace, i.e. the hash recorded in RPTRACE2 spill
        headers and used by the distributed trace stores.
        """
        if self._hash is None:
            self._hash = trace_content_hash(self.trace())
        return self._hash

    def __len__(self) -> int:
        """Branch records in the trace."""
        return len(self.trace())

    def release(self) -> None:
        """Drop the memoized trace (sources stay re-materializable)."""
        self._trace = None

    def spill(self, path: Union[str, Path]) -> bool:
        """Materialize into an RPTRACE2 spill at ``path``, at most once.

        Keyed on the source content hash: an existing spill whose header
        hash matches is left byte-untouched (so worker ``TraceCache``
        mappings and derived planes stay valid), exactly like
        :func:`repro.exec.plan.spill_trace`.  Returns ``True`` if the
        file was (re)written.
        """
        path = Path(path)
        content_hash = self.content_hash()
        if path.exists() and spilled_hash(path) == content_hash:
            return False
        write_trace_v2(self.trace(), path, content_hash=content_hash)
        return True

    def __repr__(self) -> str:
        state = "materialized" if self._trace is not None else "lazy"
        return f"{type(self).__name__}(name={self.name!r}, {state})"


class MaterializedSource(TraceSource):
    """A source wrapping an already-in-memory :class:`Trace`."""

    def __init__(self, trace: Trace) -> None:
        self._trace = trace

    @property
    def name(self) -> str:
        return self._trace.name

    def _materialize(self) -> Trace:  # pragma: no cover - trace is eager
        return self._trace

    def release(self) -> None:
        """No-op: the wrapped trace *is* the source."""


class WorkloadSource(TraceSource):
    """A synthetic workload, generated lazily.

    Wraps anything with a ``name`` attribute and a ``generate()`` method
    returning a :class:`Trace` — a :class:`~repro.workloads.base.
    WorkloadSpec`, a :class:`~repro.workloads.suite.SuiteTrace`, or a
    test double.  Generation happens at most once, on first use;
    everything downstream (spill bytes, plans, journals) is identical to
    passing ``spec.generate()`` eagerly.
    """

    def __init__(self, spec) -> None:
        if not hasattr(spec, "generate") or not hasattr(spec, "name"):
            raise SourceError(
                f"{type(spec).__name__} is not a workload spec "
                "(needs .name and .generate())"
            )
        self.spec = spec

    @property
    def name(self) -> str:
        return self.spec.name

    def _materialize(self) -> Trace:
        return self.spec.generate()


class FileSource(TraceSource):
    """An on-disk trace in any readable format.

    Formats: RPTRACE2/RPTRACE1 spills, the interchange CSV, and the
    ingestion formats of :mod:`repro.trace.ingest` (ChampSim-style,
    gem5-style) — dispatched by :func:`repro.trace.ingest.detect_format`
    unless ``format`` pins one.  For RPTRACE2 files, ``name``,
    ``len()``, and ``content_hash()`` are answered from the JSON header
    without decoding any column bytes.
    """

    def __init__(
        self,
        path: Union[str, Path],
        format: Optional[str] = None,
        name: Optional[str] = None,
    ) -> None:
        self.path = Path(path)
        if not self.path.exists():
            raise SourceError(f"trace file {self.path} does not exist")
        self.format = format
        self._name = name
        self._records: Optional[int] = None
        if name is None or format is None:
            header = read_header_v2(self.path)
            if header is not None:
                if name is None:
                    self._name = str(header["name"])
                self._records = int(header["records"])
                recorded = header.get("content_hash")
                # Only trust the header hash when the caller keeps the
                # recorded name — renaming changes the content hash.
                if name is None and isinstance(recorded, str):
                    self._hash = recorded

    @property
    def name(self) -> str:
        if self._name is None:
            self._name = self.trace().name
        return self._name

    def __len__(self) -> int:
        if self._records is None:
            self._records = len(self.trace())
        return self._records

    def _materialize(self) -> Trace:
        from repro.trace.ingest import load_any_trace

        return load_any_trace(self.path, format=self.format, name=self._name)


class SampledSource(TraceSource):
    """SimPoint-style sampled view of another source.

    Region selection follows :func:`repro.trace.sampling.simpoint_plan`:
    the base trace is cut into fixed-size intervals, each interval is
    summarized as a branch-mix feature vector, the intervals are
    clustered with k-medoids, and one representative (medoid) interval
    per cluster is kept, weighted by the instruction share of its
    cluster.

    The materialized trace is the concatenation of the representative
    windows (warm-up prefixes excluded), named
    ``{base}~s{regions}x{interval}`` — a cheap stand-in usable anywhere
    a trace is.  Direct simulation of that concatenation pays cold-start
    effects at every window seam and weighs windows by length, not by
    cluster share; for calibrated full-trace MPKI estimates use
    :func:`repro.sim.engine.simulate_sampled` with this source's
    :meth:`plan` (per-region warm-up, cluster-weighted combination).
    """

    def __init__(
        self,
        base: Union[Trace, TraceSource],
        interval_records: int = 5000,
        regions: int = 4,
        warmup_intervals: int = 1,
    ) -> None:
        if interval_records < 1:
            raise SourceError(
                f"interval_records must be >= 1, got {interval_records}"
            )
        if regions < 1:
            raise SourceError(f"regions must be >= 1, got {regions}")
        if warmup_intervals < 0:
            raise SourceError(
                f"warmup_intervals must be >= 0, got {warmup_intervals}"
            )
        self.base = as_source(base)
        self.interval_records = interval_records
        self.regions = regions
        self.warmup_intervals = warmup_intervals
        self._plan = None

    @property
    def name(self) -> str:
        return (
            f"{self.base.name}~s{self.regions}x{self.interval_records}"
        )

    def plan(self):
        """The :class:`~repro.trace.sampling.SamplingPlan`, memoized."""
        if self._plan is None:
            from repro.trace.sampling import simpoint_plan

            self._plan = simpoint_plan(
                self.base.trace(),
                self.interval_records,
                max_regions=self.regions,
                warmup_intervals=self.warmup_intervals,
            )
        return self._plan

    def _materialize(self) -> Trace:
        from repro.trace.sampling import window
        from repro.trace.stream import concatenate

        base = self.base.trace()
        plan = self.plan()
        windows = [
            window(base, region.start, region.length)
            for region in plan.regions
        ]
        sampled = concatenate(self.name, windows)
        return sampled


def as_source(obj: Union[Trace, TraceSource, object]) -> TraceSource:
    """Coerce ``obj`` into a :class:`TraceSource`.

    Accepts an existing source (returned unchanged), an in-memory
    :class:`Trace`, or a workload spec (``.name`` + ``.generate()``).
    """
    if isinstance(obj, TraceSource):
        return obj
    if isinstance(obj, Trace):
        return MaterializedSource(obj)
    if hasattr(obj, "generate") and hasattr(obj, "name"):
        return WorkloadSource(obj)
    raise SourceError(
        f"cannot interpret {type(obj).__name__} as a trace source "
        "(expected Trace, TraceSource, or a workload spec)"
    )


__all__ = [
    "FileSource",
    "MaterializedSource",
    "SampledSource",
    "SourceError",
    "TraceSource",
    "WorkloadSource",
    "as_source",
]
