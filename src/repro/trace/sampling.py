"""Trace sampling: simpoint-style windows over long traces.

The paper's SPEC traces are simpoints — representative one-billion-
instruction windows chosen from much longer executions (§4.2).  When a
user imports a long real trace (:mod:`repro.trace.textio`), simulating
all of it may be impractical in Python; these utilities extract
windows the way the simpoint methodology does at trace granularity:

* :func:`window` — one contiguous record window;
* :func:`systematic_sample` — every k-th window, concatenated (the
  cheap stand-in for clustering-based simpoint selection);
* :func:`representative_window` — the window whose branch-type mix is
  closest (L1 distance) to the whole trace's, a light-weight analogue
  of picking the phase nearest the centroid.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.trace.record import BranchType
from repro.trace.stream import Trace, concatenate


def window(trace: Trace, start: int, length: int) -> Trace:
    """Records ``[start, start + length)`` as a standalone trace."""
    if start < 0 or length < 1:
        raise ValueError(f"bad window ({start}, {length})")
    if start >= len(trace):
        raise ValueError(
            f"window start {start} beyond trace length {len(trace)}"
        )
    stop = min(start + length, len(trace))
    return Trace(
        name=f"{trace.name}[{start}:{stop}]",
        pcs=trace.pcs[start:stop],
        types=trace.types[start:stop],
        takens=trace.takens[start:stop],
        targets=trace.targets[start:stop],
        gaps=trace.gaps[start:stop],
    )


def systematic_sample(
    trace: Trace, window_records: int, num_windows: int
) -> Trace:
    """Concatenate ``num_windows`` evenly-spaced windows of the trace."""
    if window_records < 1 or num_windows < 1:
        raise ValueError("window_records and num_windows must be >= 1")
    if window_records * num_windows >= len(trace):
        return trace
    stride = len(trace) // num_windows
    windows: List[Trace] = [
        window(trace, index * stride, window_records)
        for index in range(num_windows)
    ]
    sampled = concatenate(f"{trace.name}[sampled]", windows)
    return sampled


def _type_mix(trace: Trace) -> np.ndarray:
    counts = np.array(
        [trace.count_of(bt) for bt in BranchType], dtype=float
    )
    total = counts.sum()
    return counts / total if total else counts


def representative_window(trace: Trace, window_records: int) -> Trace:
    """The window whose branch-type mix best matches the whole trace.

    Scans non-overlapping windows and returns the one minimizing the L1
    distance between its branch-type distribution and the full trace's —
    a single-feature analogue of simpoint's basic-block-vector
    clustering.
    """
    if window_records < 1:
        raise ValueError(f"window_records must be >= 1, got {window_records}")
    if window_records >= len(trace):
        return trace
    reference = _type_mix(trace)
    best_start = 0
    best_distance = float("inf")
    for start in range(0, len(trace) - window_records + 1, window_records):
        candidate = window(trace, start, window_records)
        distance = float(np.abs(_type_mix(candidate) - reference).sum())
        if distance < best_distance:
            best_distance = distance
            best_start = start
    return window(trace, best_start, window_records)
