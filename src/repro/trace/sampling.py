"""Trace sampling: SimPoint-style region selection over long traces.

The paper's SPEC traces are simpoints — representative one-billion-
instruction windows chosen from much longer executions (§4.2).  When a
user imports a long real trace (:mod:`repro.trace.ingest`), simulating
all of it is impractical in Python; this module reproduces the SimPoint
methodology at branch-trace granularity:

* :func:`interval_features` — cut the trace into fixed-size intervals
  and summarize each as a feature vector (branch-type mix, conditional
  taken rate, and a hashed PC profile — the trace-level analogue of
  SimPoint's basic-block vectors);
* :func:`kmedoids` — deterministic k-medoids clustering (greedy
  farthest-first seeding from the 1-medoid optimum, then alternating
  assignment/medoid-update sweeps) over those vectors;
* :func:`simpoint_plan` — the full pipeline: one representative
  (medoid) interval per cluster, each weighted by its cluster's share
  of full-trace instructions and prefixed by a warm-up span, packaged
  as a :class:`SamplingPlan` that
  :func:`repro.sim.engine.simulate_sampled` executes.

The pre-existing light-weight helpers remain:

* :func:`window` — one contiguous record window;
* :func:`systematic_sample` — every k-th window, concatenated;
* :func:`representative_window` — the single window whose branch-type
  mix is closest (L1) to the whole trace's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.trace.record import BranchType
from repro.trace.stream import Trace, concatenate

#: Buckets in the hashed-PC profile component of interval features.
PC_PROFILE_BUCKETS = 16

#: Fibonacci-hash multiplier (2^64 / phi) for PC bucketing.
_PC_HASH_MULTIPLIER = np.uint64(11400714819323198485)


def window(trace: Trace, start: int, length: int) -> Trace:
    """Records ``[start, start + length)`` as a standalone trace."""
    if start < 0 or length < 1:
        raise ValueError(f"bad window ({start}, {length})")
    if start >= len(trace):
        raise ValueError(
            f"window start {start} beyond trace length {len(trace)}"
        )
    stop = min(start + length, len(trace))
    return Trace(
        name=f"{trace.name}[{start}:{stop}]",
        pcs=trace.pcs[start:stop],
        types=trace.types[start:stop],
        takens=trace.takens[start:stop],
        targets=trace.targets[start:stop],
        gaps=trace.gaps[start:stop],
    )


def systematic_sample(
    trace: Trace, window_records: int, num_windows: int
) -> Trace:
    """Concatenate ``num_windows`` evenly-spaced windows of the trace."""
    if window_records < 1 or num_windows < 1:
        raise ValueError("window_records and num_windows must be >= 1")
    if window_records * num_windows >= len(trace):
        return trace
    stride = len(trace) // num_windows
    windows: List[Trace] = [
        window(trace, index * stride, window_records)
        for index in range(num_windows)
    ]
    sampled = concatenate(f"{trace.name}[sampled]", windows)
    return sampled


def _type_mix(trace: Trace) -> np.ndarray:
    counts = np.array(
        [trace.count_of(bt) for bt in BranchType], dtype=float
    )
    total = counts.sum()
    return counts / total if total else counts


def representative_window(trace: Trace, window_records: int) -> Trace:
    """The window whose branch-type mix best matches the whole trace.

    Scans non-overlapping windows and returns the one minimizing the L1
    distance between its branch-type distribution and the full trace's —
    a single-feature analogue of simpoint's basic-block-vector
    clustering.
    """
    if window_records < 1:
        raise ValueError(f"window_records must be >= 1, got {window_records}")
    if window_records >= len(trace):
        return trace
    reference = _type_mix(trace)
    best_start = 0
    best_distance = float("inf")
    for start in range(0, len(trace) - window_records + 1, window_records):
        candidate = window(trace, start, window_records)
        distance = float(np.abs(_type_mix(candidate) - reference).sum())
        if distance < best_distance:
            best_distance = distance
            best_start = start
    return window(trace, best_start, window_records)


# -- SimPoint-style region selection ----------------------------------


@dataclass(frozen=True)
class SampledRegion:
    """One representative interval of a sampling plan."""

    #: First record of the measured window.
    start: int
    #: Records in the measured window.
    length: int
    #: Records replayed *before* ``start`` to warm predictor state
    #: (trained but not tallied; clamped to the trace head).
    warmup: int
    #: This region's cluster's share of full-trace instructions; the
    #: plan's weights sum to 1.
    weight: float


@dataclass(frozen=True)
class SamplingPlan:
    """Which regions of a trace to simulate, and how to weigh them.

    Produced by :func:`simpoint_plan`; executed by
    :func:`repro.sim.engine.simulate_sampled`, which estimates the
    full trace's MPKI as the weight-combined MPKI of the measured
    windows.
    """

    trace_name: str
    #: Records in the full trace the plan was cut from.
    records: int
    interval_records: int
    #: Intervals the trace was cut into (the last may be short).
    num_intervals: int
    regions: Tuple[SampledRegion, ...]

    @property
    def replayed_records(self) -> int:
        """Records actually simulated (warm-up + measured windows)."""
        return sum(r.warmup + r.length for r in self.regions)

    @property
    def measured_records(self) -> int:
        """Records whose predictions are tallied."""
        return sum(r.length for r in self.regions)


def _interval_bounds(records: int, interval_records: int) -> List[Tuple[int, int]]:
    """``(start, length)`` per interval; the tail keeps its short length."""
    bounds = []
    start = 0
    while start < records:
        bounds.append((start, min(interval_records, records - start)))
        start += interval_records
    return bounds


def interval_features(trace: Trace, interval_records: int) -> np.ndarray:
    """Per-interval feature matrix (num_intervals × features).

    Each row summarizes one fixed-size interval with components that are
    all fractions in [0, 1], so L1 distances weigh them comparably:

    * 6 branch-type shares (the mix :func:`representative_window` uses);
    * the taken rate of the interval's conditionals;
    * a :data:`PC_PROFILE_BUCKETS`-bucket profile of Fibonacci-hashed
      branch PCs — the trace-granularity stand-in for SimPoint's
      basic-block vectors, separating phases that share a branch mix
      but execute different code.
    """
    if interval_records < 1:
        raise ValueError(
            f"interval_records must be >= 1, got {interval_records}"
        )
    bounds = _interval_bounds(len(trace), interval_records)
    num_types = len(BranchType)
    features = np.zeros(
        (len(bounds), num_types + 1 + PC_PROFILE_BUCKETS), dtype=np.float64
    )
    hashed = (
        (trace.pcs * _PC_HASH_MULTIPLIER) >> np.uint64(64 - 4)
    ).astype(np.intp)
    cond = trace.types == np.uint8(int(BranchType.CONDITIONAL))
    for row, (start, length) in enumerate(bounds):
        stop = start + length
        types = trace.types[start:stop]
        counts = np.bincount(types, minlength=num_types)[:num_types]
        features[row, :num_types] = counts / length
        cond_here = cond[start:stop]
        cond_count = int(np.count_nonzero(cond_here))
        if cond_count:
            taken = int(np.count_nonzero(trace.takens[start:stop] & cond_here))
            features[row, num_types] = taken / cond_count
        profile = np.bincount(
            hashed[start:stop], minlength=PC_PROFILE_BUCKETS
        )[:PC_PROFILE_BUCKETS]
        features[row, num_types + 1:] = profile / length
    return features


def kmedoids(
    features: np.ndarray,
    k: int,
    weights: Optional[np.ndarray] = None,
    max_iterations: int = 32,
) -> Tuple[List[int], np.ndarray]:
    """Deterministic k-medoids over L1 distances.

    Seeding is greedy: the first medoid is the 1-medoid optimum (the
    point minimizing total weighted distance), each further medoid the
    point farthest from its nearest existing medoid.  Then alternate
    assignment and per-cluster medoid updates until stable.  No RNG —
    identical inputs always yield identical plans, which campaign
    journals and resume paths rely on.

    Returns ``(medoid_indices, assignment)`` where ``assignment[i]`` is
    the position *within the medoid list* of point ``i``'s cluster.
    """
    points = len(features)
    if points == 0:
        raise ValueError("kmedoids needs at least one point")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    k = min(k, points)
    if weights is None:
        weights = np.ones(points, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (points,):
        raise ValueError(
            f"weights shape {weights.shape} does not match {points} points"
        )
    # Full pairwise L1 matrix: intervals number in the hundreds, so the
    # O(n^2 · d) cost is trivial next to simulating even one interval.
    distances = np.abs(
        features[:, None, :] - features[None, :, :]
    ).sum(axis=2)

    medoids = [int(np.argmin(distances @ weights))]
    while len(medoids) < k:
        nearest = distances[:, medoids].min(axis=1)
        candidate = int(np.argmax(nearest))
        if nearest[candidate] == 0.0:
            break  # every point coincides with a medoid; k was too big
        medoids.append(candidate)

    for _ in range(max_iterations):
        assignment = np.argmin(distances[:, medoids], axis=1)
        updated = []
        for slot in range(len(medoids)):
            members = np.flatnonzero(assignment == slot)
            if len(members) == 0:  # pragma: no cover - defensive
                updated.append(medoids[slot])
                continue
            within = distances[np.ix_(members, members)] @ weights[members]
            updated.append(int(members[int(np.argmin(within))]))
        if updated == medoids:
            break
        medoids = updated
    assignment = np.argmin(distances[:, medoids], axis=1)
    return medoids, assignment


def simpoint_plan(
    trace: Trace,
    interval_records: int,
    max_regions: int = 4,
    warmup_intervals: int = 1,
) -> SamplingPlan:
    """Select representative regions of ``trace``, SimPoint style.

    The trace is cut into ``interval_records``-sized intervals, each
    summarized by :func:`interval_features` and weighted by its
    instruction count; :func:`kmedoids` picks at most ``max_regions``
    medoid intervals, and each becomes a :class:`SampledRegion` whose
    weight is its cluster's share of full-trace instructions and whose
    warm-up is ``warmup_intervals`` preceding intervals (clamped at the
    trace head).  Regions come back sorted by start record.

    A trace no longer than one interval degenerates to a single
    full-coverage region with weight 1 and no warm-up.
    """
    if warmup_intervals < 0:
        raise ValueError(
            f"warmup_intervals must be >= 0, got {warmup_intervals}"
        )
    if max_regions < 1:
        raise ValueError(f"max_regions must be >= 1, got {max_regions}")
    records = len(trace)
    if records == 0:
        raise ValueError("cannot sample an empty trace")
    if interval_records >= records:
        return SamplingPlan(
            trace_name=trace.name,
            records=records,
            interval_records=interval_records,
            num_intervals=1,
            regions=(
                SampledRegion(start=0, length=records, warmup=0, weight=1.0),
            ),
        )
    bounds = _interval_bounds(records, interval_records)
    features = interval_features(trace, interval_records)
    # Instruction weight per interval: gaps plus the branches themselves.
    instructions = np.array(
        [
            float(trace.gaps[start:start + length].sum()) + length
            for start, length in bounds
        ],
        dtype=np.float64,
    )
    medoids, assignment = kmedoids(
        features, max_regions, weights=instructions
    )
    total_instructions = float(instructions.sum())
    regions = []
    for slot, medoid in enumerate(medoids):
        start, length = bounds[medoid]
        cluster_instructions = float(
            instructions[assignment == slot].sum()
        )
        warmup = min(start, warmup_intervals * interval_records)
        regions.append(
            SampledRegion(
                start=start,
                length=length,
                warmup=warmup,
                weight=cluster_instructions / total_instructions,
            )
        )
    regions.sort(key=lambda region: region.start)
    return SamplingPlan(
        trace_name=trace.name,
        records=records,
        interval_records=interval_records,
        num_intervals=len(bounds),
        regions=tuple(regions),
    )
