"""Ingestion adapters: external branch-trace formats → :class:`Trace`.

The 88-workload suite is synthetic; real workloads (whose branch
predictability differs — see PAPERS.md) arrive as trace files produced
by *other* tools.  This module converts two common textual shapes into
the repository's canonical :class:`~repro.trace.stream.Trace`, building
on the interchange conventions of :mod:`repro.trace.textio`:

**ChampSim/CBP-style** (``format="champsim"``) — one branch per line,
whitespace-separated, as emitted by ChampSim branch tracers and CBP
trace converters::

    <pc> <target> <taken> <type> [gap]

with ``pc``/``target`` in hex (bare or ``0x``-prefixed), ``taken`` as
``0``/``1`` or ``N``/``T``, ``type`` a ChampSim branch class
(``BRANCH_CONDITIONAL``, ``BRANCH_DIRECT_JUMP``, ``BRANCH_INDIRECT``,
``BRANCH_DIRECT_CALL``, ``BRANCH_INDIRECT_CALL``, ``BRANCH_RETURN`` —
case-insensitive, the ``BRANCH_`` prefix optional, this library's own
type names also accepted), and ``gap`` an optional decimal count of
non-branch instructions since the previous branch (default 0).

**gem5-style** (``format="gem5"``) — ``key=value`` records in gem5's
debug-trace line shape, as produced by a ``--debug-flags=Branch``-style
dumper; lines without a ``pc=`` token (other debug output, stats
noise) are skipped rather than rejected::

    <tick>: <object>: ... pc=<hex> target=<hex> taken=<0|1> type=<class> [icount=<n>]

``type`` accepts gem5 control-flavor names (``CondCtrl``,
``UncondDirectCtrl``, ``UncondIndirectCtrl``, ``CallDirectCtrl``,
``CallIndirectCtrl``, ``ReturnCtrl`` and common shorthands).  When
``icount=`` carries a cumulative instruction count, per-record gaps are
derived from its deltas; an explicit ``gap=`` wins.

Both adapters honour ``# name: <trace name>`` header comments, validate
as :mod:`repro.trace.textio` does (non-conditional branches must be
taken, gaps non-negative), and report errors with line numbers.
:func:`detect_format` sniffs a file (magic bytes, extension, then first
data line) so CLI paths can ingest anything readable;
:func:`load_any_trace` is the one-call loader behind
:class:`~repro.trace.source.FileSource`, ``repro import``, and
``repro trace info``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.trace.record import BranchType
from repro.trace.stream import Trace

#: Formats :func:`load_any_trace` understands.
FORMATS = ("rptrace", "csv", "champsim", "gem5")

_CHAMPSIM_TYPES: Dict[str, int] = {
    "conditional": int(BranchType.CONDITIONAL),
    "direct_jump": int(BranchType.DIRECT_JUMP),
    "indirect": int(BranchType.INDIRECT_JUMP),
    "indirect_jump": int(BranchType.INDIRECT_JUMP),
    "direct_call": int(BranchType.DIRECT_CALL),
    "indirect_call": int(BranchType.INDIRECT_CALL),
    "return": int(BranchType.RETURN),
}

_GEM5_TYPES: Dict[str, int] = {
    "condctrl": int(BranchType.CONDITIONAL),
    "cond": int(BranchType.CONDITIONAL),
    "unconddirectctrl": int(BranchType.DIRECT_JUMP),
    "directctrl": int(BranchType.DIRECT_JUMP),
    "direct": int(BranchType.DIRECT_JUMP),
    "uncondindirectctrl": int(BranchType.INDIRECT_JUMP),
    "indirectctrl": int(BranchType.INDIRECT_JUMP),
    "indirect": int(BranchType.INDIRECT_JUMP),
    "calldirectctrl": int(BranchType.DIRECT_CALL),
    "directcall": int(BranchType.DIRECT_CALL),
    "call": int(BranchType.DIRECT_CALL),
    "callindirectctrl": int(BranchType.INDIRECT_CALL),
    "indirectcall": int(BranchType.INDIRECT_CALL),
    "returnctrl": int(BranchType.RETURN),
    "return": int(BranchType.RETURN),
}

#: Canonical ChampSim class name per BranchType (for the writer).
_CHAMPSIM_NAMES = {
    int(BranchType.CONDITIONAL): "BRANCH_CONDITIONAL",
    int(BranchType.DIRECT_JUMP): "BRANCH_DIRECT_JUMP",
    int(BranchType.DIRECT_CALL): "BRANCH_DIRECT_CALL",
    int(BranchType.INDIRECT_JUMP): "BRANCH_INDIRECT",
    int(BranchType.INDIRECT_CALL): "BRANCH_INDIRECT_CALL",
    int(BranchType.RETURN): "BRANCH_RETURN",
}

_GEM5_NAMES = {
    int(BranchType.CONDITIONAL): "CondCtrl",
    int(BranchType.DIRECT_JUMP): "UncondDirectCtrl",
    int(BranchType.DIRECT_CALL): "CallDirectCtrl",
    int(BranchType.INDIRECT_JUMP): "UncondIndirectCtrl",
    int(BranchType.INDIRECT_CALL): "CallIndirectCtrl",
    int(BranchType.RETURN): "ReturnCtrl",
}


class IngestError(ValueError):
    """An external trace file could not be converted."""


class _Columns:
    """Column accumulator shared by the adapters."""

    def __init__(self) -> None:
        self.pcs: List[int] = []
        self.types: List[int] = []
        self.takens: List[bool] = []
        self.targets: List[int] = []
        self.gaps: List[int] = []

    def append(
        self,
        line_number: int,
        pc: int,
        branch_type: int,
        taken: bool,
        target: int,
        gap: int,
    ) -> None:
        if branch_type != int(BranchType.CONDITIONAL) and not taken:
            raise IngestError(
                f"line {line_number}: non-conditional branches must be taken"
            )
        if gap < 0:
            raise IngestError(f"line {line_number}: negative gap {gap}")
        self.pcs.append(pc)
        self.types.append(branch_type)
        self.takens.append(taken)
        self.targets.append(target)
        self.gaps.append(gap)

    def build(self, name: str, path: Path) -> Trace:
        if not self.pcs:
            raise IngestError(f"{path} contains no branch records")
        return Trace(
            name=name,
            pcs=np.array(self.pcs, dtype=np.uint64),
            types=np.array(self.types, dtype=np.uint8),
            takens=np.array(self.takens, dtype=bool),
            targets=np.array(self.targets, dtype=np.uint64),
            gaps=np.array(self.gaps, dtype=np.uint32),
        )


def _hex(token: str, line_number: int, what: str) -> int:
    try:
        return int(token, 16)
    except ValueError:
        raise IngestError(
            f"line {line_number}: bad {what} {token!r} (expected hex)"
        ) from None


def _taken(token: str, line_number: int) -> bool:
    lowered = token.lower()
    if lowered in ("1", "t", "taken"):
        return True
    if lowered in ("0", "n", "not_taken"):
        return False
    raise IngestError(
        f"line {line_number}: taken must be 0/1 or N/T, got {token!r}"
    )


def _header_name(line: str) -> Optional[str]:
    body = line[1:].strip()
    if body.lower().startswith("name:"):
        return body.split(":", 1)[1].strip()
    return None


def read_champsim_trace(
    path: Union[str, Path], name: Optional[str] = None
) -> Trace:
    """Parse a ChampSim/CBP-style branch-trace text file."""
    path = Path(path)
    columns = _Columns()
    trace_name = name or path.name.split(".")[0]
    with open(path) as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                header = _header_name(line)
                if header and name is None:
                    trace_name = header
                continue
            fields = line.split()
            if len(fields) not in (4, 5):
                raise IngestError(
                    f"line {line_number}: expected 4 or 5 fields "
                    f"(pc target taken type [gap]), got {len(fields)}"
                )
            pc = _hex(fields[0], line_number, "pc")
            target = _hex(fields[1], line_number, "target")
            taken = _taken(fields[2], line_number)
            key = fields[3].lower()
            if key.startswith("branch_"):
                key = key[len("branch_"):]
            if key not in _CHAMPSIM_TYPES:
                raise IngestError(
                    f"line {line_number}: unknown branch class "
                    f"{fields[3]!r}; expected one of "
                    f"{sorted('BRANCH_' + k.upper() for k in _CHAMPSIM_TYPES)}"
                )
            gap = 0
            if len(fields) == 5:
                try:
                    gap = int(fields[4], 10)
                except ValueError:
                    raise IngestError(
                        f"line {line_number}: bad gap {fields[4]!r} "
                        "(expected decimal)"
                    ) from None
            columns.append(
                line_number, pc, _CHAMPSIM_TYPES[key], taken, target, gap
            )
    return columns.build(trace_name, path)


def write_champsim_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` in the ChampSim-style text format (round-trips)."""
    path = Path(path)
    with open(path, "w") as handle:
        handle.write(f"# name: {trace.name}\n")
        handle.write("# pc target taken type gap\n")
        for record in trace.records():
            handle.write(
                f"{record.pc:x} {record.target:x} {int(record.taken)} "
                f"{_CHAMPSIM_NAMES[int(record.branch_type)]} "
                f"{record.inst_gap}\n"
            )


def read_gem5_trace(
    path: Union[str, Path], name: Optional[str] = None
) -> Trace:
    """Parse a gem5-style branch debug trace.

    Only lines carrying a ``pc=`` token are treated as branch records;
    everything else (other debug flags, stats banners) is skipped, which
    lets raw interleaved gem5 logs ingest without pre-filtering.
    """
    path = Path(path)
    columns = _Columns()
    trace_name = name or path.name.split(".")[0]
    last_icount: Optional[int] = None
    with open(path) as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                header = _header_name(line)
                if header and name is None:
                    trace_name = header
                continue
            pairs = {}
            for token in line.split():
                key, sep, value = token.partition("=")
                if sep:
                    pairs[key.lower()] = value
            if "pc" not in pairs:
                continue  # interleaved non-branch debug output
            for required in ("target", "taken", "type"):
                if required not in pairs:
                    raise IngestError(
                        f"line {line_number}: branch record missing "
                        f"{required}= (has pc=)"
                    )
            pc = _hex(pairs["pc"].replace("0x", ""), line_number, "pc")
            target = _hex(
                pairs["target"].replace("0x", ""), line_number, "target"
            )
            taken = _taken(pairs["taken"], line_number)
            key = pairs["type"].lower()
            if key not in _GEM5_TYPES:
                raise IngestError(
                    f"line {line_number}: unknown control flavor "
                    f"{pairs['type']!r}; expected one of "
                    f"{sorted(set(_GEM5_NAMES.values()))} or a shorthand"
                )
            gap = 0
            if "gap" in pairs:
                try:
                    gap = int(pairs["gap"], 10)
                except ValueError:
                    raise IngestError(
                        f"line {line_number}: bad gap {pairs['gap']!r}"
                    ) from None
            elif "icount" in pairs:
                try:
                    icount = int(pairs["icount"], 10)
                except ValueError:
                    raise IngestError(
                        f"line {line_number}: bad icount {pairs['icount']!r}"
                    ) from None
                if last_icount is not None:
                    delta = icount - last_icount
                    if delta < 1:
                        raise IngestError(
                            f"line {line_number}: icount went backwards "
                            f"({last_icount} -> {icount})"
                        )
                    # delta counts instructions including the previous
                    # branch itself; the gap excludes branches.
                    gap = delta - 1
                last_icount = icount
            columns.append(
                line_number, pc, _GEM5_TYPES[key], taken, target, gap
            )
    return columns.build(trace_name, path)


def write_gem5_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` in the gem5-style key=value format (round-trips)."""
    path = Path(path)
    with open(path, "w") as handle:
        handle.write(f"# name: {trace.name}\n")
        tick = 0
        for record in trace.records():
            tick += 500 * (record.inst_gap + 1)
            handle.write(
                f"{tick}: system.cpu.branchPred: branch "
                f"pc=0x{record.pc:x} target=0x{record.target:x} "
                f"taken={int(record.taken)} "
                f"type={_GEM5_NAMES[int(record.branch_type)]} "
                f"gap={record.inst_gap}\n"
            )


def _first_data_line(path: Path) -> str:
    with open(path, errors="replace") as handle:
        for raw in handle:
            line = raw.strip()
            if line and not line.startswith("#"):
                return line
    return ""


def detect_format(path: Union[str, Path]) -> str:
    """Sniff the trace format of ``path`` (one of :data:`FORMATS`).

    Magic bytes decide binary spills; then filename hints
    (``.csv``, ``.champsim*``, ``.gem5*``); then the shape of the first
    data line.  Raises :class:`IngestError` when nothing matches.
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            magic = handle.read(8)
    except OSError as exc:
        raise IngestError(f"cannot read {path}: {exc}") from None
    if magic in (b"RPTRACE1", b"RPTRACE2"):
        return "rptrace"
    suffixes = [s.lower() for s in path.suffixes]
    if ".csv" in suffixes:
        return "csv"
    if any(s.startswith(".champsim") for s in suffixes):
        return "champsim"
    if any(s.startswith(".gem5") for s in suffixes):
        return "gem5"
    line = _first_data_line(path)
    if not line:
        raise IngestError(f"{path}: empty file, cannot detect trace format")
    if "pc=" in line:
        return "gem5"
    if line.count(",") == 4:
        return "csv"
    fields = line.split()
    if len(fields) in (4, 5):
        return "champsim"
    raise IngestError(
        f"{path}: unrecognized trace format (first data line {line!r}); "
        f"pass an explicit format from {FORMATS}"
    )


def load_any_trace(
    path: Union[str, Path],
    format: Optional[str] = None,
    name: Optional[str] = None,
) -> Trace:
    """Load a trace in any supported format (sniffed unless pinned)."""
    path = Path(path)
    format = format or detect_format(path)
    if format == "rptrace":
        from repro.trace.stream import read_trace

        trace = read_trace(path)
        if name is not None and name != trace.name:
            trace = Trace(
                name, trace.pcs, trace.types, trace.takens,
                trace.targets, trace.gaps,
            )
        return trace
    if format == "csv":
        from repro.trace.textio import read_text_trace

        return read_text_trace(path, name=name)
    if format == "champsim":
        return read_champsim_trace(path, name=name)
    if format == "gem5":
        return read_gem5_trace(path, name=name)
    raise IngestError(
        f"unknown trace format {format!r}; expected one of {FORMATS}"
    )


__all__ = [
    "FORMATS",
    "IngestError",
    "detect_format",
    "load_any_trace",
    "read_champsim_trace",
    "read_gem5_trace",
    "write_champsim_trace",
    "write_gem5_trace",
]
