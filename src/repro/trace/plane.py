"""The zero-copy trace plane: raw column spills and the per-worker map cache.

A campaign simulates the same immutable trace under many predictors, often
from many worker processes at once.  The ``RPTRACE1`` format (``np.save``
per column) forces every reader to *decode* the file into fresh heap
arrays — each worker pays the copy again for every cell.  The ``RPTRACE2``
format written here stores each column as raw little-endian bytes at a
64-byte-aligned offset, so workers can attach the file with ``np.memmap``:
the kernel page cache holds one physical copy of the columns no matter how
many processes (or cells per process) read them, and attaching is O(header).

Layout::

    b"RPTRACE2" | <I header_len | JSON header | pad | column bytes ...

The JSON header carries the trace name, record count, a SHA-256 content
hash (used by the planner to skip re-spilling identical traces), and a
column table of ``{name, dtype, offset, bytes}`` entries.  Columns are
stored in fixed little-endian dtypes (``<u8``/``u1``/``<u4``); ``takens``
is stored as ``u1`` and viewed as ``bool`` on attach, which keeps the view
zero-copy.

:class:`TraceCache` fronts :func:`attach_trace` with a small LRU keyed by
``(path, size, mtime_ns)`` so a worker maps each spill file once no matter
how many cells reference it; a rewritten spill is re-attached and the
stale entry dropped — detected by the stat key, or, when a same-size
rewrite lands within one mtime tick, by the header content hash checked
on every hit.  :func:`cached_trace` uses a module-level instance as the
per-worker-process cache.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.trace.stream import Trace


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Atomically publish ``data`` at ``path``.

    The bytes land via a temp sibling in the same directory, an fsync,
    and ``os.replace`` — readers only ever see a complete file, and a
    process killed mid-write leaves the previous version intact.  Shared
    by the trace plane, simulation checkpoints, and the serve layer's
    session-eviction checkpoints.
    """
    path = Path(path)
    descriptor, temp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", dir=path.parent
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise

MAGIC_V2 = b"RPTRACE2"

_ALIGNMENT = 64

#: Column storage order and fixed on-disk dtypes (explicitly little-endian,
#: so spills are portable and hashes machine-independent).
_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("pcs", "<u8"),
    ("types", "u1"),
    ("takens", "u1"),
    ("targets", "<u8"),
    ("gaps", "<u4"),
)


def _column_bytes(trace: Trace) -> Dict[str, bytes]:
    """Each column as its canonical on-disk (little-endian) byte string."""
    raw = {}
    for name, dtype in _COLUMNS:
        column = getattr(trace, name)
        raw[name] = np.ascontiguousarray(column, dtype=np.dtype(dtype)).tobytes()
    return raw


def record_nbytes() -> int:
    """On-disk bytes per record across all spill columns.

    The basis for spill-size estimates (``repro simulate --dry-run``)
    without writing anything: header and alignment padding are a small
    constant on top.
    """
    return sum(np.dtype(dtype).itemsize for _, dtype in _COLUMNS)


def trace_content_hash(trace: Trace) -> str:
    """SHA-256 over the trace name and canonical column bytes.

    Stable across machines and NumPy versions: columns are hashed in their
    fixed little-endian storage dtypes, not native memory layout.
    """
    digest = hashlib.sha256()
    digest.update(trace.name.encode("utf-8"))
    digest.update(b"\x00")
    for name, _ in _COLUMNS:
        digest.update(_column_bytes(trace)[name])
    return digest.hexdigest()


def _pad_to(offset: int, alignment: int = _ALIGNMENT) -> int:
    remainder = offset % alignment
    return offset if remainder == 0 else offset + (alignment - remainder)


def write_trace_v2(
    trace: Trace,
    path: Union[str, Path],
    content_hash: Optional[str] = None,
) -> str:
    """Spill ``trace`` to ``path`` in the RPTRACE2 zero-copy format.

    Returns the content hash recorded in the header (computed here unless
    the caller already has it).  The write is atomic: a sibling temp file
    is renamed into place, so concurrent attachers never see a torn spill.
    """
    path = Path(path)
    raw = _column_bytes(trace)
    if content_hash is None:
        digest = hashlib.sha256()
        digest.update(trace.name.encode("utf-8"))
        digest.update(b"\x00")
        for name, _ in _COLUMNS:
            digest.update(raw[name])
        content_hash = digest.hexdigest()

    # The header length feeds back into column offsets, and offsets feed
    # back into the header; padding the serialized header to the alignment
    # boundary makes the fixed point trivial.
    table = []
    header_stub = {
        "version": 2,
        "name": trace.name,
        "records": len(trace),
        "content_hash": content_hash,
        "columns": table,
    }
    prefix = len(MAGIC_V2) + 4
    # First pass with zero offsets to measure the header, second pass with
    # real offsets; the padded header length is identical in both passes
    # only if offset digit counts match, so re-measure until stable.
    offsets = {name: 0 for name, _ in _COLUMNS}
    while True:
        table.clear()
        for name, dtype in _COLUMNS:
            table.append(
                {
                    "name": name,
                    "dtype": dtype,
                    "offset": offsets[name],
                    "bytes": len(raw[name]),
                }
            )
        encoded = json.dumps(header_stub, sort_keys=True).encode("utf-8")
        data_start = _pad_to(prefix + len(encoded))
        cursor = data_start
        new_offsets = {}
        for name, _ in _COLUMNS:
            cursor = _pad_to(cursor)
            new_offsets[name] = cursor
            cursor += len(raw[name])
        if new_offsets == offsets:
            break
        offsets = new_offsets

    temp = path.with_name(path.name + ".tmp")
    with open(temp, "wb") as handle:
        handle.write(MAGIC_V2)
        handle.write(struct.pack("<I", len(encoded)))
        handle.write(encoded)
        handle.write(b"\x00" * (data_start - prefix - len(encoded)))
        cursor = data_start
        for name, _ in _COLUMNS:
            aligned = _pad_to(cursor)
            handle.write(b"\x00" * (aligned - cursor))
            handle.write(raw[name])
            cursor = aligned + len(raw[name])
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)
    return content_hash


def read_header_v2(path: Union[str, Path]) -> Optional[dict]:
    """The RPTRACE2 JSON header of ``path``, or ``None`` if it is not v2."""
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            magic = handle.read(len(MAGIC_V2))
            if magic != MAGIC_V2:
                return None
            (header_len,) = struct.unpack("<I", handle.read(4))
            return json.loads(handle.read(header_len).decode("utf-8"))
    except (OSError, ValueError, struct.error):
        return None


def spilled_hash(path: Union[str, Path]) -> Optional[str]:
    """Content hash recorded in an existing spill, or ``None``.

    ``None`` means the file is missing, damaged, or pre-v2 — callers should
    treat it as "must rewrite".
    """
    header = read_header_v2(path)
    if header is None:
        return None
    value = header.get("content_hash")
    return value if isinstance(value, str) else None


def attach_trace(path: Union[str, Path]) -> Trace:
    """Attach an RPTRACE2 spill with ``np.memmap`` — zero column copies.

    The returned :class:`Trace` holds read-only views over the page cache;
    every worker attaching the same file shares one physical copy of the
    column data.
    """
    path = Path(path)
    header = read_header_v2(path)
    if header is None:
        raise ValueError(f"{path} is not an RPTRACE2 trace file")
    records = int(header["records"])
    columns = {}
    for entry in header["columns"]:
        dtype = np.dtype(entry["dtype"])
        expected = records * dtype.itemsize
        if entry["bytes"] != expected:
            raise ValueError(
                f"{path}: column {entry['name']} has {entry['bytes']} bytes, "
                f"expected {expected}"
            )
        if records:
            column = np.memmap(
                path, mode="r", dtype=dtype, offset=entry["offset"], shape=(records,)
            )
        else:
            column = np.empty(0, dtype=dtype)
        columns[entry["name"]] = column
    # bool and u1 share an itemsize, so the view (unlike an astype) is free.
    columns["takens"] = columns["takens"].view(np.bool_)
    return Trace(
        name=header["name"],
        pcs=columns["pcs"],
        types=columns["types"],
        takens=columns["takens"],
        targets=columns["targets"],
        gaps=columns["gaps"],
    )


_CacheKey = Tuple[str, int, int]


class TraceCache:
    """A small LRU of attached traces, keyed by ``(path, size, mtime_ns)``.

    One instance lives per worker process (:func:`cached_trace`), so a
    trace referenced by many fused or sequential cells is mapped exactly
    once per worker.  A spill rewritten in place gets a new mtime, which
    misses the cache and evicts the stale mapping.

    The stat key alone is not airtight: on filesystems with coarse mtime
    granularity a same-size rewrite can land within one tick and leave
    size and mtime_ns unchanged.  Every hit therefore re-reads the
    spill's JSON header (O(header), page-cached) and compares the
    recorded content hash against the one captured at attach time; a
    mismatch evicts the stale mapping and re-attaches.  Legacy v1 spills
    carry no header hash, so for them the stat key is the only guard.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is None:
            capacity = int(os.environ.get("REPRO_TRACE_CACHE", "8"))
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[_CacheKey, Tuple[Trace, Optional[str]]]" = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, path: Union[str, Path]) -> Trace:
        path = Path(path)
        stat = os.stat(path)
        key = (str(path), stat.st_size, stat.st_mtime_ns)
        cached = self._entries.get(key)
        if cached is not None:
            trace, attached_hash = cached
            if spilled_hash(path) == attached_hash:
                self._entries.move_to_end(key)
                self.hits += 1
                return trace
            del self._entries[key]
        self.misses += 1
        # Drop stale generations of the same file before admitting the new
        # one, so a rewritten spill cannot pin two mappings.
        for stale in [k for k in self._entries if k[0] == key[0]]:
            del self._entries[stale]
        # read_trace dispatches on magic: v2 spills attach zero-copy, v1
        # spills decode through the legacy reader but still get cached.
        from repro.trace.stream import read_trace

        trace = read_trace(path)
        self._entries[key] = (trace, spilled_hash(path))
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return trace

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


#: Per-process cache used by execution workers.
_worker_cache = TraceCache()


def cached_trace(path: Union[str, Path]) -> Trace:
    """Attach ``path`` through the per-worker-process :class:`TraceCache`."""
    return _worker_cache.get(path)
