"""Per-trace statistics behind the paper's workload-characterization figures.

* Figure 1 plots the prevalence of each branch type per kilo-instruction.
* Figure 6 plots polymorphism: the share of indirect-branch executions
  whose (static) branch has more than one observed target.
* Figure 7 plots, for x = 1..64, the percentage of (static) indirect
  branches with **at least x** distinct targets (a CCDF).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.trace.record import BranchType
from repro.trace.stream import Trace


@dataclass
class TraceStats:
    """Workload-characterization statistics for one trace."""

    name: str
    total_instructions: int
    counts_by_type: Dict[BranchType, int]
    # Static indirect branch pc -> set size of distinct targets observed.
    targets_per_branch: Dict[int, int]
    # Dynamic executions of indirect branches whose static branch is
    # polymorphic (ends the trace with > 1 distinct target).
    polymorphic_executions: int
    indirect_executions: int

    def per_kilo(self, branch_type: BranchType) -> float:
        """Dynamic executions of ``branch_type`` per 1000 instructions."""
        if self.total_instructions == 0:
            return 0.0
        return 1000.0 * self.counts_by_type.get(branch_type, 0) / self.total_instructions

    def branches_per_kilo(self) -> Dict[BranchType, float]:
        return {bt: self.per_kilo(bt) for bt in BranchType}

    def polymorphic_fraction(self) -> float:
        """Fraction of indirect executions from polymorphic branches (Fig. 6)."""
        if self.indirect_executions == 0:
            return 0.0
        return self.polymorphic_executions / self.indirect_executions

    def target_count_ccdf(self, max_targets: int = 64) -> List[float]:
        """Fig. 7 series: % of static indirect branches with >= x targets.

        Index 0 corresponds to x = 1 (always 100.0 when any indirect
        branch exists).
        """
        num_branches = len(self.targets_per_branch)
        if num_branches == 0:
            return [0.0] * max_targets
        counts = np.array(list(self.targets_per_branch.values()))
        return [
            100.0 * float(np.count_nonzero(counts >= x)) / num_branches
            for x in range(1, max_targets + 1)
        ]


def compute_stats(trace: Trace) -> TraceStats:
    """Scan ``trace`` once and compute its :class:`TraceStats`."""
    counts: Dict[BranchType, int] = {
        bt: trace.count_of(bt) for bt in BranchType
    }

    indirect_mask = trace.indirect_mask()
    indirect_pcs = trace.pcs[indirect_mask]
    indirect_targets = trace.targets[indirect_mask]

    seen: Dict[int, set] = defaultdict(set)
    for pc, target in zip(indirect_pcs.tolist(), indirect_targets.tolist()):
        seen[pc].add(target)
    targets_per_branch = {pc: len(targets) for pc, targets in seen.items()}

    polymorphic_pcs = {pc for pc, n in targets_per_branch.items() if n > 1}
    polymorphic_executions = sum(
        1 for pc in indirect_pcs.tolist() if pc in polymorphic_pcs
    )

    return TraceStats(
        name=trace.name,
        total_instructions=trace.total_instructions(),
        counts_by_type=counts,
        targets_per_branch=targets_per_branch,
        polymorphic_executions=polymorphic_executions,
        indirect_executions=int(indirect_mask.sum()),
    )


def aggregate_target_ccdf(stats: List[TraceStats], max_targets: int = 64) -> List[float]:
    """Suite-wide Fig. 7 series: pool static indirect branches across traces."""
    all_counts: List[int] = []
    for stat in stats:
        all_counts.extend(stat.targets_per_branch.values())
    if not all_counts:
        return [0.0] * max_targets
    counts = np.array(all_counts)
    return [
        100.0 * float(np.count_nonzero(counts >= x)) / len(counts)
        for x in range(1, max_targets + 1)
    ]
