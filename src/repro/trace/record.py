"""Branch record and branch-type definitions.

A trace is a sequence of :class:`BranchRecord`.  Non-branch instructions
are not recorded individually; each record carries ``inst_gap``, the
count of non-branch instructions executed since the previous record, so
MPKI can be computed without storing billions of records.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class BranchType(enum.IntEnum):
    """The branch taxonomy used by the CBP simulation infrastructure.

    The paper's Figure 1 breaks traces down into these categories.
    Returns are listed separately because they are predicted by the
    return-address stack, not the indirect predictor (§1).
    """

    CONDITIONAL = 0
    DIRECT_JUMP = 1
    DIRECT_CALL = 2
    INDIRECT_JUMP = 3
    INDIRECT_CALL = 4
    RETURN = 5

    @property
    def is_indirect(self) -> bool:
        """True for the branch types the indirect predictor must handle."""
        return self in (BranchType.INDIRECT_JUMP, BranchType.INDIRECT_CALL)

    @property
    def is_call(self) -> bool:
        """True for branch types that push a return address."""
        return self in (BranchType.DIRECT_CALL, BranchType.INDIRECT_CALL)

    @property
    def is_conditional(self) -> bool:
        """True for taken/not-taken branches."""
        return self is BranchType.CONDITIONAL


@dataclass(frozen=True)
class BranchRecord:
    """One dynamic branch execution.

    Attributes:
        pc: address of the branch instruction.
        branch_type: the :class:`BranchType` category.
        taken: outcome for conditional branches; unconditional branches
            are always taken.
        target: the address control flow transferred to (the fall-through
            address for not-taken conditionals).
        inst_gap: non-branch instructions executed since the previous
            record (>= 0).  Total instructions simulated for a trace is
            ``sum(gap) + len(records)``.
    """

    pc: int
    branch_type: BranchType
    taken: bool
    target: int
    inst_gap: int = 0

    def __post_init__(self) -> None:
        if self.pc < 0:
            raise ValueError(f"negative pc {self.pc:#x}")
        if self.target < 0:
            raise ValueError(f"negative target {self.target:#x}")
        if self.inst_gap < 0:
            raise ValueError(f"negative inst_gap {self.inst_gap}")
        if not self.branch_type.is_conditional and not self.taken:
            raise ValueError(
                f"{self.branch_type.name} branches are always taken"
            )
