"""Table 2: the four predictor configurations and their hardware budgets.

The paper compares iso-area configurations: a 64 KB BTB baseline, a
128 KB VPC (conditional predictor + BTB), a 64 KB ITTAGE, and BLBP at
64.08 KB.  ``table2()`` instantiates each predictor exactly as the other
experiments use it and reports its *computed* storage budget next to the
paper's claimed budget; small discrepancies are expected because the
paper does not itemize every register (see DESIGN.md §5).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.core import BLBP
from repro.predictors import (
    ITTAGE,
    BranchTargetBuffer,
    IndirectBranchPredictor,
    VPCPredictor,
)

#: The paper's claimed budgets (Table 2), in KB.
PAPER_BUDGETS_KB: Dict[str, float] = {
    "BTB": 64.0,
    "VPC": 128.0,
    "ITTAGE": 64.0,
    "BLBP": 64.08,
}

#: The paper's configuration descriptions (Table 2).
PAPER_CONFIG_NOTES: Dict[str, str] = {
    "BTB": "32K-entry, partially-tagged, direct-mapped branch target buffer",
    "VPC": "32K-entry BTB with multiperspective perceptron conditional predictor",
    "ITTAGE": "as described in the original paper",
    "BLBP": (
        "64-set, 64-way partially-tagged IBTB, 256 10-bit local histories, "
        "630-bit global history, 8 correlating-weights tables, 128-entry "
        "region array"
    ),
}


def predictor_factories() -> Dict[str, Callable[[], IndirectBranchPredictor]]:
    """The four Table 2 predictors, as fresh-instance factories."""
    return {
        "BTB": BranchTargetBuffer,
        "VPC": VPCPredictor,
        "ITTAGE": ITTAGE,
        "BLBP": BLBP,
    }


def table2() -> List[Tuple[str, str, float, float]]:
    """Rows of (predictor, configuration, paper KB, measured KB)."""
    rows = []
    for name, factory in predictor_factories().items():
        predictor = factory()
        measured = predictor.storage_budget().total_kilobytes()
        rows.append(
            (name, PAPER_CONFIG_NOTES[name], PAPER_BUDGETS_KB[name], measured)
        )
    return rows


def format_table2() -> str:
    """Render Table 2 with paper-vs-measured budgets."""
    lines = [
        f"{'predictor':<8}  {'paper KB':>9}  {'measured KB':>12}  configuration",
        "-" * 100,
    ]
    for name, note, paper_kb, measured_kb in table2():
        lines.append(
            f"{name:<8}  {paper_kb:>9.2f}  {measured_kb:>12.2f}  {note}"
        )
    return "\n".join(lines)


def format_budget_details() -> str:
    """Itemized storage budgets for all four predictors."""
    blocks = []
    for name, factory in predictor_factories().items():
        blocks.append(factory().storage_budget().format_table())
    return "\n\n".join(blocks)
