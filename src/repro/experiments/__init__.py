"""Experiment drivers: one entry point per table/figure in the paper.

Each driver returns plain data (lists/dicts) plus a ``format_*`` helper
that renders the same rows/series the paper reports; the benchmark
harness under ``benchmarks/`` calls these and prints the output.  The
mapping from paper artifact to driver:

====================  =========================================
Paper artifact         Driver
====================  =========================================
Table 1                :func:`repro.experiments.tables.table1`
Table 2                :func:`repro.experiments.configs.table2`
Figure 1               :func:`repro.experiments.figures.figure1`
Figure 6               :func:`repro.experiments.figures.figure6`
Figure 7               :func:`repro.experiments.figures.figure7`
Figure 8               :func:`repro.experiments.figures.figure8`
Figure 9               :func:`repro.experiments.figures.figure9`
Figure 10              :func:`repro.experiments.ablation.figure10`
Figure 11              :func:`repro.experiments.associativity.figure11`
§5.1 headline          :func:`repro.experiments.tables.headline`
====================  =========================================
"""

from repro.experiments.configs import predictor_factories, table2
from repro.experiments.runcache import (
    get_campaign,
    get_suite_stats,
    get_suite_traces,
)

__all__ = [
    "predictor_factories",
    "table2",
    "get_campaign",
    "get_suite_traces",
    "get_suite_stats",
]
