"""Figure 10: the effect of BLBP's optimizations (§5.2).

The paper evaluates twelve configurations against ITTAGE: all
optimizations off (SNIP-like), each optimization alone, each
optimization removed from the full predictor, and all on.  The reported
metric is the percentage MPKI reduction relative to ITTAGE (negative
means BLBP is worse than ITTAGE in that configuration).

Running twelve predictor configurations over the whole 88-trace suite
is expensive, so the ablation uses an evenly-spaced subsample of the
suite (every ``stride``-th trace) — the paper's qualitative findings
(adaptive threshold and the transfer function are the strongest single
optimizations; intervals matter most in concert) are stable under the
subsample.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.core import BLBP
from repro.core.config import BLBPConfig, unoptimized_config
from repro.predictors import ITTAGE
from repro.sim.runner import run_campaign
from repro.trace.stream import Trace
from repro.workloads.suite import env_scale, suite88_specs

#: The five §3.6 optimizations and their config-field names.
OPTIMIZATIONS: Tuple[Tuple[str, str], ...] = (
    ("local history", "use_local_history"),
    ("intervals", "use_intervals"),
    ("selective updates", "use_selective_update"),
    ("transfer function", "use_transfer_function"),
    ("adaptive threshold", "use_adaptive_threshold"),
)


def ablation_configs() -> "Dict[str, BLBPConfig]":
    """The twelve Fig. 10 configurations, in the paper's plot order."""
    configs: Dict[str, BLBPConfig] = {}
    configs["all optimizations off"] = unoptimized_config()
    for label, field in OPTIMIZATIONS:
        configs[f"only {label} on"] = dataclasses.replace(
            unoptimized_config(), **{field: True}
        )
    for label, field in OPTIMIZATIONS:
        configs[f"no {label}"] = dataclasses.replace(
            BLBPConfig(), **{field: False}
        )
    configs["all optimizations on"] = BLBPConfig()
    return configs


def ablation_traces(scale: Optional[float] = None, stride: int = 6) -> List[Trace]:
    """An evenly-spaced subsample of suite-88 for the ablation."""
    if scale is None:
        scale = env_scale()
    return [entry.generate() for entry in suite88_specs(scale)[::stride]]


def figure10(
    traces: Optional[List[Trace]] = None,
    scale: Optional[float] = None,
    stride: int = 6,
) -> List[Tuple[str, float]]:
    """(configuration, % MPKI reduction vs ITTAGE) for all 12 configs.

    Positive numbers mean the BLBP configuration beats ITTAGE.
    """
    if traces is None:
        traces = ablation_traces(scale, stride)
    factories = {"ITTAGE": ITTAGE}
    configs = ablation_configs()
    for label, config in configs.items():
        factories[label] = (lambda cfg: (lambda: BLBP(cfg)))(config)
    campaign = run_campaign(traces, factories)
    reference = campaign.mean_mpki("ITTAGE")
    results = []
    for label in configs:
        mpki = campaign.mean_mpki(label)
        reduction = 100.0 * (reference - mpki) / reference if reference else 0.0
        results.append((label, reduction))
    return results


def format_figure10(results: List[Tuple[str, float]]) -> str:
    lines = [
        "Figure 10: % MPKI reduction vs ITTAGE per BLBP configuration",
        "(positive = better than ITTAGE; paper: all-on +5.3%, all-off -8.8%)",
    ]
    width = max(len(label) for label, _ in results)
    for label, reduction in results:
        bar = "#" * int(abs(reduction))
        sign = "+" if reduction >= 0 else "-"
        lines.append(f"  {label:<{width}}  {reduction:+7.2f}%  {sign}{bar}")
    return "\n".join(lines)
