"""CSV export of figure data.

The benchmark harness prints figures as text; downstream users who want
to *plot* them (matplotlib, gnuplot, a spreadsheet) need the raw
series.  These helpers write each figure's data as a tidy CSV next to
whatever directory the caller chooses, and the ``report`` CLI command
uses them to assemble a results bundle.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Sequence, Tuple, Union

from repro.experiments.figures import figure1, figure6, figure7, figure8, figure9
from repro.sim.metrics import CampaignResult
from repro.trace.stats import TraceStats

PathLike = Union[str, Path]


def _open_writer(path: PathLike):
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    return open(path, "w", newline="")


def export_figure1(stats: Sequence[TraceStats], path: PathLike) -> Path:
    """Figure 1 rows: benchmark, conditional, direct, return, indirect."""
    rows = figure1(stats)
    path = Path(path)
    with _open_writer(path) as handle:
        writer = csv.writer(handle)
        writer.writerow(["benchmark", "conditional_pki", "direct_pki",
                         "return_pki", "indirect_pki"])
        for row in rows:
            writer.writerow([
                row["name"], f"{row['conditional']:.4f}",
                f"{row['direct']:.4f}", f"{row['return']:.4f}",
                f"{row['indirect']:.4f}",
            ])
    return path


def export_figure6(stats: Sequence[TraceStats], path: PathLike) -> Path:
    series = figure6(stats)
    path = Path(path)
    with _open_writer(path) as handle:
        writer = csv.writer(handle)
        writer.writerow(["benchmark", "polymorphic_share_percent"])
        for name, share in series:
            writer.writerow([name, f"{share:.4f}"])
    return path


def export_figure7(stats: Sequence[TraceStats], path: PathLike) -> Path:
    series = figure7(stats)
    path = Path(path)
    with _open_writer(path) as handle:
        writer = csv.writer(handle)
        writer.writerow(["min_targets", "percent_of_branches"])
        for x, value in enumerate(series, start=1):
            writer.writerow([x, f"{value:.4f}"])
    return path


def export_figure8(campaign: CampaignResult, path: PathLike) -> Path:
    series = figure8(campaign)
    path = Path(path)
    with _open_writer(path) as handle:
        writer = csv.writer(handle)
        predictors = [key for key in series if key != "benchmarks"]
        writer.writerow(["benchmark"] + [f"{p}_mpki" for p in predictors])
        for index, benchmark in enumerate(series["benchmarks"]):
            writer.writerow(
                [benchmark]
                + [f"{series[p][index]:.6f}" for p in predictors]
            )
    return path


def export_figure9(campaign: CampaignResult, path: PathLike) -> Path:
    shares = figure9(campaign)
    path = Path(path)
    with _open_writer(path) as handle:
        writer = csv.writer(handle)
        predictors = [key for key in shares if key != "benchmarks"]
        writer.writerow(["benchmark"] + [f"{p}_share" for p in predictors])
        for index, benchmark in enumerate(shares["benchmarks"]):
            writer.writerow(
                [benchmark]
                + [f"{shares[p][index]:.4f}" for p in predictors]
            )
    return path


def export_series(
    pairs: Sequence[Tuple[str, float]], path: PathLike,
    header: Tuple[str, str] = ("label", "value"),
) -> Path:
    """Generic (label, value) export for Fig. 10/11-style results."""
    path = Path(path)
    with _open_writer(path) as handle:
        writer = csv.writer(handle)
        writer.writerow(list(header))
        for label, value in pairs:
            writer.writerow([label, f"{value:.6f}"])
    return path


def export_all(
    stats: Sequence[TraceStats],
    campaign: CampaignResult,
    directory: PathLike,
) -> List[Path]:
    """Export figures 1/6/7/8/9 into ``directory``; returns the paths."""
    directory = Path(directory)
    return [
        export_figure1(stats, directory / "figure1.csv"),
        export_figure6(stats, directory / "figure6.csv"),
        export_figure7(stats, directory / "figure7.csv"),
        export_figure8(campaign, directory / "figure8.csv"),
        export_figure9(campaign, directory / "figure9.csv"),
    ]
