"""Per-source and per-category result breakdowns.

The paper's discussion differentiates workload sources — "the Samsung
workloads tend to have more indirect branches", mobile traces being
Java-flavoured, etc.  This driver slices a campaign by the Table 1
source/category labels and reports per-group predictor means, which the
Figure 8 discussion refers to qualitatively.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence

from repro.sim.metrics import CampaignResult
from repro.workloads.suite import suite88_specs


def category_of(trace_name: str, by: str = "category") -> str:
    """The Table 1 source or category label of a suite trace name."""
    for entry in suite88_specs(scale=1.0):
        if entry.name == trace_name:
            return getattr(entry, by)
    raise KeyError(f"{trace_name!r} is not a suite-88 trace")


def category_means(
    campaign: CampaignResult,
    predictors: Optional[Sequence[str]] = None,
    by: str = "category",
) -> "OrderedDict[str, Dict[str, float]]":
    """Mean MPKI per predictor within each source/category group.

    Only traces belonging to suite-88 are grouped; others are ignored.
    """
    labels = {
        entry.name: getattr(entry, by) for entry in suite88_specs(scale=1.0)
    }
    predictors = list(predictors or campaign.predictors())
    groups: "OrderedDict[str, List[str]]" = OrderedDict()
    for trace_name in campaign.traces():
        label = labels.get(trace_name)
        if label is None:
            continue
        groups.setdefault(label, []).append(trace_name)

    means: "OrderedDict[str, Dict[str, float]]" = OrderedDict()
    for label, names in groups.items():
        means[label] = {}
        for predictor in predictors:
            values = [campaign.mpki_of(name, predictor) for name in names]
            means[label][predictor] = sum(values) / len(values)
    return means


def format_category_means(
    means: "OrderedDict[str, Dict[str, float]]",
) -> str:
    predictors: List[str] = []
    for per_group in means.values():
        for name in per_group:
            if name not in predictors:
                predictors.append(name)
    width = max((len(label) for label in means), default=8)
    header = f"{'group':<{width}}" + "".join(
        f"  {name:>10}" for name in predictors
    )
    lines = ["mean MPKI by workload group:", header, "-" * len(header)]
    for label, per_group in means.items():
        cells = "".join(
            f"  {per_group.get(name, float('nan')):>10.4f}"
            for name in predictors
        )
        lines.append(f"{label:<{width}}{cells}")
    return "\n".join(lines)
