"""Table 1 (suite inventory) and the §5.1 headline numbers.

The headline experiment is the paper's central claim: over the 88-trace
suite, mean MPKI is BTB 3.40, VPC 0.29, ITTAGE 0.193, BLBP 0.183 — BLBP
improving 5% over ITTAGE — and on the untuned CBP-4 traces ITTAGE 0.028
vs BLBP 0.027 (3.5%).  ``headline()`` reproduces both comparisons on our
synthetic suites.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.experiments.configs import predictor_factories
from repro.experiments.runcache import get_campaign
from repro.workloads.suite import suite88_specs

#: The paper's §5.1 mean MPKI values over its 88-trace suite.
PAPER_HEADLINE_MPKI: Dict[str, float] = {
    "BTB": 3.40,
    "VPC": 0.29,
    "ITTAGE": 0.193,
    "BLBP": 0.183,
}

#: The paper's CBP-4 cross-check (untuned predictors).
PAPER_CBP4_MPKI: Dict[str, float] = {"ITTAGE": 0.028, "BLBP": 0.027}


def table1() -> List[Tuple[str, int, str]]:
    """Rows of (source, #benchmarks, details) matching Table 1."""
    specs = suite88_specs(scale=1.0)
    by_source: "OrderedDict[str, List[str]]" = OrderedDict()
    for entry in specs:
        by_source.setdefault(entry.source, []).append(entry.name)
    rows = []
    for source, names in by_source.items():
        benchmarks = set()
        for name in names:
            if "." in name:
                # "spec2006.400_perlbench.0" -> "400_perlbench"
                benchmarks.add(name.split(".")[1])
            else:
                # "SHORT-MOBILE-3" -> "SHORT-MOBILE"
                benchmarks.add(name.rsplit("-", 1)[0])
        ordered = sorted(benchmarks)
        details = ", ".join(ordered[:6])
        if len(ordered) > 6:
            details += ", ..."
        rows.append((source, len(names), details))
    return rows


def format_table1() -> str:
    lines = [
        "Table 1: the 88-workload evaluation suite",
        f"{'source':<14} {'#':>3}  details",
        "-" * 76,
    ]
    total = 0
    for source, count, details in table1():
        total += count
        lines.append(f"{source:<14} {count:>3}  {details}")
    lines.append("-" * 76)
    lines.append(f"{'total':<14} {total:>3}")
    return "\n".join(lines)


def headline(scale: Optional[float] = None) -> Dict[str, Dict[str, float]]:
    """§5.1: mean MPKI per predictor on suite-88 and the CBP-4-like suite.

    Returns ``{"suite88": {name: mpki}, "cbp4": {name: mpki}}`` with the
    full four-predictor comparison on the main suite and the
    ITTAGE/BLBP pair on the secondary suite.
    """
    main = get_campaign(predictor_factories(), scale=scale, suite="suite88")
    suite88 = {name: main.mean_mpki(name) for name in main.predictors()}

    pair = {
        name: factory
        for name, factory in predictor_factories().items()
        if name in ("ITTAGE", "BLBP")
    }
    secondary = get_campaign(pair, scale=scale, suite="cbp4")
    cbp4 = {name: secondary.mean_mpki(name) for name in secondary.predictors()}
    return {"suite88": suite88, "cbp4": cbp4}


def format_headline(scale: Optional[float] = None) -> str:
    results = headline(scale)
    lines = [
        "Section 5.1 headline: mean indirect-target MPKI",
        f"{'predictor':<8}  {'paper':>8}  {'measured':>9}",
        "-" * 32,
    ]
    for name in ("BTB", "VPC", "ITTAGE", "BLBP"):
        measured = results["suite88"].get(name, float("nan"))
        lines.append(
            f"{name:<8}  {PAPER_HEADLINE_MPKI[name]:>8.3f}  {measured:>9.4f}"
        )
    it = results["suite88"]["ITTAGE"]
    bl = results["suite88"]["BLBP"]
    improvement = 100.0 * (it - bl) / it if it else 0.0
    lines.append(
        f"BLBP vs ITTAGE: {improvement:+.1f}% MPKI reduction (paper: +5.2%)"
    )
    lines.append("")
    lines.append("CBP-4-like cross-check (untuned):")
    for name in ("ITTAGE", "BLBP"):
        lines.append(
            f"  {name:<8} paper {PAPER_CBP4_MPKI[name]:.3f}"
            f"  measured {results['cbp4'][name]:.4f}"
        )
    return "\n".join(lines)
