"""Drivers for the paper's workload-characterization and MPKI figures.

Figures 1, 6 and 7 characterize the workloads themselves; Figures 8 and
9 plot predictor MPKI across the suite.  Every driver returns the figure
series as plain data, and a ``format_*`` twin renders it as text in the
same organization as the paper's plot (same sort order, same axes).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.metrics import CampaignResult
from repro.sim.report import format_series
from repro.trace.record import BranchType
from repro.trace.stats import TraceStats, aggregate_target_ccdf

#: Figure 1 plots these categories per kilo-instruction.
FIGURE1_CATEGORIES: Tuple[Tuple[str, Tuple[BranchType, ...]], ...] = (
    ("conditional", (BranchType.CONDITIONAL,)),
    ("direct", (BranchType.DIRECT_JUMP, BranchType.DIRECT_CALL)),
    ("return", (BranchType.RETURN,)),
    ("indirect", (BranchType.INDIRECT_JUMP, BranchType.INDIRECT_CALL)),
)


def figure1(stats: Sequence[TraceStats]) -> List[Dict[str, object]]:
    """Branch-type breakdown per kilo-instruction, sorted by indirect
    prevalence (the paper's Fig. 1 x-axis order)."""
    rows = []
    for stat in stats:
        row: Dict[str, object] = {"name": stat.name}
        for label, types in FIGURE1_CATEGORIES:
            row[label] = sum(stat.per_kilo(bt) for bt in types)
        rows.append(row)
    rows.sort(key=lambda row: row["indirect"])
    return rows


def format_figure1(stats: Sequence[TraceStats], max_rows: Optional[int] = None) -> str:
    rows = figure1(stats)
    if max_rows is not None:
        rows = rows[:: max(1, len(rows) // max_rows)]
    labels = [label for label, _ in FIGURE1_CATEGORIES]
    name_width = max(len(str(row["name"])) for row in rows)
    lines = [
        "Figure 1: branches per kilo-instruction, sorted by indirect prevalence",
        f"{'benchmark':<{name_width}}" + "".join(f"  {l:>12}" for l in labels),
    ]
    for row in rows:
        cells = "".join(f"  {row[l]:>12.2f}" for l in labels)
        lines.append(f"{str(row['name']):<{name_width}}{cells}")
    return "\n".join(lines)


def figure6(stats: Sequence[TraceStats]) -> List[Tuple[str, float]]:
    """Per-trace polymorphic share of indirect executions, ascending
    (the paper's Fig. 6)."""
    series = [
        (stat.name, 100.0 * stat.polymorphic_fraction()) for stat in stats
    ]
    series.sort(key=lambda pair: pair[1])
    return series


def format_figure6(stats: Sequence[TraceStats]) -> str:
    series = figure6(stats)
    name_width = max(len(name) for name, _ in series)
    lines = [
        "Figure 6: % of indirect executions from polymorphic branches (ascending)",
    ]
    for name, share in series:
        lines.append(f"{name:<{name_width}}  {share:6.1f}%")
    return "\n".join(lines)


def figure7(stats: Sequence[TraceStats], max_targets: int = 64) -> List[float]:
    """Suite-wide CCDF: % of static indirect branches with >= x targets
    for x = 1..max_targets (the paper's Fig. 7)."""
    return aggregate_target_ccdf(list(stats), max_targets)


def format_figure7(stats: Sequence[TraceStats]) -> str:
    series = figure7(stats)
    checkpoints = [1, 2, 3, 5, 10, 20, 40, 64]
    lines = [
        "Figure 7: % of static indirect branches with at least x targets",
    ]
    for x in checkpoints:
        lines.append(f"  x={x:<3d}  {series[x - 1]:6.2f}%")
    majority = next(
        (x for x in range(1, 65) if series[x - 1] < 50.0), 65
    )
    lines.append(f"  (50% threshold crossed at x={majority};"
                 f" paper: majority of branches have <= 5 targets)")
    return "\n".join(lines)


def figure8(
    campaign: CampaignResult,
    predictors: Sequence[str] = ("VPC", "ITTAGE", "BLBP"),
) -> Dict[str, List[float]]:
    """Per-benchmark MPKI series sorted by BLBP MPKI (Fig. 8).

    The BTB is omitted as in the paper (its MPKI dwarfs the rest).
    """
    order = campaign.traces_sorted_by("BLBP")
    series = {"benchmarks": order}
    for name in predictors:
        series[name] = campaign.mpki_series(name, order)
    return series


def format_figure8(campaign: CampaignResult) -> str:
    series = figure8(campaign)
    lines = ["Figure 8: per-benchmark MPKI (sorted by BLBP MPKI; BTB omitted)"]
    for name in ("VPC", "ITTAGE", "BLBP"):
        lines.append(format_series(name, series[name]))
    return "\n".join(lines)


def figure9(
    campaign: CampaignResult,
    predictors: Sequence[str] = ("BTB", "VPC", "ITTAGE", "BLBP"),
) -> Dict[str, List[float]]:
    """Percentage breakdown of the four predictors' MPKI per benchmark.

    For each benchmark the four MPKIs are normalized to sum to 100%
    (the paper's stacked Fig. 9).
    """
    order = campaign.traces_sorted_by("BLBP")
    shares: Dict[str, List[float]] = {"benchmarks": order}
    for name in predictors:
        shares[name] = []
    for trace in order:
        total = sum(campaign.mpki_of(trace, name) for name in predictors)
        for name in predictors:
            value = campaign.mpki_of(trace, name)
            shares[name].append(100.0 * value / total if total > 0 else 0.0)
    return shares


def format_figure9(campaign: CampaignResult) -> str:
    shares = figure9(campaign)
    predictors = ("BTB", "VPC", "ITTAGE", "BLBP")
    lines = [
        "Figure 9: relative MPKI share per benchmark (rows sum to 100%)",
        "mean shares across benchmarks:",
    ]
    count = len(shares["benchmarks"])
    for name in predictors:
        mean_share = sum(shares[name]) / count if count else 0.0
        lines.append(f"  {name:<8} {mean_share:6.2f}%")
    return "\n".join(lines)
