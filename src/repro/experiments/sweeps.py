"""Design-space sweeps over BLBP's sizing parameters.

The paper fixes several design choices with one-line justifications:
§3.7 "we find four bits per weight sufficient to maintain a good
trade-off between accuracy and space-efficiency"; K = 12 predicted
bits; M = 1024-row tables.  These sweeps regenerate the evidence behind
those choices — accuracy as a function of each parameter at otherwise
paper-default configuration — so the claims can be checked rather than
quoted.  ``benchmarks/bench_sweeps.py`` runs them.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import BLBP
from repro.core.config import BLBPConfig
from repro.sim.runner import run_campaign
from repro.trace.stream import Trace
from repro.workloads.suite import env_scale, suite88_specs

#: A sweep: label -> config transformer.
SweepPoint = Tuple[str, Callable[[BLBPConfig], BLBPConfig]]


def weight_bits_sweep(values: Sequence[int] = (2, 3, 4, 5, 6)) -> List[SweepPoint]:
    """§3.7's weight-width trade-off.

    The transfer-magnitude table must match the weight range, so wider
    weights extend it with the same convex growth.
    """
    points = []
    for bits in values:
        magnitude = (1 << (bits - 1)) - 1
        base = list(BLBPConfig().transfer_magnitudes)
        while len(base) < magnitude + 1:
            base.append(base[-1] + (base[-1] - base[-2]) + 2)
        magnitudes = tuple(base[: magnitude + 1])
        points.append(
            (
                f"weights={bits}b",
                (lambda b, m: lambda cfg: dataclasses.replace(
                    cfg, weight_bits=b, transfer_magnitudes=m
                ))(bits, magnitudes),
            )
        )
    return points


def target_bits_sweep(values: Sequence[int] = (4, 8, 12, 16)) -> List[SweepPoint]:
    """How many low-order target bits are worth predicting (K)."""
    return [
        (
            f"K={k}",
            (lambda kk: lambda cfg: dataclasses.replace(
                cfg, num_target_bits=kk
            ))(k),
        )
        for k in values
    ]


def table_rows_sweep(values: Sequence[int] = (128, 256, 512, 1024, 2048)) -> List[SweepPoint]:
    """Weight-table capacity (rows per sub-predictor array)."""
    return [
        (
            f"rows={rows}",
            (lambda r: lambda cfg: dataclasses.replace(cfg, table_rows=r))(rows),
        )
        for rows in values
    ]


def run_sweep(
    points: Sequence[SweepPoint],
    traces: Optional[Sequence[Trace]] = None,
    scale: Optional[float] = None,
    stride: int = 10,
    base_config: Optional[BLBPConfig] = None,
) -> Dict[str, float]:
    """Mean BLBP MPKI per sweep point over a suite subsample."""
    if traces is None:
        if scale is None:
            scale = env_scale()
        traces = [entry.generate() for entry in suite88_specs(scale)[::stride]]
    base = base_config or BLBPConfig()
    factories = {
        label: (lambda cfg: (lambda: BLBP(cfg)))(transform(base))
        for label, transform in points
    }
    campaign = run_campaign(list(traces), factories)
    return {label: campaign.mean_mpki(label) for label, _ in points}


def format_sweep(title: str, results: Dict[str, float]) -> str:
    lines = [f"{title}:"]
    peak = max(results.values()) or 1.0
    for label, mpki in results.items():
        bar = "#" * int(36 * mpki / peak)
        lines.append(f"  {label:<12} {mpki:8.4f}  {bar}")
    return "\n".join(lines)
