"""Design-space sweeps over BLBP's sizing parameters.

The paper fixes several design choices with one-line justifications:
§3.7 "we find four bits per weight sufficient to maintain a good
trade-off between accuracy and space-efficiency"; K = 12 predicted
bits; M = 1024-row tables.  These sweeps regenerate the evidence behind
those choices — accuracy as a function of each parameter at otherwise
paper-default configuration — so the claims can be checked rather than
quoted.  ``benchmarks/bench_sweeps.py`` runs them.

A sweep is a fixed one-axis grid, so it evaluates through the
:mod:`repro.search` batched evaluator: every sweep point is one
candidate, the whole sweep one candidate × trace campaign, and
``jobs > 1`` (or ``REPRO_JOBS``) spreads it across worker processes
with deterministic, serial-identical results.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import BLBPConfig, transfer_magnitudes_for
from repro.trace.stream import Trace
from repro.workloads.suite import env_scale, suite88_specs

#: A sweep: label -> config transformer.
SweepPoint = Tuple[str, Callable[[BLBPConfig], BLBPConfig]]


def weight_bits_sweep(values: Sequence[int] = (2, 3, 4, 5, 6)) -> List[SweepPoint]:
    """§3.7's weight-width trade-off.

    The transfer-magnitude table must match the weight range, so each
    point re-derives it via :func:`transfer_magnitudes_for`.
    """
    return [
        (
            f"weights={bits}b",
            (lambda b: lambda cfg: dataclasses.replace(
                cfg,
                weight_bits=b,
                transfer_magnitudes=transfer_magnitudes_for(b),
            ))(bits),
        )
        for bits in values
    ]


def target_bits_sweep(values: Sequence[int] = (4, 8, 12, 16)) -> List[SweepPoint]:
    """How many low-order target bits are worth predicting (K)."""
    return [
        (
            f"K={k}",
            (lambda kk: lambda cfg: dataclasses.replace(
                cfg, num_target_bits=kk
            ))(k),
        )
        for k in values
    ]


def table_rows_sweep(values: Sequence[int] = (128, 256, 512, 1024, 2048)) -> List[SweepPoint]:
    """Weight-table capacity (rows per sub-predictor array)."""
    return [
        (
            f"rows={rows}",
            (lambda r: lambda cfg: dataclasses.replace(cfg, table_rows=r))(rows),
        )
        for rows in values
    ]


def run_sweep(
    points: Sequence[SweepPoint],
    traces: Optional[Sequence[Trace]] = None,
    scale: Optional[float] = None,
    stride: int = 10,
    base_config: Optional[BLBPConfig] = None,
    jobs: Optional[int] = None,
) -> Dict[str, float]:
    """Mean BLBP MPKI per sweep point over a suite subsample.

    Evaluation goes through the search engine's batched evaluator: one
    exec-pool campaign for the whole sweep.  ``jobs=None`` reads
    ``REPRO_JOBS`` (default serial); results are identical either way.
    """
    from repro.search.evaluate import GenerationEvaluator, config_candidate

    if traces is None:
        if scale is None:
            scale = env_scale()
        traces = [entry.generate() for entry in suite88_specs(scale)[::stride]]
    base = base_config or BLBPConfig()
    candidates = [
        config_candidate(label, transform(base)) for label, transform in points
    ]
    with GenerationEvaluator(list(traces), jobs=jobs) as evaluator:
        scores = evaluator.score(candidates)
    return {
        candidate.key: score
        for candidate, score in zip(candidates, scores)
    }


def format_sweep(title: str, results: Dict[str, float]) -> str:
    lines = [f"{title}:"]
    peak = max(results.values()) or 1.0
    for label, mpki in results.items():
        bar = "#" * int(36 * mpki / peak)
        lines.append(f"  {label:<12} {mpki:8.4f}  {bar}")
    return "\n".join(lines)
