"""Interval tuning by hill-climbing — the paper's §3.6 methodology.

"The tuned intervals were found by starting with geometric histories
and improving with hill-climbing, changing the start or end of an
interval randomly and keeping the change if it improved MPKI."

This module implements exactly that loop so the reproduction can *re-run
the tuning*, not just quote its result: start from GEHL-style prefixes,
mutate one interval endpoint at a time, evaluate mean BLBP MPKI over a
trace set, and keep improvements.  ``examples/interval_tuning.py`` runs
it end-to-end and compares the tuned intervals with the paper's.

Evaluation is delegated to the :mod:`repro.search` engine: candidates
are scored through a :class:`~repro.search.evaluate.GenerationEvaluator`
(spill-once traces, exec-pool scheduling, score memoization), so
``jobs > 1`` parallelizes each candidate's trace set while keeping the
accept/reject walk — and the result — identical to the serial run.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import BLBPConfig, GEHL_INTERVALS
from repro.trace.stream import Trace

Interval = Tuple[int, int]


@dataclass
class TuningResult:
    """Outcome of a hill-climbing run."""

    initial_intervals: Tuple[Interval, ...]
    best_intervals: Tuple[Interval, ...]
    initial_mpki: float
    best_mpki: float
    #: (iteration, candidate mpki, accepted) per evaluated mutation.
    history: List[Tuple[int, float, bool]] = field(default_factory=list)
    #: RNG seed the mutation sequence was drawn from.
    seed: int = 0
    #: Wall-clock seconds per iteration (same order as ``history``).
    iteration_seconds: List[float] = field(default_factory=list)

    @property
    def improvement_percent(self) -> float:
        if self.initial_mpki == 0:
            return 0.0
        return 100.0 * (self.initial_mpki - self.best_mpki) / self.initial_mpki

    @property
    def accepted_steps(self) -> int:
        return sum(1 for _, _, accepted in self.history if accepted)


def mutate_interval(
    intervals: Tuple[Interval, ...],
    rng: np.random.Generator,
    max_position: int,
    max_step: int = 16,
) -> Tuple[Interval, ...]:
    """One hill-climbing move: nudge a random endpoint of one interval.

    Keeps every interval well-formed (0 <= start < end <= max_position).
    """
    index = int(rng.integers(len(intervals)))
    start, end = intervals[index]
    step = int(rng.integers(1, max_step + 1))
    if rng.random() < 0.5:
        step = -step
    if rng.random() < 0.5:
        start = min(max(0, start + step), end - 1)
    else:
        end = max(min(max_position, end + step), start + 1)
    mutated = list(intervals)
    mutated[index] = (start, end)
    return tuple(mutated)


def hill_climb_intervals(
    traces: Sequence[Trace],
    iterations: int = 50,
    base_config: Optional[BLBPConfig] = None,
    initial_intervals: Optional[Tuple[Interval, ...]] = None,
    seed: int = 0x7EAE,
    max_step: int = 16,
    jobs: Optional[int] = None,
) -> TuningResult:
    """Tune BLBP's history intervals on ``traces`` by hill-climbing.

    Args:
        traces: the tuning workload set (each iteration simulates BLBP
            over all of them, so keep it small).
        iterations: mutation attempts.
        base_config: BLBP configuration the intervals plug into.
        initial_intervals: starting point (defaults to GEHL prefixes, as
            the paper's procedure does).
        seed: RNG seed for the mutation sequence.
        max_step: largest endpoint nudge per move.
        jobs: worker processes for candidate evaluation (``None`` reads
            ``REPRO_JOBS``); the tuning walk itself is identical for
            any value.
    """
    from repro.search.evaluate import GenerationEvaluator, make_candidate
    from repro.search.space import IntervalsDimension, SearchSpace
    from repro.search.strategies import HillClimb

    if not traces:
        raise ValueError("need at least one tuning trace")
    if iterations < 0:
        raise ValueError(f"negative iterations {iterations}")
    base_config = base_config or BLBPConfig()
    intervals = tuple(tuple(pair) for pair in
                      (initial_intervals or GEHL_INTERVALS))

    space = SearchSpace(
        [
            IntervalsDimension(
                "intervals",
                count=len(intervals),
                max_position=base_config.global_history_bits,
                max_step=max_step,
            )
        ],
        base_config=base_config,
    )
    strategy = HillClimb(
        space, seed=seed, batch_size=1, initial={"intervals": intervals}
    )

    with GenerationEvaluator(traces, jobs=jobs) as evaluator:

        def score_next() -> Tuple[Tuple[Interval, ...], float, float]:
            proposal = strategy.propose()
            params = proposal.candidates[0]
            started = time.perf_counter()
            score = evaluator.score([make_candidate(space, params)])[0]
            elapsed = time.perf_counter() - started
            strategy.observe([(params, score)])
            return params["intervals"], score, elapsed

        _, initial_mpki, _ = score_next()
        result = TuningResult(
            initial_intervals=intervals,
            best_intervals=intervals,
            initial_mpki=initial_mpki,
            best_mpki=initial_mpki,
            seed=seed,
        )
        for iteration in range(iterations):
            previous_best = strategy.best_score
            candidate, mpki, elapsed = score_next()
            accepted = mpki < previous_best
            result.history.append((iteration, mpki, accepted))
            result.iteration_seconds.append(elapsed)
            if accepted:
                result.best_intervals = tuple(
                    tuple(pair) for pair in candidate
                )
                result.best_mpki = mpki
    return result


def tuning_result_to_json(result: TuningResult) -> dict:
    """A JSON-ready dict capturing a tuning run (for ``results/``)."""
    return {
        "seed": result.seed,
        "initial_intervals": [list(pair) for pair in result.initial_intervals],
        "best_intervals": [list(pair) for pair in result.best_intervals],
        "initial_mpki": result.initial_mpki,
        "best_mpki": result.best_mpki,
        "improvement_percent": result.improvement_percent,
        "accepted_steps": result.accepted_steps,
        "iterations": len(result.history),
        "history": [
            {"iteration": iteration, "mpki": mpki, "accepted": accepted}
            for iteration, mpki, accepted in result.history
        ],
        "iteration_seconds": list(result.iteration_seconds),
    }


def export_tuning_result(
    result: TuningResult, directory: Union[str, Path]
) -> List[Path]:
    """Write ``tuning.json`` + ``tuning_history.csv`` into ``directory``.

    The CSV goes through :func:`repro.experiments.figure_export
    .export_series`, so tuning runs land in ``results/`` in the same
    tidy format as the figure exports.
    """
    from repro.experiments.figure_export import export_series

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    json_path = directory / "tuning.json"
    json_path.write_text(
        json.dumps(tuning_result_to_json(result), indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )
    csv_path = export_series(
        [(str(iteration), mpki) for iteration, mpki, _ in result.history],
        directory / "tuning_history.csv",
        header=("iteration", "candidate_mpki"),
    )
    return [json_path, csv_path]


def format_tuning_result(result: TuningResult) -> str:
    lines = [
        "interval hill-climbing (paper §3.6 methodology):",
        f"  initial  {list(result.initial_intervals)}  "
        f"mpki {result.initial_mpki:.4f}",
        f"  tuned    {list(result.best_intervals)}  "
        f"mpki {result.best_mpki:.4f}",
        f"  improvement {result.improvement_percent:+.1f}% over "
        f"{result.accepted_steps} accepted of {len(result.history)} moves",
    ]
    return "\n".join(lines)
