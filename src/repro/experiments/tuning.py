"""Interval tuning by hill-climbing — the paper's §3.6 methodology.

"The tuned intervals were found by starting with geometric histories
and improving with hill-climbing, changing the start or end of an
interval randomly and keeping the change if it improved MPKI."

This module implements exactly that loop so the reproduction can *re-run
the tuning*, not just quote its result: start from GEHL-style prefixes,
mutate one interval endpoint at a time, evaluate mean BLBP MPKI over a
trace set, and keep improvements.  ``examples/interval_tuning.py`` runs
it end-to-end and compares the tuned intervals with the paper's.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core import BLBP
from repro.core.config import BLBPConfig, GEHL_INTERVALS
from repro.sim.engine import simulate
from repro.trace.stream import Trace

Interval = Tuple[int, int]


@dataclass
class TuningResult:
    """Outcome of a hill-climbing run."""

    initial_intervals: Tuple[Interval, ...]
    best_intervals: Tuple[Interval, ...]
    initial_mpki: float
    best_mpki: float
    #: (iteration, candidate mpki, accepted) per evaluated mutation.
    history: List[Tuple[int, float, bool]] = field(default_factory=list)

    @property
    def improvement_percent(self) -> float:
        if self.initial_mpki == 0:
            return 0.0
        return 100.0 * (self.initial_mpki - self.best_mpki) / self.initial_mpki

    @property
    def accepted_steps(self) -> int:
        return sum(1 for _, _, accepted in self.history if accepted)


def _mean_mpki(
    intervals: Tuple[Interval, ...],
    traces: Sequence[Trace],
    base_config: BLBPConfig,
) -> float:
    config = dataclasses.replace(base_config, intervals=intervals)
    values = [simulate(BLBP(config), trace).mpki() for trace in traces]
    return sum(values) / len(values)


def mutate_interval(
    intervals: Tuple[Interval, ...],
    rng: np.random.Generator,
    max_position: int,
    max_step: int = 16,
) -> Tuple[Interval, ...]:
    """One hill-climbing move: nudge a random endpoint of one interval.

    Keeps every interval well-formed (0 <= start < end <= max_position).
    """
    index = int(rng.integers(len(intervals)))
    start, end = intervals[index]
    step = int(rng.integers(1, max_step + 1))
    if rng.random() < 0.5:
        step = -step
    if rng.random() < 0.5:
        start = min(max(0, start + step), end - 1)
    else:
        end = max(min(max_position, end + step), start + 1)
    mutated = list(intervals)
    mutated[index] = (start, end)
    return tuple(mutated)


def hill_climb_intervals(
    traces: Sequence[Trace],
    iterations: int = 50,
    base_config: Optional[BLBPConfig] = None,
    initial_intervals: Optional[Tuple[Interval, ...]] = None,
    seed: int = 0x7EAE,
    max_step: int = 16,
) -> TuningResult:
    """Tune BLBP's history intervals on ``traces`` by hill-climbing.

    Args:
        traces: the tuning workload set (each iteration simulates BLBP
            over all of them, so keep it small).
        iterations: mutation attempts.
        base_config: BLBP configuration the intervals plug into.
        initial_intervals: starting point (defaults to GEHL prefixes, as
            the paper's procedure does).
        seed: RNG seed for the mutation sequence.
        max_step: largest endpoint nudge per move.
    """
    if not traces:
        raise ValueError("need at least one tuning trace")
    if iterations < 0:
        raise ValueError(f"negative iterations {iterations}")
    base_config = base_config or BLBPConfig()
    intervals = tuple(initial_intervals or GEHL_INTERVALS)
    max_position = base_config.global_history_bits
    rng = np.random.default_rng(seed)

    best_mpki = _mean_mpki(intervals, traces, base_config)
    result = TuningResult(
        initial_intervals=intervals,
        best_intervals=intervals,
        initial_mpki=best_mpki,
        best_mpki=best_mpki,
    )
    for iteration in range(iterations):
        candidate = mutate_interval(
            result.best_intervals, rng, max_position, max_step
        )
        mpki = _mean_mpki(candidate, traces, base_config)
        accepted = mpki < result.best_mpki
        result.history.append((iteration, mpki, accepted))
        if accepted:
            result.best_intervals = candidate
            result.best_mpki = mpki
    return result


def format_tuning_result(result: TuningResult) -> str:
    lines = [
        "interval hill-climbing (paper §3.6 methodology):",
        f"  initial  {list(result.initial_intervals)}  "
        f"mpki {result.initial_mpki:.4f}",
        f"  tuned    {list(result.best_intervals)}  "
        f"mpki {result.best_mpki:.4f}",
        f"  improvement {result.improvement_percent:+.1f}% over "
        f"{result.accepted_steps} accepted of {len(result.history)} moves",
    ]
    return "\n".join(lines)
