"""Figure 11: the effect of IBTB associativity (§5.3).

The IBTB holds 4,096 entries throughout; the sweep varies associativity
(4/8/16/32/64 ways, with sets adjusted to keep entries constant).  Low
associativity starves polymorphic branches of candidate slots and
causes conflict evictions between branches hashing to the same set; the
paper reports 1.09 MPKI at 4-way falling to 0.183 at 64-way, crossing
ITTAGE (0.19) between 32- and 64-way.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.core import BLBP
from repro.core.config import BLBPConfig
from repro.predictors import ITTAGE
from repro.sim.runner import run_campaign
from repro.trace.stream import Trace
from repro.workloads.suite import env_scale, suite88_specs

#: The associativities the paper sweeps (entries fixed at 4,096).
ASSOCIATIVITIES: Tuple[int, ...] = (4, 8, 16, 32, 64)
TOTAL_ENTRIES = 4096


def associativity_config(ways: int) -> BLBPConfig:
    """A paper config with the IBTB reshaped to ``ways`` ways."""
    if TOTAL_ENTRIES % ways != 0:
        raise ValueError(f"{ways} ways does not divide {TOTAL_ENTRIES} entries")
    return dataclasses.replace(
        BLBPConfig(), ibtb_ways=ways, ibtb_sets=TOTAL_ENTRIES // ways
    )


def associativity_traces(scale: Optional[float] = None, stride: int = 6) -> List[Trace]:
    """An evenly-spaced subsample of suite-88 for the sweep."""
    if scale is None:
        scale = env_scale()
    return [entry.generate() for entry in suite88_specs(scale)[::stride]]


def figure11(
    traces: Optional[List[Trace]] = None,
    scale: Optional[float] = None,
    stride: int = 6,
) -> List[Tuple[str, float]]:
    """(label, mean MPKI) for each associativity plus the ITTAGE bar."""
    if traces is None:
        traces = associativity_traces(scale, stride)
    factories = {"ITTAGE": ITTAGE}
    for ways in ASSOCIATIVITIES:
        factories[f"assoc={ways}"] = (
            lambda cfg: (lambda: BLBP(cfg))
        )(associativity_config(ways))
    campaign = run_campaign(traces, factories)
    results = [
        (f"assoc={ways}", campaign.mean_mpki(f"assoc={ways}"))
        for ways in ASSOCIATIVITIES
    ]
    results.append(("ITTAGE", campaign.mean_mpki("ITTAGE")))
    return results


def format_figure11(results: List[Tuple[str, float]]) -> str:
    lines = [
        "Figure 11: mean MPKI vs IBTB associativity (4,096 entries fixed)",
        "(paper: 1.09 / 0.57 / 0.27 / 0.19 / 0.183; ITTAGE 0.19)",
    ]
    peak = max(mpki for _, mpki in results) or 1.0
    for label, mpki in results:
        bar = "#" * int(40 * mpki / peak)
        lines.append(f"  {label:<9}  {mpki:7.4f}  {bar}")
    return "\n".join(lines)
