"""Memoized suite generation and campaign execution.

Several figures share the same expensive inputs — the generated
88-trace suite, its per-trace statistics, and the full 4-predictor
campaign.  Benchmarks run in one process (`pytest benchmarks/`), so a
process-level cache keyed on the scale factor lets Figure 8, Figure 9,
and the §5.1 headline all reuse a single campaign run instead of
tripling a multi-minute simulation.

Campaigns are keyed by predictor *name and factory identity* — two
different configurations registered under the same name occupy
different cache slots instead of silently aliasing (see
:func:`_factory_identity`).  When the ``REPRO_JOBS`` environment
variable requests more than one worker, campaigns run through the
parallel execution engine (:func:`repro.exec.run_campaign_parallel`),
which merges cells deterministically, so cached results are identical
either way.
"""

from __future__ import annotations

import functools
import os
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from repro.predictors.base import IndirectBranchPredictor
from repro.sim.metrics import CampaignResult
from repro.sim.runner import run_campaign
from repro.trace.stats import TraceStats, compute_stats
from repro.trace.stream import Trace
from repro.workloads.suite import build_cbp4_like_suite, env_scale, suite88_specs

_suite_cache: Dict[Tuple[str, float], List[Trace]] = {}
_stats_cache: Dict[Tuple[str, float], List[TraceStats]] = {}
_campaign_cache: Dict[Hashable, CampaignResult] = {}


def _resolve_scale(scale: Optional[float]) -> float:
    return env_scale() if scale is None else scale


def get_suite_traces(scale: Optional[float] = None, suite: str = "suite88") -> List[Trace]:
    """The generated trace suite, cached per (suite, scale)."""
    scale = _resolve_scale(scale)
    key = (suite, scale)
    if key not in _suite_cache:
        if suite == "suite88":
            _suite_cache[key] = [entry.generate() for entry in suite88_specs(scale)]
        elif suite == "cbp4":
            _suite_cache[key] = build_cbp4_like_suite(scale)
        else:
            raise ValueError(f"unknown suite {suite!r}")
    return _suite_cache[key]


def get_suite_stats(scale: Optional[float] = None, suite: str = "suite88") -> List[TraceStats]:
    """Per-trace workload statistics, cached per (suite, scale)."""
    scale = _resolve_scale(scale)
    key = (suite, scale)
    if key not in _stats_cache:
        _stats_cache[key] = [
            compute_stats(trace) for trace in get_suite_traces(scale, suite)
        ]
    return _stats_cache[key]


def _factory_identity(factory: Callable) -> Hashable:
    """A hashable identity distinguishing factories beyond their name.

    Importable classes/functions map to their stable ``(module,
    qualname)``; ``functools.partial`` recurses into its pieces so two
    partials over different configs differ.  Anything opaque — lambdas,
    closures, bound methods of distinct objects — is keyed by the
    object itself: conservative (a re-created closure re-runs the
    campaign) but never lets two different configurations alias one
    cache entry.  The key holds a reference to the object, so its
    identity cannot be recycled by the allocator while cached.
    """
    if isinstance(factory, functools.partial):
        return (
            "partial",
            _factory_identity(factory.func),
            tuple(repr(arg) for arg in factory.args),
            tuple(sorted((k, repr(v)) for k, v in factory.keywords.items())),
        )
    module = getattr(factory, "__module__", None)
    qualname = getattr(factory, "__qualname__", None)
    if module and qualname and "<" not in qualname:
        return (module, qualname)
    try:
        hash(factory)
    except TypeError:
        _identity_keepalive.append(factory)
        return ("object", id(factory))
    return ("object", factory)


#: Unhashable factories referenced by id() in cache keys; kept alive so
#: their ids stay unique for the process lifetime.
_identity_keepalive: List[Callable] = []


def _campaign_key(
    suite: str,
    scale: float,
    factories: Dict[str, Callable[[], IndirectBranchPredictor]],
) -> Hashable:
    return (
        suite,
        scale,
        tuple(
            (name, _factory_identity(factories[name]))
            for name in sorted(factories)
        ),
    )


def _env_jobs() -> int:
    """Worker count requested via REPRO_JOBS (1 when unset/invalid)."""
    raw = os.environ.get("REPRO_JOBS")
    if raw is None:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


def get_campaign(
    factories: Dict[str, Callable[[], IndirectBranchPredictor]],
    scale: Optional[float] = None,
    suite: str = "suite88",
) -> CampaignResult:
    """A campaign over the cached suite, cached per (name, factory) set.

    With ``REPRO_JOBS`` set above 1, the campaign is executed by the
    parallel engine; results are deterministic and identical to the
    serial path, so the cache never mixes semantics.
    """
    scale = _resolve_scale(scale)
    key = _campaign_key(suite, scale, factories)
    if key not in _campaign_cache:
        traces = get_suite_traces(scale, suite)
        jobs = _env_jobs()
        if jobs > 1:
            from repro.exec import run_campaign_parallel

            _campaign_cache[key] = run_campaign_parallel(
                traces, factories, jobs=jobs
            )
        else:
            _campaign_cache[key] = run_campaign(traces, factories)
    return _campaign_cache[key]


def clear_caches() -> None:
    """Drop all cached suites and campaigns (tests use this)."""
    _suite_cache.clear()
    _stats_cache.clear()
    _campaign_cache.clear()
    _identity_keepalive.clear()
