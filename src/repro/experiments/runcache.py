"""Memoized suite generation and campaign execution.

Several figures share the same expensive inputs — the generated
88-trace suite, its per-trace statistics, and the full 4-predictor
campaign.  Benchmarks run in one process (`pytest benchmarks/`), so a
process-level cache keyed on the scale factor lets Figure 8, Figure 9,
and the §5.1 headline all reuse a single campaign run instead of
tripling a multi-minute simulation.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.predictors.base import IndirectBranchPredictor
from repro.sim.metrics import CampaignResult
from repro.sim.runner import run_campaign
from repro.trace.stats import TraceStats, compute_stats
from repro.trace.stream import Trace
from repro.workloads.suite import build_cbp4_like_suite, env_scale, suite88_specs

_suite_cache: Dict[Tuple[str, float], List[Trace]] = {}
_stats_cache: Dict[Tuple[str, float], List[TraceStats]] = {}
_campaign_cache: Dict[Tuple[str, float, Tuple[str, ...]], CampaignResult] = {}


def _resolve_scale(scale: Optional[float]) -> float:
    return env_scale() if scale is None else scale


def get_suite_traces(scale: Optional[float] = None, suite: str = "suite88") -> List[Trace]:
    """The generated trace suite, cached per (suite, scale)."""
    scale = _resolve_scale(scale)
    key = (suite, scale)
    if key not in _suite_cache:
        if suite == "suite88":
            _suite_cache[key] = [entry.generate() for entry in suite88_specs(scale)]
        elif suite == "cbp4":
            _suite_cache[key] = build_cbp4_like_suite(scale)
        else:
            raise ValueError(f"unknown suite {suite!r}")
    return _suite_cache[key]


def get_suite_stats(scale: Optional[float] = None, suite: str = "suite88") -> List[TraceStats]:
    """Per-trace workload statistics, cached per (suite, scale)."""
    scale = _resolve_scale(scale)
    key = (suite, scale)
    if key not in _stats_cache:
        _stats_cache[key] = [
            compute_stats(trace) for trace in get_suite_traces(scale, suite)
        ]
    return _stats_cache[key]


def get_campaign(
    factories: Dict[str, Callable[[], IndirectBranchPredictor]],
    scale: Optional[float] = None,
    suite: str = "suite88",
) -> CampaignResult:
    """A campaign over the cached suite, cached per predictor-name set.

    Caching is keyed by predictor *names*; callers passing custom
    factories under standard names must not vary the factory for the
    same name within one process.
    """
    scale = _resolve_scale(scale)
    key = (suite, scale, tuple(sorted(factories)))
    if key not in _campaign_cache:
        _campaign_cache[key] = run_campaign(
            get_suite_traces(scale, suite), factories
        )
    return _campaign_cache[key]


def clear_caches() -> None:
    """Drop all cached suites and campaigns (tests use this)."""
    _suite_cache.clear()
    _stats_cache.clear()
    _campaign_cache.clear()
