"""One-shot results report: every experiment, one markdown file.

``generate_report`` runs the whole evaluation — suite statistics, the
4-predictor campaign, headline means with bootstrap confidence
intervals, per-category breakdowns, the ablation, and the associativity
sweep — and writes a self-contained markdown report plus the CSV figure
data.  The CLI exposes it as ``python -m repro report``.

For interactive use keep the scale/stride small; the full-suite default
is the benchmark harness's job.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

from repro.experiments.ablation import figure10, format_figure10
from repro.experiments.associativity import figure11, format_figure11
from repro.experiments.categories import category_means, format_category_means
from repro.experiments.configs import format_table2, predictor_factories
from repro.experiments.figure_export import export_all
from repro.experiments.figures import (
    format_figure6,
    format_figure7,
)
from repro.experiments.tables import PAPER_HEADLINE_MPKI, format_table1
from repro.sim.report import format_mpki_table
from repro.sim.runner import run_campaign
from repro.sim.statistics import paired_improvement
from repro.trace.stats import compute_stats
from repro.workloads.suite import suite88_specs


def generate_report(
    out_path: Union[str, Path],
    scale: float = 0.5,
    stride: int = 8,
    sweep_stride: Optional[int] = None,
) -> Path:
    """Run the evaluation and write a markdown report to ``out_path``.

    Args:
        out_path: destination .md file; CSV figure data lands next to it.
        scale: trace-length scale for this report run.
        stride: suite sampling stride for the main campaign (1 = all 88).
        sweep_stride: stride for the expensive ablation/associativity
            sweeps (defaults to 2x the campaign stride).
    """
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    if sweep_stride is None:
        sweep_stride = max(stride * 2, 1)

    entries = suite88_specs(scale)[::stride]
    traces = [entry.generate() for entry in entries]
    stats = [compute_stats(trace) for trace in traces]
    campaign = run_campaign(traces, predictor_factories())

    sections: List[str] = []
    sections.append(
        "# BLBP reproduction report\n\n"
        f"scale = {scale}, campaign over {len(traces)} of 88 suite traces "
        f"(stride {stride}); sweeps at stride {sweep_stride}.\n"
    )

    sections.append("## Suite (Table 1)\n\n```\n" + format_table1() + "\n```\n")
    sections.append(
        "## Hardware budgets (Table 2)\n\n```\n" + format_table2() + "\n```\n"
    )

    lines = ["## Headline (§5.1)", "", "```"]
    for name in ("BTB", "VPC", "ITTAGE", "BLBP"):
        lines.append(
            f"{name:<8} paper {PAPER_HEADLINE_MPKI[name]:>6.3f}   "
            f"measured {campaign.mean_mpki(name):8.4f}"
        )
    interval = paired_improvement(campaign, "ITTAGE", "BLBP")
    lines.append(
        f"BLBP vs ITTAGE: {interval.mean:+.1f}% "
        f"[{interval.low:+.1f}%, {interval.high:+.1f}%] at "
        f"{int(100 * interval.confidence)}% confidence (paper: +5.2%)"
    )
    lines.append("```\n")
    sections.append("\n".join(lines))

    sections.append(
        "## Per-group means\n\n```\n"
        + format_category_means(category_means(campaign, by="source"))
        + "\n\n"
        + format_category_means(category_means(campaign))
        + "\n```\n"
    )

    sections.append(
        "## Workload characterization (Figs. 6, 7)\n\n```\n"
        + format_figure6(stats)
        + "\n\n"
        + format_figure7(stats)
        + "\n```\n"
    )

    sections.append(
        "## Per-benchmark MPKI (Fig. 8)\n\n```\n"
        + format_mpki_table(
            campaign,
            predictor_order=("BTB", "VPC", "ITTAGE", "BLBP"),
            sort_by="BLBP",
        )
        + "\n```\n"
    )

    sweep_traces = [
        entry.generate() for entry in suite88_specs(scale)[::sweep_stride]
    ]
    sections.append(
        "## Optimization ablation (Fig. 10)\n\n```\n"
        + format_figure10(figure10(traces=sweep_traces))
        + "\n```\n"
    )
    sections.append(
        "## IBTB associativity (Fig. 11)\n\n```\n"
        + format_figure11(figure11(traces=sweep_traces))
        + "\n```\n"
    )

    csv_paths = export_all(stats, campaign, out_path.parent)
    sections.append(
        "## Figure data\n\n"
        + "\n".join(f"* `{path.name}`" for path in csv_paths)
        + "\n"
    )

    out_path.write_text("\n".join(sections))
    return out_path
