"""BLBP: the Bit-Level Perceptron-Based Indirect Branch Predictor.

This package implements the paper's contribution (§3): a predictor that
learns individual *bits* of indirect-branch targets with perceptron
weights over multiple branch-history features, then selects the stored
target (from a 64-way IBTB) whose bit pattern best matches the predicted
bit vector by non-normalized cosine similarity.

Modules:

* :mod:`repro.core.config` — every knob, plus the Fig. 10 optimization
  toggles and preset configurations (paper default, SNIP-style, GEHL);
* :mod:`repro.core.transfer` — the non-linear weight transfer function;
* :mod:`repro.core.threshold` — per-bit adaptive threshold training;
* :mod:`repro.core.regions` — region array for compressed targets;
* :mod:`repro.core.ibtb` — the RRIP-managed indirect BTB;
* :mod:`repro.core.histories` — BLBP's global/local history state;
* :mod:`repro.core.subpredictor` — weight banks (per-feature and the
  fused ``(N, rows, K)`` tensor the hot path uses);
* :mod:`repro.core.blbp` — the predictor tying it all together;
* :mod:`repro.core.reference` — the unoptimized per-bank reference
  implementation the equivalence suite pins :class:`BLBP` against.
"""

from repro.core.blbp import BLBP
from repro.core.frontend import ConsolidatedBLBPFrontend
from repro.core.hibtb import HierarchicalIBTB
from repro.core.config import (
    BLBPConfig,
    gehl_config,
    paper_config,
    unoptimized_config,
)
from repro.core.ibtb import IndirectBTB
from repro.core.reference import ReferenceBLBP
from repro.core.regions import RegionArray
from repro.core.snip import SNIP, SNIPConfig
from repro.core.threshold import PerBitAdaptiveThreshold
from repro.core.transfer import TransferFunction

__all__ = [
    "BLBP",
    "ReferenceBLBP",
    "BLBPConfig",
    "paper_config",
    "gehl_config",
    "unoptimized_config",
    "IndirectBTB",
    "HierarchicalIBTB",
    "ConsolidatedBLBPFrontend",
    "SNIP",
    "SNIPConfig",
    "RegionArray",
    "PerBitAdaptiveThreshold",
    "TransferFunction",
]
