"""The Indirect Branch Target Buffer (IBTB, §3.1).

A 64-set × 64-way set-associative store of observed indirect-branch
targets, indexed by branch PC, with 8-bit partial tags, 2-bit RRIP
replacement, and region-compressed targets.  A lookup returns *all*
targets whose partial tag matches the branch — the candidate set that
BLBP scores against its predicted bit vector (Fig. 2's "Possible
Targets").

Stale entries (whose region was recycled out of the region array) are
dropped lazily at lookup.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.common.hashing import mix_pc
from repro.common.replacement import RRIPPolicy
from repro.common.state import Stateful, check_state, require
from repro.core.regions import RegionArray


class _IBTBSet:
    """One set: parallel way arrays plus a tag→ways index and RRIP state."""

    __slots__ = (
        "ways",
        "tags",
        "regions",
        "generations",
        "offsets",
        "rrip",
        "by_tag",
        "version",
        "cache",
    )

    def __init__(self, num_ways: int, rrpv_bits: int) -> None:
        self.ways = num_ways
        self.tags: List[Optional[int]] = [None] * num_ways
        self.regions = [0] * num_ways
        self.generations = [0] * num_ways
        self.offsets = [0] * num_ways
        self.rrip = RRIPPolicy(num_ways, rrpv_bits)
        self.by_tag: dict = {}
        #: Bumped on any membership change; invalidates cached lookups.
        self.version = 0
        #: tag -> (set version, region version, candidate list).
        self.cache: dict = {}

    def invalidate(self, way: int) -> None:
        tag = self.tags[way]
        if tag is not None:
            ways = self.by_tag.get(tag)
            if ways is not None:
                ways.discard(way)
                if not ways:
                    del self.by_tag[tag]
        self.tags[way] = None
        self.version += 1

    def fill(self, way: int, tag: int, region: int, generation: int, offset: int) -> None:
        self.invalidate(way)
        self.tags[way] = tag
        self.regions[way] = region
        self.generations[way] = generation
        self.offsets[way] = offset
        self.by_tag.setdefault(tag, set()).add(way)
        self.version += 1

    def state_dict(self) -> Dict[str, Any]:
        # `by_tag` is an index over `tags`, `cache` a version-validated
        # memo, `version` its key space: all derived, all excluded.  A
        # restored set rebuilds `by_tag` eagerly and its cache lazily.
        return {
            "v": 1,
            "kind": "IBTBSet",
            "ways": self.ways,
            "tags": [None if tag is None else int(tag) for tag in self.tags],
            "regions": list(self.regions),
            "generations": list(self.generations),
            "offsets": list(self.offsets),
            "rrip": self.rrip.state_dict(),
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        check_state(state, "IBTBSet")
        require(state["ways"] == self.ways, "IBTB set way-count mismatch")
        tags = state["tags"]
        require(
            len(tags) == self.ways
            and len(state["regions"]) == self.ways
            and len(state["generations"]) == self.ways
            and len(state["offsets"]) == self.ways,
            "IBTB set arrays malformed",
        )
        self.tags = [None if tag is None else int(tag) for tag in tags]
        self.regions = [int(value) for value in state["regions"]]
        self.generations = [int(value) for value in state["generations"]]
        self.offsets = [int(value) for value in state["offsets"]]
        self.rrip.load_state(state["rrip"])
        self.by_tag = {}
        for way, tag in enumerate(self.tags):
            if tag is not None:
                self.by_tag.setdefault(tag, set()).add(way)
        self.version = 0
        self.cache = {}


class IndirectBTB(Stateful):
    """The RRIP-managed, region-compressed IBTB."""

    def __init__(
        self,
        num_sets: int = 64,
        num_ways: int = 64,
        tag_bits: int = 8,
        rrpv_bits: int = 2,
        regions: Optional[RegionArray] = None,
    ) -> None:
        if num_sets < 1 or num_ways < 1:
            raise ValueError("IBTB needs >= 1 set and >= 1 way")
        if tag_bits < 1:
            raise ValueError(f"need >= 1 tag bits, got {tag_bits}")
        self.num_sets = num_sets
        self.num_ways = num_ways
        self.tag_bits = tag_bits
        self.rrpv_bits = rrpv_bits
        self.regions = regions if regions is not None else RegionArray()
        self._sets = [_IBTBSet(num_ways, rrpv_bits) for _ in range(num_sets)]

    def _locate(self, pc: int) -> Tuple[_IBTBSet, int]:
        hashed = mix_pc(pc)
        set_index = hashed % self.num_sets
        tag = (hashed >> 12) & ((1 << self.tag_bits) - 1)
        return self._sets[set_index], tag

    def _candidates(self, bucket: _IBTBSet, tag: int) -> List[Tuple[int, int]]:
        """(way, target) pairs for ``tag``, via the per-set lookup cache.

        A cached result stays valid while neither the set's membership
        nor any region mapping has changed (RRIP promotions change
        neither), which covers the common predict→train→predict run on a
        hot branch.  Stale region references are invalidated on a miss.
        The returned list is shared with the cache — callers must not
        mutate it.
        """
        regions = self.regions
        cached = bucket.cache.get(tag)
        if (
            cached is not None
            and cached[0] == bucket.version
            and cached[1] == regions.version
        ):
            return cached[2]
        candidates: List[Tuple[int, int]] = []
        ways = bucket.by_tag.get(tag)
        if ways:
            stale: List[int] = []
            for way in sorted(ways):
                target = regions.decode(
                    bucket.regions[way], bucket.generations[way], bucket.offsets[way]
                )
                if target is None:
                    stale.append(way)
                else:
                    candidates.append((way, target))
            for way in stale:
                bucket.invalidate(way)
        bucket.cache[tag] = (bucket.version, regions.version, candidates)
        return candidates

    def lookup(self, pc: int) -> List[Tuple[int, int]]:
        """All (way, target) candidates whose partial tag matches ``pc``.

        Stale region references are invalidated on the way through, so
        the returned targets are always decodable.  The list may be a
        cached object shared across calls — treat it as read-only.
        """
        bucket, tag = self._locate(pc)
        return self._candidates(bucket, tag)

    def ensure(self, pc: int, target: int) -> int:
        """Guarantee ``target`` is stored for ``pc``; return its way.

        On a hit the way's RRIP value is promoted; on a fill the RRIP
        victim is evicted and the new way gets the insertion RRPV.
        """
        bucket, tag = self._locate(pc)
        for way, stored in self._candidates(bucket, tag):
            if stored == target:
                bucket.rrip.touch(way)
                return way
        region, generation, offset = self.regions.encode(target)
        victim = bucket.rrip.victim()
        bucket.fill(victim, tag, region, generation, offset)
        bucket.rrip.insert(victim)
        return victim

    def touch(self, pc: int, way: int) -> None:
        """Promote ``way`` in the set for ``pc`` (correct-use hit)."""
        bucket, _ = self._locate(pc)
        bucket.rrip.touch(way)

    def occupancy(self) -> int:
        """Total live entries across all sets."""
        return sum(
            sum(1 for tag in bucket.tags if tag is not None)
            for bucket in self._sets
        )

    def storage_bits(self) -> int:
        """IBTB state: tag + region number + offset + RRPV per entry."""
        region_number_bits = max(1, (self.regions.num_entries - 1).bit_length())
        entry_bits = (
            self.tag_bits
            + region_number_bits
            + self.regions.offset_bits
            + self.rrpv_bits
        )
        return self.num_sets * self.num_ways * entry_bits

    def state_dict(self) -> Dict[str, Any]:
        return {
            "v": 1,
            "kind": "IndirectBTB",
            "num_sets": self.num_sets,
            "num_ways": self.num_ways,
            "tag_bits": self.tag_bits,
            "rrpv_bits": self.rrpv_bits,
            "regions": self.regions.state_dict(),
            "sets": [bucket.state_dict() for bucket in self._sets],
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        check_state(state, "IndirectBTB")
        require(
            state["num_sets"] == self.num_sets
            and state["num_ways"] == self.num_ways
            and state["tag_bits"] == self.tag_bits
            and state["rrpv_bits"] == self.rrpv_bits,
            "IndirectBTB geometry mismatch",
        )
        require(len(state["sets"]) == self.num_sets, "IBTB set count mismatch")
        # Regions load in place: the array object may be shared (e.g.
        # the hierarchical IBTB's L1/L2 share one RegionArray).
        self.regions.load_state(state["regions"])
        for bucket, bucket_state in zip(self._sets, state["sets"]):
            bucket.load_state(bucket_state)
