"""Bit-level perceptron weight banks (§3.2).

Where a hashed perceptron trains a single weight per (table, row), BLBP
trains a K-length *vector* of weights — one per predicted target bit.
A :class:`WeightBank` is one such table: M rows of K sign/magnitude
weights, realized as one SRAM array in hardware (§3.7 notes the full
predictor needs only 8 such arrays, down from SNIP's 44).

:class:`FusedWeightBanks` holds all N banks in a single ``(N, rows, K)``
``int8`` tensor so the predictor's hot path touches NumPy once per
operation — one fancy-index gather for prediction, one masked
scatter-add for training — instead of looping over N bank objects.
The per-bank :class:`WeightBank` is kept as the readable single-table
reference (and the unit under test for the weight arithmetic); the
reference-equivalence suite pins the two representations to identical
behaviour.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from repro.common.state import (
    Stateful,
    check_state,
    decode_array,
    encode_array,
    require,
)


class WeightBank(Stateful):
    """An M×K table of saturating sign/magnitude perceptron weights."""

    __slots__ = ("rows", "num_bits", "magnitude", "weights")

    def __init__(self, rows: int, num_bits: int, weight_bits: int) -> None:
        if rows < 1:
            raise ValueError(f"need >= 1 rows, got {rows}")
        if num_bits < 1:
            raise ValueError(f"need >= 1 weight positions, got {num_bits}")
        if weight_bits < 2:
            raise ValueError(f"weight_bits must be >= 2, got {weight_bits}")
        self.rows = rows
        self.num_bits = num_bits
        self.magnitude = (1 << (weight_bits - 1)) - 1
        self.weights = np.zeros((rows, num_bits), dtype=np.int8)

    def read(self, row: int) -> np.ndarray:
        """The K-length weight vector at ``row`` (a live view)."""
        return self.weights[row]

    def train(self, row: int, desired_bits: np.ndarray, train_mask: np.ndarray) -> None:
        """Nudge masked weights toward ``desired_bits`` (Algorithm 2).

        Weights for bit positions where ``train_mask`` holds move +1 when
        the actual target's bit is 1 and −1 when it is 0, saturating at
        ±magnitude.
        """
        vector = self.weights[row].astype(np.int16)
        delta = np.where(desired_bits, 1, -1)
        vector += np.where(train_mask, delta, 0)
        np.clip(vector, -self.magnitude, self.magnitude, out=vector)
        self.weights[row] = vector.astype(np.int8)

    def storage_bits(self, weight_bits: int) -> int:
        return self.rows * self.num_bits * weight_bits

    def state_dict(self) -> Dict[str, Any]:
        return {
            "v": 1,
            "kind": "WeightBank",
            "rows": self.rows,
            "num_bits": self.num_bits,
            "magnitude": self.magnitude,
            "weights": encode_array(self.weights),
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        check_state(state, "WeightBank")
        require(
            state["rows"] == self.rows
            and state["num_bits"] == self.num_bits
            and state["magnitude"] == self.magnitude,
            "WeightBank geometry mismatch",
        )
        weights = decode_array(state["weights"])
        require(
            weights.shape == self.weights.shape
            and weights.dtype == self.weights.dtype,
            "WeightBank tensor shape/dtype mismatch",
        )
        # In-place copy: callers may hold live views of the tensor.
        self.weights[...] = weights


class BankView:
    """A read view of one bank inside a :class:`FusedWeightBanks` tensor.

    Presents the :class:`WeightBank` surface that introspection code
    (tests, storage accounting, examples) relies on; ``weights`` is a
    live ``(rows, K)`` NumPy view into the fused tensor.
    """

    __slots__ = ("rows", "num_bits", "magnitude", "weights")

    def __init__(self, weights: np.ndarray, magnitude: int) -> None:
        self.weights = weights
        self.rows, self.num_bits = weights.shape
        self.magnitude = magnitude

    def read(self, row: int) -> np.ndarray:
        """The K-length weight vector at ``row`` (a live view)."""
        return self.weights[row]

    def storage_bits(self, weight_bits: int) -> int:
        return self.rows * self.num_bits * weight_bits


class FusedWeightBanks(Stateful):
    """All N sub-predictor banks in one ``(N, rows, K)`` int8 tensor.

    ``gather(rows)`` returns the N selected weight vectors as one
    ``(N, K)`` matrix; ``train(rows, desired_bits, train_mask)`` applies
    Algorithm 2's masked ±1 saturating update to all N selected rows at
    once.  Per-element arithmetic is identical to N independent
    :class:`WeightBank` operations (int16 accumulate, clip to
    ±magnitude, int8 store), and bank b only ever touches plane b of
    the tensor, so the fused update cannot alias across banks.
    """

    __slots__ = ("num_banks", "rows", "num_bits", "magnitude", "weights",
                 "_bank_arange")

    def __init__(
        self, num_banks: int, rows: int, num_bits: int, weight_bits: int
    ) -> None:
        if num_banks < 1:
            raise ValueError(f"need >= 1 banks, got {num_banks}")
        if rows < 1:
            raise ValueError(f"need >= 1 rows, got {rows}")
        if num_bits < 1:
            raise ValueError(f"need >= 1 weight positions, got {num_bits}")
        if weight_bits < 2:
            raise ValueError(f"weight_bits must be >= 2, got {weight_bits}")
        self.num_banks = num_banks
        self.rows = rows
        self.num_bits = num_bits
        self.magnitude = (1 << (weight_bits - 1)) - 1
        self.weights = np.zeros((num_banks, rows, num_bits), dtype=np.int8)
        self._bank_arange = np.arange(num_banks)

    def gather(self, rows: np.ndarray) -> np.ndarray:
        """The ``(N, K)`` weight matrix selected by per-bank ``rows``."""
        return self.weights[self._bank_arange, rows]

    def train(
        self, rows: np.ndarray, desired_bits: np.ndarray, train_mask: np.ndarray
    ) -> None:
        """Masked saturating ±1 update of every bank's selected row."""
        selected = self.weights[self._bank_arange, rows].astype(np.int16)
        delta = np.where(desired_bits, 1, -1)
        selected += np.where(train_mask, delta, 0)
        np.clip(selected, -self.magnitude, self.magnitude, out=selected)
        self.weights[self._bank_arange, rows] = selected.astype(np.int8)

    def bank_views(self) -> List[BankView]:
        """Per-bank views (introspection; the hot path never needs them)."""
        return [
            BankView(self.weights[bank], self.magnitude)
            for bank in range(self.num_banks)
        ]

    def storage_bits(self, weight_bits: int) -> int:
        return self.num_banks * self.rows * self.num_bits * weight_bits

    def state_dict(self) -> Dict[str, Any]:
        return {
            "v": 1,
            "kind": "FusedWeightBanks",
            "num_banks": self.num_banks,
            "rows": self.rows,
            "num_bits": self.num_bits,
            "magnitude": self.magnitude,
            "weights": encode_array(self.weights),
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        check_state(state, "FusedWeightBanks")
        require(
            state["num_banks"] == self.num_banks
            and state["rows"] == self.rows
            and state["num_bits"] == self.num_bits
            and state["magnitude"] == self.magnitude,
            "FusedWeightBanks geometry mismatch",
        )
        weights = decode_array(state["weights"])
        require(
            weights.shape == self.weights.shape
            and weights.dtype == self.weights.dtype,
            "FusedWeightBanks tensor shape/dtype mismatch",
        )
        # In-place copy: BankViews hold live views of the tensor.
        self.weights[...] = weights
