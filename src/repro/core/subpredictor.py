"""One bit-level perceptron weight bank (§3.2).

Where a hashed perceptron trains a single weight per (table, row), BLBP
trains a K-length *vector* of weights — one per predicted target bit.
A :class:`WeightBank` is one such table: M rows of K sign/magnitude
weights, realized as one SRAM array in hardware (§3.7 notes the full
predictor needs only 8 such arrays, down from SNIP's 44).
"""

from __future__ import annotations

import numpy as np


class WeightBank:
    """An M×K table of saturating sign/magnitude perceptron weights."""

    __slots__ = ("rows", "num_bits", "magnitude", "weights")

    def __init__(self, rows: int, num_bits: int, weight_bits: int) -> None:
        if rows < 1:
            raise ValueError(f"need >= 1 rows, got {rows}")
        if num_bits < 1:
            raise ValueError(f"need >= 1 weight positions, got {num_bits}")
        if weight_bits < 2:
            raise ValueError(f"weight_bits must be >= 2, got {weight_bits}")
        self.rows = rows
        self.num_bits = num_bits
        self.magnitude = (1 << (weight_bits - 1)) - 1
        self.weights = np.zeros((rows, num_bits), dtype=np.int8)

    def read(self, row: int) -> np.ndarray:
        """The K-length weight vector at ``row`` (a live view)."""
        return self.weights[row]

    def train(self, row: int, desired_bits: np.ndarray, train_mask: np.ndarray) -> None:
        """Nudge masked weights toward ``desired_bits`` (Algorithm 2).

        Weights for bit positions where ``train_mask`` holds move +1 when
        the actual target's bit is 1 and −1 when it is 0, saturating at
        ±magnitude.
        """
        vector = self.weights[row].astype(np.int16)
        delta = np.where(desired_bits, 1, -1)
        vector += np.where(train_mask, delta, 0)
        np.clip(vector, -self.magnitude, self.magnitude, out=vector)
        self.weights[row] = vector.astype(np.int8)

    def storage_bits(self, weight_bits: int) -> int:
        return self.rows * self.num_bits * weight_bits
