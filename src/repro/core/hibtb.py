"""Hierarchical IBTB — the paper's §6 future-work direction.

The Table 2 IBTB is 64-way set-associative, which §5.3 shows is needed
for accuracy but §6 flags as an implementation concern ("we plan to
explore ways of avoiding the high associativity of the IBTB, perhaps
using a hierarchy of structures").  This module implements that idea:

* **L1**: a small fully-associative buffer of recently-used targets
  (LRU), giving every hot branch its handful of live targets at low
  lookup cost;
* **L2**: a larger, low-associativity (RRIP) set-associative store that
  catches L1 victims and cold targets.

Lookups merge both levels (deduplicated); insertions fill L1 and spill
L1 victims into L2; a correct prediction promotes its entry.  The bench
``benchmarks/bench_hierarchy.py`` shows the hierarchy recovering most of
the 64-way monolithic IBTB's accuracy at 8-way L2 cost.

The class is interface-compatible with
:class:`repro.core.ibtb.IndirectBTB` — ``lookup`` returns (handle,
target) pairs whose handles are only ever passed back to ``touch``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.common.state import Stateful, check_state, require
from repro.core.ibtb import IndirectBTB
from repro.core.regions import RegionArray

#: Handle marking which level an entry came from.
_L1 = 0
_L2 = 1


class _L1Buffer:
    """Small fully-associative (pc, target) buffer with LRU.

    Entries keep the branch PC so victims can be re-filed into L2 under
    the same key the branch's lookups use.  (Hardware stores a partial
    tag wide enough to regenerate the L2 index; the simulator keeps the
    PC itself and charges a tag's worth of bits.)
    """

    def __init__(self, entries: int, tag_bits: int = 16) -> None:
        self.entries = entries
        self.tag_bits = tag_bits
        self._slots: List[Optional[Tuple[int, int]]] = [None] * entries
        self._recency: List[int] = []

    def lookup(self, pc: int) -> List[Tuple[int, int]]:
        return [
            (slot, entry[1])
            for slot, entry in enumerate(self._slots)
            if entry is not None and entry[0] == pc
        ]

    def touch(self, slot: int) -> None:
        if slot in self._recency:
            self._recency.remove(slot)
        self._recency.insert(0, slot)

    def insert(self, pc: int, target: int) -> Tuple[int, Optional[Tuple[int, int]]]:
        """Insert; returns (slot, spilled (pc, target) or None)."""
        for slot, entry in enumerate(self._slots):
            if entry == (pc, target):
                self.touch(slot)
                return slot, None
        victim = None
        for slot, entry in enumerate(self._slots):
            if entry is None:
                victim = slot
                break
        spilled = None
        if victim is None:
            untouched = [s for s in range(self.entries) if s not in self._recency]
            victim = untouched[0] if untouched else self._recency[-1]
            spilled = self._slots[victim]
        self._slots[victim] = (pc, target)
        self.touch(victim)
        return victim, spilled

    def live_entries(self) -> int:
        return sum(1 for entry in self._slots if entry is not None)

    def storage_bits(self) -> int:
        target_bits = 27  # region-compressed, as elsewhere
        lru_bits = max(1, (self.entries - 1).bit_length())
        return self.entries * (self.tag_bits + target_bits + lru_bits)

    def state_dict(self) -> Dict[str, Any]:
        return {
            "v": 1,
            "kind": "L1Buffer",
            "entries": self.entries,
            "tag_bits": self.tag_bits,
            "slots": [
                None if slot is None else [slot[0], slot[1]]
                for slot in self._slots
            ],
            "recency": list(self._recency),
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        check_state(state, "L1Buffer")
        require(
            state["entries"] == self.entries
            and state["tag_bits"] == self.tag_bits,
            "L1 buffer geometry mismatch",
        )
        slots = state["slots"]
        require(len(slots) == self.entries, "L1 slot count mismatch")
        self._slots = [
            None if slot is None else (int(slot[0]), int(slot[1]))
            for slot in slots
        ]
        self._recency = [int(slot) for slot in state["recency"]]


class HierarchicalIBTB(Stateful):
    """Two-level IBTB: small fully-associative L1 over a low-assoc L2."""

    def __init__(
        self,
        l1_entries: int = 64,
        l2_sets: int = 512,
        l2_ways: int = 8,
        tag_bits: int = 8,
        rrpv_bits: int = 2,
        regions: Optional[RegionArray] = None,
    ) -> None:
        if l1_entries < 1:
            raise ValueError(f"need >= 1 L1 entries, got {l1_entries}")
        self.regions = regions if regions is not None else RegionArray()
        self._l1 = _L1Buffer(l1_entries)
        self._l2 = IndirectBTB(
            num_sets=l2_sets,
            num_ways=l2_ways,
            tag_bits=tag_bits,
            rrpv_bits=rrpv_bits,
            regions=self.regions,
        )

    def lookup(self, pc: int) -> List[Tuple[Tuple[int, int], int]]:
        """Merged (handle, target) candidates from both levels."""
        candidates: List[Tuple[Tuple[int, int], int]] = []
        seen = set()
        for slot, target in self._l1.lookup(pc):
            candidates.append(((_L1, slot), target))
            seen.add(target)
        for way, target in self._l2.lookup(pc):
            if target not in seen:
                candidates.append(((_L2, way), target))
                seen.add(target)
        return candidates

    def ensure(self, pc: int, target: int) -> Tuple[int, int]:
        """Install ``target`` in L1, spilling the L1 victim into L2."""
        slot, spilled = self._l1.insert(pc, target)
        if spilled is not None:
            spill_pc, spill_target = spilled
            self._l2.ensure(spill_pc, spill_target)
        return (_L1, slot)

    def touch(self, pc: int, handle: Tuple[int, int]) -> None:
        level, position = handle
        if level == _L1:
            self._l1.touch(position)
        else:
            self._l2.touch(pc, position)

    def occupancy(self) -> int:
        return self._l1.live_entries() + self._l2.occupancy()

    def storage_bits(self) -> int:
        return self._l1.storage_bits() + self._l2.storage_bits()

    def state_dict(self) -> Dict[str, Any]:
        # The shared RegionArray rides inside the L2 snapshot; loading
        # the L2 restores it in place for both levels.
        return {
            "v": 1,
            "kind": "HierarchicalIBTB",
            "l1": self._l1.state_dict(),
            "l2": self._l2.state_dict(),
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        check_state(state, "HierarchicalIBTB")
        self._l1.load_state(state["l1"])
        self._l2.load_state(state["l2"])
