"""The consolidated BLBP front-end (§6's closing idea).

§6: "We also plan to explore how BLBP might be used to predict
conditional branches as well as indirect branches as VPC does, allowing
consolidation of the two structures."  This class is that front-end:
one BLBP instance for indirect targets and one
:class:`~repro.cond.blbp_cond.BLBPConditional` lane for directions,
sharing the same configuration (feature set, transfer function,
threshold discipline) so a hardware implementation could bank them in
the same SRAM arrays.

Interface-compatible with :func:`repro.sim.frontend.simulate_frontend`
(and with COTTAGE/VPC for side-by-side comparison).
"""

from __future__ import annotations

from typing import Optional

from repro.common.state import check_state
from repro.common.storage import StorageBudget
from repro.cond.blbp_cond import BLBPConditional
from repro.core.blbp import BLBP
from repro.core.config import BLBPConfig
from repro.predictors.base import IndirectBranchPredictor


class ConsolidatedBLBPFrontend(IndirectBranchPredictor):
    """BLBP targets + BLBP-cond directions behind one interface."""

    name = "BLBP-frontend"

    def __init__(self, config: Optional[BLBPConfig] = None) -> None:
        self.config = config or BLBPConfig()
        self.indirect = BLBP(self.config)
        self.conditional = BLBPConditional(self.config)
        self.conditional_count = 0
        self.conditional_mispredictions = 0

    # Indirect side -----------------------------------------------------

    def predict_target(self, pc: int) -> Optional[int]:
        return self.indirect.predict_target(pc)

    def train(self, pc: int, target: int) -> None:
        self.indirect.train(pc, target)

    def on_retired(self, pc: int, branch_type: int, target: int) -> None:
        self.indirect.on_retired(pc, branch_type, target)

    # Conditional side ----------------------------------------------------

    def on_conditional(self, pc: int, taken: bool) -> None:
        predicted = self.conditional.predict(pc)
        self.conditional_count += 1
        if predicted != taken:
            self.conditional_mispredictions += 1
        self.conditional.update(pc, taken)
        # The indirect half consumes the same outcome stream (§3.3).
        self.indirect.on_conditional(pc, taken)

    def conditional_accuracy(self) -> float:
        if self.conditional_count == 0:
            return 1.0
        return 1.0 - self.conditional_mispredictions / self.conditional_count

    # Snapshot/restore --------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "v": 1,
            "kind": "ConsolidatedBLBPFrontend",
            "indirect": self.indirect.state_dict(),
            "conditional": self.conditional.state_dict(),
            "conditional_count": self.conditional_count,
            "conditional_mispredictions": self.conditional_mispredictions,
        }

    def load_state(self, state: dict) -> None:
        check_state(state, "ConsolidatedBLBPFrontend")
        self.indirect.load_state(state["indirect"])
        self.conditional.load_state(state["conditional"])
        self.conditional_count = int(state["conditional_count"])
        self.conditional_mispredictions = int(
            state["conditional_mispredictions"]
        )

    # ------------------------------------------------------------------

    def storage_budget(self) -> StorageBudget:
        budget = StorageBudget(self.name)
        for component, bits in self.indirect.storage_budget().items:
            budget.add(f"targets: {component}", bits)
        for component, bits in self.conditional.storage_budget().items:
            budget.add(f"directions: {component}", bits)
        return budget
