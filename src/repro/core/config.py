"""Configuration for BLBP, including the Fig. 10 optimization toggles.

The defaults follow Table 2 and §3/§4.2 of the paper:

* K = 12 predicted target bits, 4-bit sign/magnitude weights;
* N = 8 sub-predictors: one local-history table plus seven tables
  indexed by the tuned global-history intervals
  (0,13), (1,33), (23,49), (44,85), (77,149), (159,270), (252,630);
* 630-bit global history of conditional outcomes, 256 × 10-bit local
  histories recording bit 3 of each branch's targets;
* a 64-set × 64-way IBTB with 8-bit partial tags, 2-bit RRIP, and
  region-compressed targets (128-entry region array, 7-bit region
  number, 20-bit offset).

Every §3.6 optimization has an independent toggle so the ablation study
of Fig. 10 can switch each on/off; :func:`unoptimized_config` is the
SNIP-like "all optimizations off" point and :func:`gehl_config` replaces
the tuned intervals with plain geometric history lengths.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Tuple

#: The paper's tuned global-history intervals (§3.6).
PAPER_INTERVALS: Tuple[Tuple[int, int], ...] = (
    (0, 13),
    (1, 33),
    (23, 49),
    (44, 85),
    (77, 149),
    (159, 270),
    (252, 630),
)

#: Geometric (GEHL-style) history lengths covering the same range; used
#: when ``use_intervals`` is off.  Each interval starts at position 0.
GEHL_INTERVALS: Tuple[Tuple[int, int], ...] = (
    (0, 4),
    (0, 10),
    (0, 24),
    (0, 55),
    (0, 125),
    (0, 281),
    (0, 630),
)

#: Empirically-tuned convex magnitude map for the transfer function
#: (Fig. 5 is given only graphically; see repro.core.transfer).
DEFAULT_TRANSFER_MAGNITUDES: Tuple[int, ...] = (0, 1, 2, 3, 5, 8, 12, 17)


@dataclass(frozen=True)
class BLBPConfig:
    """All sizing and behaviour knobs of the BLBP predictor."""

    # --- bit-level perceptron machinery -------------------------------
    num_target_bits: int = 12          # K: predicted low-order target bits
    low_bit: int = 2                   # first predicted bit (4-byte aligned code)
    weight_bits: int = 4               # sign/magnitude → weights in [-7, +7]
    table_rows: int = 1024             # M rows per sub-predictor table
    intervals: Tuple[Tuple[int, int], ...] = PAPER_INTERVALS
    global_history_bits: int = 630

    # --- local history (§3.6) -----------------------------------------
    local_histories: int = 256
    local_history_bits: int = 10
    local_target_bit: int = 3          # target bit recorded in local history

    # --- IBTB (§3.1) ---------------------------------------------------
    ibtb_sets: int = 64
    ibtb_ways: int = 64
    ibtb_tag_bits: int = 8
    rrip_bits: int = 2

    # --- region compression (§3.6) --------------------------------------
    region_entries: int = 128
    region_offset_bits: int = 20

    # --- hierarchical IBTB (§6 future work) ------------------------------
    #: Replace the monolithic 64-way IBTB with a two-level hierarchy
    #: (small fully-associative L1 + low-associativity L2); see
    #: repro.core.hibtb.
    use_hierarchical_ibtb: bool = False
    hibtb_l1_entries: int = 64
    hibtb_l2_sets: int = 512
    hibtb_l2_ways: int = 8

    # --- adaptive threshold (§3.6) ---------------------------------------
    initial_theta: int = 14
    theta_counter_bits: int = 7

    # --- optimization toggles (Fig. 10) ----------------------------------
    use_local_history: bool = True
    use_intervals: bool = True
    use_selective_update: bool = True
    use_transfer_function: bool = True
    use_adaptive_threshold: bool = True

    transfer_magnitudes: Tuple[int, ...] = DEFAULT_TRANSFER_MAGNITUDES

    def __post_init__(self) -> None:
        if self.num_target_bits < 1:
            raise ValueError(f"need >= 1 target bits, got {self.num_target_bits}")
        if self.low_bit < 0:
            raise ValueError(f"low_bit must be >= 0, got {self.low_bit}")
        if self.weight_bits < 2:
            raise ValueError(f"weight_bits must be >= 2, got {self.weight_bits}")
        if self.table_rows < 1:
            raise ValueError(f"table_rows must be >= 1, got {self.table_rows}")
        if self.global_history_bits < 1:
            raise ValueError(
                f"global_history_bits must be >= 1, got {self.global_history_bits}"
            )
        if self.local_histories < 1 or self.local_history_bits < 1:
            raise ValueError(
                "local history needs >= 1 entry of >= 1 bit, got "
                f"{self.local_histories} x {self.local_history_bits}"
            )
        if self.ibtb_sets < 1 or self.ibtb_ways < 1:
            raise ValueError("IBTB must have >= 1 set and >= 1 way")
        if self.region_entries < 1 or self.region_offset_bits < 1:
            raise ValueError(
                "region compression needs >= 1 entry and >= 1 offset bit, got "
                f"{self.region_entries} entries / {self.region_offset_bits} bits"
            )
        if self.initial_theta < 1 or self.theta_counter_bits < 1:
            raise ValueError(
                f"adaptive threshold needs theta >= 1 (got {self.initial_theta}) "
                f"and >= 1 counter bit (got {self.theta_counter_bits})"
            )
        max_magnitude = (1 << (self.weight_bits - 1)) - 1
        if len(self.transfer_magnitudes) != max_magnitude + 1:
            raise ValueError(
                f"transfer_magnitudes needs {max_magnitude + 1} entries for "
                f"{self.weight_bits}-bit weights, got {len(self.transfer_magnitudes)}"
            )
        # Intervals are half-open [start, end): (252, 630) covers history
        # positions 252..629, the oldest outcomes of the 630-bit history.
        for start, end in self.intervals:
            if not 0 <= start < end:
                raise ValueError(f"malformed interval ({start}, {end})")
            if end > self.global_history_bits:
                raise ValueError(
                    f"interval ({start}, {end}) exceeds global history "
                    f"({self.global_history_bits} bits)"
                )

    @property
    def num_subpredictors(self) -> int:
        """N: the local/bias table plus one table per interval."""
        return 1 + len(self.effective_intervals)

    @property
    def effective_intervals(self) -> Tuple[Tuple[int, int], ...]:
        """The intervals actually in use (GEHL lengths when toggled off)."""
        return self.intervals if self.use_intervals else GEHL_INTERVALS

    @property
    def weight_magnitude(self) -> int:
        """Saturation magnitude for sign/magnitude weights."""
        return (1 << (self.weight_bits - 1)) - 1


def transfer_magnitudes_for(weight_bits: int) -> Tuple[int, ...]:
    """A transfer-magnitude table sized for ``weight_bits``-bit weights.

    The default table covers 4-bit weights (magnitudes 0..7); narrower
    weights truncate it and wider weights extend it with the same convex
    growth, so any searched/swept weight width yields a valid config.
    """
    if weight_bits < 2:
        raise ValueError(f"weight_bits must be >= 2, got {weight_bits}")
    magnitude = (1 << (weight_bits - 1)) - 1
    table = list(DEFAULT_TRANSFER_MAGNITUDES)
    while len(table) < magnitude + 1:
        table.append(table[-1] + (table[-1] - table[-2]) + 2)
    return tuple(table[: magnitude + 1])


def paper_config() -> BLBPConfig:
    """The full Table 2 configuration, all optimizations on."""
    return BLBPConfig()


def unoptimized_config() -> BLBPConfig:
    """The SNIP-like baseline of Fig. 10: every §3.6 optimization off."""
    return BLBPConfig(
        use_local_history=False,
        use_intervals=False,
        use_selective_update=False,
        use_transfer_function=False,
        use_adaptive_threshold=False,
    )


def gehl_config() -> BLBPConfig:
    """All optimizations on, but GEHL lengths instead of tuned intervals."""
    return BLBPConfig(use_intervals=False)


def with_toggles(**toggles: bool) -> BLBPConfig:
    """A paper config with specific optimization toggles overridden."""
    return dataclasses.replace(BLBPConfig(), **toggles)
