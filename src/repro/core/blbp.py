"""The Bit-Level Perceptron-Based Indirect Branch Predictor (§3).

Prediction (Algorithm 1):

1. For each of the N sub-predictors, hash its history feature (mixed
   with the branch PC) to select a row of K sign/magnitude weights;
   pass the weights through the transfer function and accumulate them
   into ``yout`` — a K-vector where ``yout[k]`` expresses aggregate
   confidence that target bit ``k`` is 1.
2. Fetch every stored target for this branch from the IBTB and score
   each by the non-normalized cosine similarity between ``yout`` and the
   target's low-order bit vector: ``score(t) = Σ_k yout[k]·bit_k(t)``
   (§3.7: the sum of ``yout`` elements wherever the target bit is 1).
3. Predict the highest-scoring target.  Ties go to the lowest way
   index; the paper's pseudocode and worked example disagree on ties
   (DESIGN.md §5), and we follow the pseudocode's first-max semantics.

Training (Algorithm 2): for each *unsuppressed* bit k — selective bit
training suppresses bits on which every potential target agrees — the
bit prediction is correct when ``sign(yout[k])`` matches the actual
target's bit; on an incorrect bit, or a correct one whose magnitude is
below the per-bit adaptive threshold θ_k, every sub-predictor's selected
weight for bit k moves toward the actual bit, saturating at ±7.

Hot-path structure: all N weight banks live in one
:class:`~repro.core.subpredictor.FusedWeightBanks` tensor, so ``yout``
is a single gather + transfer-LUT lookup + axis sum and training a
single masked scatter-add; history folds update incrementally (see
:mod:`repro.core.histories`).  :class:`repro.core.reference.ReferenceBLBP`
keeps the straightforward per-bank implementation, and the equivalence
suite pins this class to it prediction-for-prediction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.state import (
    StateError,
    check_state,
    dataclass_fingerprint,
    require,
)
from repro.common.storage import StorageBudget
from repro.core.config import BLBPConfig
from repro.core.hibtb import HierarchicalIBTB
from repro.core.histories import BLBPHistories
from repro.core.ibtb import IndirectBTB
from repro.core.regions import RegionArray
from repro.core.subpredictor import BankView, FusedWeightBanks
from repro.core.threshold import PerBitAdaptiveThreshold
from repro.core.transfer import TransferFunction
from repro.predictors.base import IndirectBranchPredictor


class BLBP(IndirectBranchPredictor):
    """The paper's predictor.  See module docstring for the algorithm."""

    name = "BLBP"

    def __init__(self, config: Optional[BLBPConfig] = None) -> None:
        self.config = config or BLBPConfig()
        cfg = self.config
        self.histories = BLBPHistories(cfg)
        self.transfer = TransferFunction(
            cfg.transfer_magnitudes, enabled=cfg.use_transfer_function
        )
        self.threshold = PerBitAdaptiveThreshold(
            num_bits=cfg.num_target_bits,
            initial_theta=cfg.initial_theta,
            counter_bits=cfg.theta_counter_bits,
            adaptive=cfg.use_adaptive_threshold,
        )
        self.weights = FusedWeightBanks(
            cfg.num_subpredictors,
            cfg.table_rows,
            cfg.num_target_bits,
            cfg.weight_bits,
        )
        regions = RegionArray(cfg.region_entries, cfg.region_offset_bits)
        if cfg.use_hierarchical_ibtb:
            self.ibtb = HierarchicalIBTB(
                l1_entries=cfg.hibtb_l1_entries,
                l2_sets=cfg.hibtb_l2_sets,
                l2_ways=cfg.hibtb_l2_ways,
                tag_bits=cfg.ibtb_tag_bits,
                rrpv_bits=cfg.rrip_bits,
                regions=regions,
            )
        else:
            self.ibtb = IndirectBTB(
                num_sets=cfg.ibtb_sets,
                num_ways=cfg.ibtb_ways,
                tag_bits=cfg.ibtb_tag_bits,
                rrpv_bits=cfg.rrip_bits,
                regions=regions,
            )
        self._bit_shifts = np.arange(
            cfg.low_bit, cfg.low_bit + cfg.num_target_bits, dtype=np.uint64
        )
        self._ctx: Optional[dict] = None
        # Pure-function memos over the small static target sets every
        # real trace draws from: per-target bit slices and per-candidate-
        # set bit matrices (with their columnwise min/max for selective
        # training).  Keys are target values, never predictor state.
        self._abits_memo: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._bitmat_memo: Dict[
            Tuple[int, ...], Tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = {}
        # The engine's conditional callback binds straight to the
        # history push (instance attribute shadows the class method),
        # skipping one Python frame on the most frequent event.
        self.on_conditional = self.histories.on_conditional
        # Hot-path observability (drained via sim_stats / SimCounters).
        self.stat_predictions = 0
        self.stat_ibtb_probes = 0
        self.stat_trained_bits = 0

    @property
    def banks(self) -> List[BankView]:
        """Per-bank views over the fused weight tensor (introspection)."""
        return self.weights.bank_views()

    # ------------------------------------------------------------------
    # Prediction (Algorithm 1)
    # ------------------------------------------------------------------

    def _target_bits(self, targets: List[int]) -> np.ndarray:
        """Bit matrix (T×K): row t holds target t's predicted-bit slice."""
        array = np.asarray(targets, dtype=np.uint64)
        return ((array[:, None] >> self._bit_shifts[None, :]) & np.uint64(1)).astype(
            np.int32
        )

    def _compute_yout(self, rows: np.ndarray) -> np.ndarray:
        """Aggregate transferred weights across all sub-predictors.

        One fused gather over the ``(N, rows, K)`` tensor, one
        transfer-LUT lookup, one axis sum — no per-bank Python loop.
        """
        return self.transfer.apply(self.weights.gather(rows)).sum(
            axis=0, dtype=np.int32
        )

    def predict_target(self, pc: int) -> Optional[int]:
        rows = np.asarray(self.histories.indices(pc), dtype=np.intp)
        yout = self._compute_yout(rows)
        candidates = self.ibtb.lookup(pc)
        self.stat_predictions += 1
        self.stat_ibtb_probes += 1

        if not candidates:
            prediction = None
            chosen_way = None
            bit_lows = None
            bit_highs = None
        else:
            targets = tuple(target for _, target in candidates)
            entry = self._bitmat_memo.get(targets)
            if entry is None:
                bit_matrix = self._target_bits(list(targets))
                entry = (
                    bit_matrix,
                    bit_matrix.min(axis=0),
                    bit_matrix.max(axis=0),
                )
                self._bitmat_memo[targets] = entry
            bit_matrix, bit_lows, bit_highs = entry
            scores = bit_matrix @ yout
            best = int(np.argmax(scores))
            prediction = targets[best]
            chosen_way = candidates[best][0]

        self._ctx = {
            "pc": pc,
            "rows": rows,
            "yout": yout,
            "candidates": candidates,
            "bit_lows": bit_lows,
            "bit_highs": bit_highs,
            "prediction": prediction,
            "chosen_way": chosen_way,
        }
        return prediction

    # ------------------------------------------------------------------
    # Training (Algorithm 2)
    # ------------------------------------------------------------------

    def train(self, pc: int, target: int) -> None:
        ctx = self._ctx
        if ctx is None or ctx["pc"] != pc:
            self.predict_target(pc)
            ctx = self._ctx
        self._ctx = None
        cfg = self.config

        # Keep the IBTB current: store the actual target so it is a
        # candidate next time.  ``ensure`` already promotes the way's
        # RRIP state on a hit and applies the insertion RRPV on a fill;
        # an extra ``touch`` here would double-promote freshly-filled
        # ways to RRPV 0 and defeat SRRIP's long-re-reference insertion
        # (the replacement-skew bug fixed in this revision).
        self.ibtb.ensure(pc, target)

        yout = ctx["yout"]
        memo = self._abits_memo.get(target)
        if memo is None:
            actual_bits = (
                (np.uint64(target) >> self._bit_shifts) & np.uint64(1)
            ).astype(np.int32)
            memo = (actual_bits, actual_bits == 1)
            self._abits_memo[target] = memo
        actual_bits, desired_bits = memo

        # Selective bit training (§3.6): only train bits that differ
        # across the potential-target set (stored candidates + actual).
        # The candidate matrix's columnwise min/max were memoized at
        # prediction time.
        if cfg.use_selective_update:
            if ctx["bit_lows"] is not None:
                lows = np.minimum(ctx["bit_lows"], actual_bits)
                highs = np.maximum(ctx["bit_highs"], actual_bits)
                differs = lows != highs
            else:
                differs = np.zeros(cfg.num_target_bits, dtype=bool)
        else:
            differs = np.ones(cfg.num_target_bits, dtype=bool)

        if differs.any():
            predicted_ones = yout >= 0
            correct_bits = predicted_ones == desired_bits
            magnitudes = np.abs(yout)
            train_mask = np.asarray(
                self.threshold.observe_and_mask(
                    differs.tolist(),
                    correct_bits.tolist(),
                    magnitudes.tolist(),
                ),
                dtype=bool,
            )
            if train_mask.any():
                self.weights.train(ctx["rows"], desired_bits, train_mask)
                self.stat_trained_bits += int(train_mask.sum())

        # Local history records bit 3 of the taken target (§3.6).
        self.histories.push_target(pc, target)

    # ------------------------------------------------------------------
    # History discipline (§3.3): conditional outcomes only.
    # ------------------------------------------------------------------

    def on_conditional(self, pc: int, taken: bool) -> None:
        self.histories.push_conditional(taken)

    # ------------------------------------------------------------------
    # Introspection helpers (used by tests and examples)
    # ------------------------------------------------------------------

    def predicted_bit_vector(self, pc: int) -> Tuple[np.ndarray, np.ndarray]:
        """(yout, predicted bits) for ``pc`` without touching state."""
        rows = np.asarray(self.histories.indices(pc), dtype=np.intp)
        yout = self._compute_yout(rows)
        return yout, (yout >= 0).astype(np.int32)

    def candidate_targets(self, pc: int) -> List[int]:
        """Targets currently stored for ``pc`` in the IBTB."""
        return [target for _, target in self.ibtb.lookup(pc)]

    def sim_stats(self) -> Dict[str, int]:
        """Cumulative hot-path counters (see :mod:`repro.sim.counters`)."""
        return {
            "predictions": self.stat_predictions,
            "ibtb_probes": self.stat_ibtb_probes,
            "trained_bits": self.stat_trained_bits,
            "fold_updates": self.histories.stat_fold_updates,
        }

    # ------------------------------------------------------------------
    # Snapshot/restore (see docs/checkpointing.md)
    # ------------------------------------------------------------------

    def state_dict(self) -> Dict:
        """Snapshot every architectural register: histories (pending
        folds flushed), per-bit thresholds, the fused weight tensor, the
        IBTB with its region array, and the cumulative hot-path
        counters.  The transient prediction→train context and the
        pure-input memos (target-bit slices, candidate bit matrices, PC
        hashes, the version-validated IBTB lookup cache) are excluded:
        they are recomputable, and excluding them makes a restored
        predictor hash identical to one that never suspended.
        """
        if self._ctx is not None:
            raise StateError(
                "cannot snapshot BLBP between predict_target and train; "
                "snapshot at record boundaries"
            )
        return {
            "v": 1,
            "kind": "BLBP",
            "config": dataclass_fingerprint(self.config),
            "histories": self.histories.state_dict(),
            "threshold": self.threshold.state_dict(),
            "weights": self.weights.state_dict(),
            "ibtb": self.ibtb.state_dict(),
            "stats": {
                "predictions": self.stat_predictions,
                "ibtb_probes": self.stat_ibtb_probes,
                "trained_bits": self.stat_trained_bits,
            },
        }

    def load_state(self, state: Dict) -> None:
        check_state(state, "BLBP")
        require(
            state["config"] == dataclass_fingerprint(self.config),
            "BLBP snapshot was taken under a different configuration",
        )
        # Sub-components load in place — the engine's conditional
        # callback stays bound to this `histories` object.
        self.histories.load_state(state["histories"])
        self.threshold.load_state(state["threshold"])
        self.weights.load_state(state["weights"])
        self.ibtb.load_state(state["ibtb"])
        stats = state["stats"]
        self.stat_predictions = int(stats["predictions"])
        self.stat_ibtb_probes = int(stats["ibtb_probes"])
        self.stat_trained_bits = int(stats["trained_bits"])
        self._ctx = None
        self._abits_memo = {}
        self._bitmat_memo = {}

    # ------------------------------------------------------------------

    def storage_budget(self) -> StorageBudget:
        cfg = self.config
        budget = StorageBudget(self.name)
        for position, bank in enumerate(self.banks):
            label = (
                "weights (local history)"
                if position == 0
                else f"weights (interval {cfg.effective_intervals[position - 1]})"
            )
            budget.add(label, bank.storage_bits(cfg.weight_bits))
        budget.add("global history", cfg.global_history_bits)
        budget.add(
            "local histories", cfg.local_histories * cfg.local_history_bits
        )
        budget.add("IBTB", self.ibtb.storage_bits())
        budget.add("region array", self.ibtb.regions.storage_bits())
        budget.add("adaptive thresholds", self.threshold.storage_bits())
        return budget
