"""The Bit-Level Perceptron-Based Indirect Branch Predictor (§3).

Prediction (Algorithm 1):

1. For each of the N sub-predictors, hash its history feature (mixed
   with the branch PC) to select a row of K sign/magnitude weights;
   pass the weights through the transfer function and accumulate them
   into ``yout`` — a K-vector where ``yout[k]`` expresses aggregate
   confidence that target bit ``k`` is 1.
2. Fetch every stored target for this branch from the IBTB and score
   each by the non-normalized cosine similarity between ``yout`` and the
   target's low-order bit vector: ``score(t) = Σ_k yout[k]·bit_k(t)``
   (§3.7: the sum of ``yout`` elements wherever the target bit is 1).
3. Predict the highest-scoring target.  Ties go to the lowest way
   index; the paper's pseudocode and worked example disagree on ties
   (DESIGN.md §5), and we follow the pseudocode's first-max semantics.

Training (Algorithm 2): for each *unsuppressed* bit k — selective bit
training suppresses bits on which every potential target agrees — the
bit prediction is correct when ``sign(yout[k])`` matches the actual
target's bit; on an incorrect bit, or a correct one whose magnitude is
below the per-bit adaptive threshold θ_k, every sub-predictor's selected
weight for bit k moves toward the actual bit, saturating at ±7.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.common.storage import StorageBudget
from repro.core.config import BLBPConfig
from repro.core.hibtb import HierarchicalIBTB
from repro.core.histories import BLBPHistories
from repro.core.ibtb import IndirectBTB
from repro.core.regions import RegionArray
from repro.core.subpredictor import WeightBank
from repro.core.threshold import PerBitAdaptiveThreshold
from repro.core.transfer import TransferFunction
from repro.predictors.base import IndirectBranchPredictor


class BLBP(IndirectBranchPredictor):
    """The paper's predictor.  See module docstring for the algorithm."""

    name = "BLBP"

    def __init__(self, config: Optional[BLBPConfig] = None) -> None:
        self.config = config or BLBPConfig()
        cfg = self.config
        self.histories = BLBPHistories(cfg)
        self.transfer = TransferFunction(
            cfg.transfer_magnitudes, enabled=cfg.use_transfer_function
        )
        self.threshold = PerBitAdaptiveThreshold(
            num_bits=cfg.num_target_bits,
            initial_theta=cfg.initial_theta,
            counter_bits=cfg.theta_counter_bits,
            adaptive=cfg.use_adaptive_threshold,
        )
        self.banks = [
            WeightBank(cfg.table_rows, cfg.num_target_bits, cfg.weight_bits)
            for _ in range(cfg.num_subpredictors)
        ]
        regions = RegionArray(cfg.region_entries, cfg.region_offset_bits)
        if cfg.use_hierarchical_ibtb:
            self.ibtb = HierarchicalIBTB(
                l1_entries=cfg.hibtb_l1_entries,
                l2_sets=cfg.hibtb_l2_sets,
                l2_ways=cfg.hibtb_l2_ways,
                tag_bits=cfg.ibtb_tag_bits,
                rrpv_bits=cfg.rrip_bits,
                regions=regions,
            )
        else:
            self.ibtb = IndirectBTB(
                num_sets=cfg.ibtb_sets,
                num_ways=cfg.ibtb_ways,
                tag_bits=cfg.ibtb_tag_bits,
                rrpv_bits=cfg.rrip_bits,
                regions=regions,
            )
        self._bit_shifts = np.arange(
            cfg.low_bit, cfg.low_bit + cfg.num_target_bits, dtype=np.uint64
        )
        self._ctx: Optional[dict] = None

    # ------------------------------------------------------------------
    # Prediction (Algorithm 1)
    # ------------------------------------------------------------------

    def _target_bits(self, targets: List[int]) -> np.ndarray:
        """Bit matrix (T×K): row t holds target t's predicted-bit slice."""
        array = np.asarray(targets, dtype=np.uint64)
        return ((array[:, None] >> self._bit_shifts[None, :]) & np.uint64(1)).astype(
            np.int32
        )

    def _compute_yout(self, indices: List[int]) -> np.ndarray:
        """Aggregate transferred weights across all sub-predictors."""
        yout = np.zeros(self.config.num_target_bits, dtype=np.int32)
        for bank, row in zip(self.banks, indices):
            yout += self.transfer.apply(bank.read(row))
        return yout

    def predict_target(self, pc: int) -> Optional[int]:
        indices = self.histories.indices(pc)
        yout = self._compute_yout(indices)
        candidates = self.ibtb.lookup(pc)

        if not candidates:
            prediction = None
            chosen_way = None
            bit_matrix = None
        else:
            targets = [target for _, target in candidates]
            bit_matrix = self._target_bits(targets)
            scores = bit_matrix @ yout
            best = int(np.argmax(scores))
            prediction = targets[best]
            chosen_way = candidates[best][0]

        self._ctx = {
            "pc": pc,
            "indices": indices,
            "yout": yout,
            "candidates": candidates,
            "bit_matrix": bit_matrix,
            "prediction": prediction,
            "chosen_way": chosen_way,
        }
        return prediction

    # ------------------------------------------------------------------
    # Training (Algorithm 2)
    # ------------------------------------------------------------------

    def train(self, pc: int, target: int) -> None:
        ctx = self._ctx
        if ctx is None or ctx["pc"] != pc:
            self.predict_target(pc)
            ctx = self._ctx
        self._ctx = None
        cfg = self.config

        # Keep the IBTB current: store the actual target (promoting it if
        # already present) so it is a candidate next time.
        way = self.ibtb.ensure(pc, target)
        self.ibtb.touch(pc, way)

        yout = ctx["yout"]
        actual_bits = (
            (np.uint64(target) >> self._bit_shifts) & np.uint64(1)
        ).astype(np.int32)

        # Selective bit training (§3.6): only train bits that differ
        # across the potential-target set (stored candidates + actual).
        if cfg.use_selective_update:
            if ctx["bit_matrix"] is not None and len(ctx["bit_matrix"]):
                stacked = np.vstack([ctx["bit_matrix"], actual_bits])
            else:
                stacked = actual_bits[None, :]
            differs = stacked.min(axis=0) != stacked.max(axis=0)
        else:
            differs = np.ones(cfg.num_target_bits, dtype=bool)

        predicted_ones = yout >= 0
        correct_bits = predicted_ones == (actual_bits == 1)
        magnitudes = np.abs(yout)

        train_mask = np.zeros(cfg.num_target_bits, dtype=bool)
        for k in range(cfg.num_target_bits):
            if not differs[k]:
                continue
            correct = bool(correct_bits[k])
            magnitude = int(magnitudes[k])
            self.threshold.observe(k, correct, magnitude)
            if self.threshold.should_train(k, correct, magnitude):
                train_mask[k] = True

        if train_mask.any():
            desired = actual_bits == 1
            for bank, row in zip(self.banks, ctx["indices"]):
                bank.train(row, desired, train_mask)

        # Local history records bit 3 of the taken target (§3.6).
        self.histories.push_target(pc, target)

    # ------------------------------------------------------------------
    # History discipline (§3.3): conditional outcomes only.
    # ------------------------------------------------------------------

    def on_conditional(self, pc: int, taken: bool) -> None:
        self.histories.push_conditional(taken)

    # ------------------------------------------------------------------
    # Introspection helpers (used by tests and examples)
    # ------------------------------------------------------------------

    def predicted_bit_vector(self, pc: int) -> Tuple[np.ndarray, np.ndarray]:
        """(yout, predicted bits) for ``pc`` without touching state."""
        indices = self.histories.indices(pc)
        yout = self._compute_yout(indices)
        return yout, (yout >= 0).astype(np.int32)

    def candidate_targets(self, pc: int) -> List[int]:
        """Targets currently stored for ``pc`` in the IBTB."""
        return [target for _, target in self.ibtb.lookup(pc)]

    # ------------------------------------------------------------------

    def storage_budget(self) -> StorageBudget:
        cfg = self.config
        budget = StorageBudget(self.name)
        for position, bank in enumerate(self.banks):
            label = (
                "weights (local history)"
                if position == 0
                else f"weights (interval {cfg.effective_intervals[position - 1]})"
            )
            budget.add(label, bank.storage_bits(cfg.weight_bits))
        budget.add("global history", cfg.global_history_bits)
        budget.add(
            "local histories", cfg.local_histories * cfg.local_history_bits
        )
        budget.add("IBTB", self.ibtb.storage_bits())
        budget.add("region array", self.ibtb.regions.storage_bits())
        budget.add("adaptive thresholds", self.threshold.storage_bits())
        return budget
