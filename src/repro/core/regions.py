"""Region-based target compression (§3.6, borrowed from ITTAGE).

Branch targets cluster in a handful of memory regions (the text segments
of the binary and its libraries).  Instead of storing full 64-bit
targets, the IBTB stores a small *region number* — an index into a
shared array of high-order address bits — plus a low-order offset,
roughly halving target storage.  The region array uses LRU replacement.

Eviction semantics are modelled honestly: each region entry carries a
generation number, and IBTB entries remember the generation they encoded
against.  When a region is recycled, stale IBTB entries referencing it
decode to ``None`` and are dropped, exactly as hardware would invalidate
or misdecode them.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.common.replacement import LRUPolicy
from repro.common.state import Stateful, check_state, require


class RegionArray(Stateful):
    """LRU-managed array of high-order target-address regions."""

    def __init__(self, num_entries: int = 128, offset_bits: int = 20) -> None:
        if num_entries < 1:
            raise ValueError(f"need >= 1 regions, got {num_entries}")
        if offset_bits < 1:
            raise ValueError(f"need >= 1 offset bits, got {offset_bits}")
        self.num_entries = num_entries
        self.offset_bits = offset_bits
        self._high_bits: list = [None] * num_entries
        self._generation = [0] * num_entries
        self._lru = LRUPolicy(num_entries)
        #: Total region evictions (monitoring / tests).
        self.evictions = 0
        #: Bumped whenever any region mapping changes (allocation or
        #: recycling).  Lets IBTB lookup caches validate cheaply: while
        #: this and the set's membership version are unchanged, every
        #: previous decode result still holds.
        self.version = 0

    def encode(self, target: int) -> Tuple[int, int, int]:
        """Encode ``target`` as (region index, generation, offset).

        Allocates a region (evicting LRU) if the high bits are new.
        """
        high = target >> self.offset_bits
        offset = target & ((1 << self.offset_bits) - 1)
        for index in range(self.num_entries):
            if self._high_bits[index] == high:
                self._lru.touch(index)
                return index, self._generation[index], offset
        victim = self._lru.victim()
        if self._high_bits[victim] is not None:
            self.evictions += 1
        self._high_bits[victim] = high
        self._generation[victim] += 1
        self._lru.touch(victim)
        self.version += 1
        return victim, self._generation[victim], offset

    def decode(self, index: int, generation: int, offset: int) -> Optional[int]:
        """Reconstruct a target; ``None`` if the region was recycled."""
        if not 0 <= index < self.num_entries:
            raise ValueError(f"region index {index} out of range")
        if self._high_bits[index] is None or self._generation[index] != generation:
            return None
        return (self._high_bits[index] << self.offset_bits) | offset

    def occupancy(self) -> int:
        """Number of live region entries."""
        return sum(1 for high in self._high_bits if high is not None)

    def storage_bits(self) -> int:
        """Region storage: high-order bits per entry plus LRU state."""
        high_width = 64 - self.offset_bits
        lru_bits = LRUPolicy.storage_bits_per_entry(self.num_entries)
        return self.num_entries * (high_width + lru_bits)

    def state_dict(self) -> Dict[str, Any]:
        # `version` is cache-invalidation bookkeeping, not architectural
        # state: lookup caches key on it, and every cache is empty after
        # a restore, so a restored array may restart it from zero.  It is
        # excluded so restored and never-suspended predictors hash equal.
        return {
            "v": 1,
            "kind": "RegionArray",
            "num_entries": self.num_entries,
            "offset_bits": self.offset_bits,
            "high_bits": [
                None if high is None else int(high)
                for high in self._high_bits
            ],
            "generation": list(self._generation),
            "lru": self._lru.state_dict(),
            "evictions": self.evictions,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        check_state(state, "RegionArray")
        require(
            state["num_entries"] == self.num_entries
            and state["offset_bits"] == self.offset_bits,
            "RegionArray geometry mismatch",
        )
        high_bits = state["high_bits"]
        generation = state["generation"]
        require(
            len(high_bits) == self.num_entries
            and len(generation) == self.num_entries,
            "RegionArray table size mismatch",
        )
        self._high_bits = [
            None if high is None else int(high) for high in high_bits
        ]
        self._generation = [int(value) for value in generation]
        self._lru.load_state(state["lru"])
        self.evictions = int(state["evictions"])
        self.version = 0
