"""Per-bit adaptive threshold training (§3.6).

BLBP trains each target-bit perceptron not only on mispredicted bits
but also on correct ones whose summed confidence ``|yout_k|`` falls
below a threshold θ_k.  As in O-GEHL, θ is not a constant: Seznec's
adaptive rule drives it so trainings-on-correct roughly balance
mispredictions.  BLBP keeps an independent θ and controller counter for
*each predicted bit position* (Algorithm 2 calls
``adaptive_training(correct, a, k)`` with the bit index ``k``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.common.state import Stateful, check_state, require


class PerBitAdaptiveThreshold(Stateful):
    """K independent Seznec threshold controllers, one per target bit.

    The controller counter saturates **symmetrically** at
    ``±(2^(counter_bits-1) - 1)``: a θ increment and a θ decrement both
    fire after the same number of net observations.  (An earlier
    implementation used the two's-complement bounds ``2^(b-1)-1`` /
    ``-2^(b-1)``, which made θ one observation slower to decrease than
    to increase, biasing θ downward relative to Seznec's rule.)
    """

    def __init__(
        self,
        num_bits: int,
        initial_theta: int,
        counter_bits: int = 7,
        adaptive: bool = True,
    ) -> None:
        if num_bits < 1:
            raise ValueError(f"need >= 1 bits, got {num_bits}")
        if initial_theta < 1:
            raise ValueError(f"theta must be >= 1, got {initial_theta}")
        self.num_bits = num_bits
        self.adaptive = adaptive
        self.counter_bits = counter_bits
        self._theta: List[int] = [initial_theta] * num_bits
        self._counter: List[int] = [0] * num_bits
        self._max = (1 << (counter_bits - 1)) - 1
        self._min = -self._max

    def theta(self, bit: int) -> int:
        """The current training threshold for bit position ``bit``."""
        return self._theta[bit]

    def observe(self, bit: int, correct: bool, magnitude: int) -> None:
        """Algorithm 2's ``adaptive_training(correct, a, k)``.

        Args:
            bit: target-bit position k.
            correct: whether bit k was predicted correctly.
            magnitude: ``a = |yout_k|``.
        """
        if not self.adaptive:
            return
        if not correct:
            self._counter[bit] += 1
            if self._counter[bit] >= self._max:
                self._counter[bit] = 0
                self._theta[bit] += 1
        elif magnitude < self._theta[bit]:
            self._counter[bit] -= 1
            if self._counter[bit] <= self._min:
                self._counter[bit] = 0
                if self._theta[bit] > 1:
                    self._theta[bit] -= 1

    def should_train(self, bit: int, correct: bool, magnitude: int) -> bool:
        """Algorithm 2's training condition: mispredicted or low margin."""
        return (not correct) or magnitude < self._theta[bit]

    def observe_and_mask(
        self,
        active: Sequence[bool],
        correct: Sequence[bool],
        magnitudes: Sequence[int],
    ) -> List[bool]:
        """Batched ``observe`` + ``should_train`` over all K bits.

        For each bit ``k`` with ``active[k]`` true, performs exactly the
        scalar ``observe(k, ...)`` update and returns whether that bit
        should train; inactive bits are untouched and never train.  This
        is the predictor's hot path — one call replaces 2K scalar calls
        per trained branch — and is bit-for-bit equivalent to the scalar
        methods (pinned by the reference-equivalence suite).
        """
        theta = self._theta
        counter = self._counter
        adaptive = self.adaptive
        cmax = self._max
        cmin = self._min
        mask: List[bool] = [False] * self.num_bits
        for bit in range(self.num_bits):
            if not active[bit]:
                continue
            t = theta[bit]
            if correct[bit]:
                magnitude = magnitudes[bit]
                if magnitude >= t:
                    continue
                if adaptive:
                    counter[bit] -= 1
                    if counter[bit] <= cmin:
                        counter[bit] = 0
                        if t > 1:
                            t = t - 1
                            theta[bit] = t
                # should_train sees the θ *after* observe, exactly as the
                # scalar observe-then-should_train sequence does.
                mask[bit] = magnitude < t
            else:
                if adaptive:
                    counter[bit] += 1
                    if counter[bit] >= cmax:
                        counter[bit] = 0
                        theta[bit] = t + 1
                mask[bit] = True
        return mask

    def storage_bits(self) -> int:
        """Hardware state: a θ register and controller per bit."""
        theta_bits = 8
        return self.num_bits * (theta_bits + self.counter_bits)

    def state_dict(self) -> Dict[str, Any]:
        return {
            "v": 1,
            "kind": "PerBitAdaptiveThreshold",
            "num_bits": self.num_bits,
            "counter_bits": self.counter_bits,
            "adaptive": self.adaptive,
            "theta": list(self._theta),
            "counter": list(self._counter),
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        check_state(state, "PerBitAdaptiveThreshold")
        require(
            state["num_bits"] == self.num_bits
            and state["counter_bits"] == self.counter_bits
            and state["adaptive"] == self.adaptive,
            "PerBitAdaptiveThreshold configuration mismatch",
        )
        theta = [int(value) for value in state["theta"]]
        counter = [int(value) for value in state["counter"]]
        require(
            len(theta) == self.num_bits and len(counter) == self.num_bits,
            "threshold vector size mismatch",
        )
        require(all(value >= 1 for value in theta), "theta must stay >= 1")
        require(
            all(self._min <= value <= self._max for value in counter),
            "threshold counter out of range",
        )
        self._theta = theta
        self._counter = counter
