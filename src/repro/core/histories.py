"""BLBP's history state and sub-predictor index computation (§3.3, §3.6).

BLBP draws on two history sources:

* a 630-bit **global history** of conditional-branch outcomes, sliced
  into the seven tuned intervals of §3.6 (or GEHL prefixes when the
  interval optimization is off);
* 256 **local histories** of 10 bits each, indexed by branch PC, where
  each shifted-in bit is bit 3 of the target the branch actually took.

Each sub-predictor's table index is a hash of its history feature mixed
with the branch PC.  (Algorithm 1 writes the hash over history alone;
we mix the PC in as every hashed-perceptron implementation does — see
DESIGN.md §5 on unspecified hash functions.)
"""

from __future__ import annotations

from typing import List

from repro.common.hashing import fold_int, mix_pc, stable_hash64
from repro.common.history import LocalHistoryTable
from repro.core.config import BLBPConfig


class BLBPHistories:
    """Global + local history registers and feature index computation."""

    def __init__(self, config: BLBPConfig) -> None:
        self.config = config
        self._ghist = 0
        self._ghist_mask = (1 << config.global_history_bits) - 1
        self._local = LocalHistoryTable(
            config.local_histories, config.local_history_bits
        )
        self._fold_bits = max(1, (config.table_rows - 1).bit_length())

    # ------------------------------------------------------------------
    # History updates
    # ------------------------------------------------------------------

    def push_conditional(self, taken: bool) -> None:
        """Shift a conditional outcome into the global history."""
        self._ghist = ((self._ghist << 1) | int(taken)) & self._ghist_mask

    def push_target(self, pc: int, target: int) -> None:
        """Record the local-history bit (bit 3 of the taken target)."""
        bit = (target >> self.config.local_target_bit) & 1
        self._local.push(pc, bit)

    # ------------------------------------------------------------------
    # Index computation
    # ------------------------------------------------------------------

    def indices(self, pc: int) -> List[int]:
        """Table indices for all N sub-predictors at branch ``pc``.

        Index 0 is the local-history feature (a PC-only bias feature
        when local history is disabled); the rest follow the configured
        intervals in order.
        """
        cfg = self.config
        rows = cfg.table_rows
        result: List[int] = []

        if cfg.use_local_history:
            local = self._local.read(pc)
            mixed = mix_pc(pc) ^ stable_hash64(local)
        else:
            mixed = mix_pc(pc)
        result.append(mixed % rows)

        for position, (start, end) in enumerate(cfg.effective_intervals):
            width = end - start  # intervals are half-open [start, end)
            segment = (self._ghist >> start) & ((1 << width) - 1)
            folded = fold_int(segment, width, self._fold_bits)
            mixed = mix_pc(pc, salt=position + 1) ^ folded
            result.append(mixed % rows)
        return result

    # ------------------------------------------------------------------

    def global_history_value(self) -> int:
        """The raw global history bits (bit 0 most recent)."""
        return self._ghist

    def local_history_of(self, pc: int) -> int:
        """The local history register selected by ``pc``."""
        return self._local.read(pc)

    def storage_bits(self) -> int:
        return self.config.global_history_bits + self._local.storage_bits()
