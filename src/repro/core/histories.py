"""BLBP's history state and sub-predictor index computation (§3.3, §3.6).

BLBP draws on two history sources:

* a 630-bit **global history** of conditional-branch outcomes, sliced
  into the seven tuned intervals of §3.6 (or GEHL prefixes when the
  interval optimization is off);
* 256 **local histories** of 10 bits each, indexed by branch PC, where
  each shifted-in bit is bit 3 of the target the branch actually took.

Each sub-predictor's table index is a hash of its history feature mixed
with the branch PC.  (Algorithm 1 writes the hash over history alone;
we mix the PC in as every hashed-perceptron implementation does — see
DESIGN.md §5 on unspecified hash functions.)

Hot-path structure
------------------

The naive index computation re-folds up to 630 history bits through
:func:`~repro.common.hashing.fold_int` for each of the seven intervals
on *every* prediction.  This module instead keeps one incremental
:class:`~repro.common.hashing.FoldedHistory` per interval — the same
circular-shift-register fold TAGE-family hardware implements.  Per
pushed bit, interval ``[start, end)`` rotates its fold left once, XORs
in the bit entering its window (global position ``start - 1`` before
the shift, or the pushed bit itself when ``start == 0``) and XORs out
the leaving bit (position ``end - 1``) at the fold's out-position.

Because conditional branches outnumber indirect branches by an order of
magnitude in real traces, the simulator does not execute that recurrence
bit-by-bit: :meth:`BLBPHistories.push_conditional` is a bare shift
(O(1), no per-interval work), and the pending bits are absorbed in one
*batched* step the next time a fold value is read.  The m-step
recurrence collapses algebraically — each entering bit lands at fold
position ``(m-1-j) % W`` and each leaving bit at
``(out + m-1-j) % W``, so

    fold' = rot_m(fold) ^ fold(entering slice) ^ rot_out(fold(leaving slice))

where both slices are contiguous m-bit windows of the (unmasked) global
history and ``fold``/``rot`` are the standard folded-XOR and left
rotation over ``W`` bits.  For ``m == 1`` this is exactly
:meth:`FoldedHistory.update`; the parity suite pins the batch against
both the one-step recurrence and a from-scratch ``fold_bits`` recompute.

:meth:`BLBPHistories.indices_reference` retains the from-scratch
``fold_int`` computation as the differential oracle — the equivalence
suite pins ``indices`` to it bit-for-bit.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.common.hashing import FoldedHistory, fold_int, mix_pc, stable_hash64
from repro.common.history import LocalHistoryTable
from repro.common.state import Stateful, check_state, require
from repro.core.config import BLBPConfig


class BLBPHistories(Stateful):
    """Global + local history registers and feature index computation."""

    def __init__(self, config: BLBPConfig) -> None:
        self.config = config
        self._ghist = 0
        self._ghist_mask = (1 << config.global_history_bits) - 1
        self._local = LocalHistoryTable(
            config.local_histories, config.local_history_bits
        )
        self._fold_bits = max(1, (config.table_rows - 1).bit_length())
        #: One incremental fold per interval, kept equal at all times to
        #: ``fold_int`` over the interval's current window.
        self._folds = [
            FoldedHistory(end - start, self._fold_bits)
            for start, end in config.effective_intervals
        ]
        # Batch-update table: (fold, start, end, out-position) per
        # interval.  ``start``/``end`` double as the shifts selecting the
        # entering/leaving bit slices out of the global history, and
        # ``out`` is the fold position where leaving bits are cancelled
        # (``length % width``, as in :class:`FoldedHistory`).
        width = self._fold_bits
        self._fold_batch = [
            (fold, start, end, (end - start) % width)
            for fold, (start, end) in zip(
                self._folds, config.effective_intervals
            )
        ]
        self._num_folds = len(self._folds)
        # Conditional outcomes pushed since the folds were last brought
        # current.  While bits are pending, ``_ghist`` is kept *unmasked*
        # so the leaving-bit slices (positions up to end + m - 1) are
        # still available at flush time.
        self._pending = 0
        # Pure-function memos for the hot path.  PCs and local-history
        # values are drawn from small static sets in any real trace, so
        # both caches stay tiny; they hold hashes of *inputs*, never
        # predictor state.
        self._pc_memo: Dict[int, Tuple[Tuple[int, ...], int]] = {}
        self._local_hash_memo: Dict[int, int] = {}
        #: Incremental fold updates performed (observability; see
        #: :class:`repro.sim.counters.SimCounters`).
        self.stat_fold_updates = 0

    # ------------------------------------------------------------------
    # History updates
    # ------------------------------------------------------------------

    def push_conditional(self, taken: bool) -> None:
        """Shift a conditional outcome into the global history.

        O(1) with *no* per-interval work: the folds are brought current
        lazily, in one batched step, the next time a fold value is read
        (:meth:`_flush_folds`).  Conditional pushes outnumber
        predictions ~10:1 in real traces, so this path must stay a bare
        shift — per-push fold maintenance was the profile's top entry.
        """
        # Unmasked on purpose; see _flush_folds for why pending bits
        # keep the history wider than its architectural capacity.
        self._ghist = (self._ghist << 1) | (1 if taken else 0)
        self._pending += 1
        if self._pending >= 1024:
            self._flush_folds()

    def on_conditional(self, _pc: int, taken: bool) -> None:
        """:meth:`push_conditional` with the predictor hook's signature.

        :class:`~repro.core.blbp.BLBP` binds the simulation engine's
        conditional callback straight to this method, saving one Python
        frame per conditional branch — the most frequent event in any
        trace.  The body duplicates :meth:`push_conditional` for that
        reason.
        """
        self._ghist = (self._ghist << 1) | (1 if taken else 0)
        self._pending += 1
        if self._pending >= 1024:
            self._flush_folds()

    def _flush_folds(self) -> None:
        """Absorb all pending outcomes into every interval fold at once.

        Applying :meth:`FoldedHistory.update` m times rotates the fold
        left m positions, lands the step-j entering bit at fold position
        ``(m-1-j) % W`` and the step-j leaving bit at
        ``(out + m-1-j) % W``.  Reading the entering bits of all m steps
        as one slice E = ghist[start : start+m] (and leaving bits
        L = ghist[end : end+m]) of the *new* unmasked history lines bit
        b of each slice up with fold position ``b % W`` — exactly the
        standard fold — giving the closed form

            fold' = rot_m(fold) ^ fold_int(E, m, W) ^ rot_out(fold_int(L, m, W))

        Two small ``fold_int`` calls per interval replace m one-step
        updates; for m == 1 the expressions coincide.
        """
        m = self._pending
        if not m:
            return
        ghist = self._ghist
        width = self._fold_bits
        fold_mask = (1 << width) - 1
        slice_mask = (1 << m) - 1
        rot_m = m % width
        inv_rot_m = width - rot_m
        for fold, start, end, out in self._fold_batch:
            f = fold.fold
            if rot_m:
                f = ((f << rot_m) | (f >> inv_rot_m)) & fold_mask
            # fold_int over both slices, inlined (14 calls per flush
            # otherwise; m rarely exceeds 2*width so each loop runs
            # once or twice).
            segment = (ghist >> start) & slice_mask
            while segment:
                f ^= segment & fold_mask
                segment >>= width
            leaving = 0
            segment = (ghist >> end) & slice_mask
            while segment:
                leaving ^= segment & fold_mask
                segment >>= width
            if out and leaving:
                leaving = (
                    (leaving << out) | (leaving >> (width - out))
                ) & fold_mask
            fold.fold = f ^ leaving
        self.stat_fold_updates += m * self._num_folds
        self._pending = 0
        self._ghist = ghist & self._ghist_mask

    def push_target(self, pc: int, target: int) -> None:
        """Record the local-history bit (bit 3 of the taken target)."""
        bit = (target >> self.config.local_target_bit) & 1
        self._local.push_at(self._pc_hashes(pc)[1], bit)

    # ------------------------------------------------------------------
    # Index computation
    # ------------------------------------------------------------------

    def _pc_hashes(self, pc: int) -> Tuple[Tuple[int, ...], int]:
        """Memoized per-feature PC hashes and the local-table index."""
        memo = self._pc_memo.get(pc)
        if memo is None:
            mixes = tuple(
                mix_pc(pc, salt=salt)
                for salt in range(1 + len(self._folds))
            )
            memo = (mixes, mixes[0] % self._local.num_entries)
            self._pc_memo[pc] = memo
        return memo

    def indices(self, pc: int) -> List[int]:
        """Table indices for all N sub-predictors at branch ``pc``.

        Index 0 is the local-history feature (a PC-only bias feature
        when local history is disabled); the rest follow the configured
        intervals in order.  Equal to :meth:`indices_reference` for
        every reachable state (pinned by the equivalence suite).
        """
        if self._pending:
            self._flush_folds()
        rows = self.config.table_rows
        mixes, local_index = self._pc_hashes(pc)

        if self.config.use_local_history:
            local = self._local.read_at(local_index)
            local_hash = self._local_hash_memo.get(local)
            if local_hash is None:
                local_hash = stable_hash64(local)
                self._local_hash_memo[local] = local_hash
            mixed = mixes[0] ^ local_hash
        else:
            mixed = mixes[0]
        result = [mixed % rows]

        for position, fold in enumerate(self._folds):
            result.append((mixes[position + 1] ^ fold.fold) % rows)
        return result

    def indices_reference(self, pc: int) -> List[int]:
        """The from-scratch index computation (differential oracle).

        Re-extracts and re-folds every interval with
        :func:`~repro.common.hashing.fold_int`; O(history bits) per
        call.  Kept verbatim so tests can assert the incremental path
        never drifts from it.
        """
        cfg = self.config
        rows = cfg.table_rows
        result: List[int] = []

        if cfg.use_local_history:
            local = self._local.read(pc)
            mixed = mix_pc(pc) ^ stable_hash64(local)
        else:
            mixed = mix_pc(pc)
        result.append(mixed % rows)

        for position, (start, end) in enumerate(cfg.effective_intervals):
            width = end - start  # intervals are half-open [start, end)
            segment = (self._ghist >> start) & ((1 << width) - 1)
            folded = fold_int(segment, width, self._fold_bits)
            mixed = mix_pc(pc, salt=position + 1) ^ folded
            result.append(mixed % rows)
        return result

    # ------------------------------------------------------------------

    def fold_values(self) -> List[int]:
        """The current incremental fold value per interval (diagnostics)."""
        if self._pending:
            self._flush_folds()
        return [fold.fold for fold in self._folds]

    def global_history_value(self) -> int:
        """The raw global history bits (bit 0 most recent)."""
        return self._ghist & self._ghist_mask

    def local_history_of(self, pc: int) -> int:
        """The local history register selected by ``pc``."""
        return self._local.read(pc)

    def storage_bits(self) -> int:
        return self.config.global_history_bits + self._local.storage_bits()

    # ------------------------------------------------------------------
    # Snapshot/restore (see docs/checkpointing.md)
    # ------------------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        # Pending bits are absorbed first, so the snapshot sees the
        # masked history and current fold values with `_pending == 0`.
        # The PC/local-hash memos cache pure functions of their inputs
        # and are excluded — a restored instance rebuilds them lazily
        # with identical values.
        self._flush_folds()
        return {
            "v": 1,
            "kind": "BLBPHistories",
            "ghist": self._ghist,
            "local": self._local.state_dict(),
            "folds": [fold.state_dict() for fold in self._folds],
            "stat_fold_updates": self.stat_fold_updates,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        check_state(state, "BLBPHistories")
        folds = state["folds"]
        require(
            len(folds) == len(self._folds),
            f"interval count mismatch: snapshot has {len(folds)} folds, "
            f"this configuration {len(self._folds)}",
        )
        ghist = int(state["ghist"])
        require(0 <= ghist <= self._ghist_mask, "global history out of range")
        self._ghist = ghist
        self._pending = 0
        self._local.load_state(state["local"])
        # Fold objects load in place: `_fold_batch` keeps references to
        # them, so replacing the objects would sever the batch table.
        for fold, fold_state in zip(self._folds, folds):
            fold.load_state(fold_state)
        self.stat_fold_updates = int(state["stat_fold_updates"])
        self._pc_memo = {}
        self._local_hash_memo = {}
