"""The non-linear weight transfer function (§3.6, Fig. 5).

Before summation, each 4-bit sign/magnitude weight passes through a
convex transfer function that amplifies large magnitudes and damps small
ones, letting the narrow weight range model bit probabilities more
sharply (the same trick as multiperspective perceptron prediction).  The
paper presents its function only as a plot, so the exact integer map
here is tuned empirically on our suite; it preserves the published
properties — odd symmetry, monotone, convex in magnitude, fixed point at
zero.

In a hardware realization this is a 16-entry ROM per weight (or, in a
mixed-signal design, transistor sizing in the DACs — §3.7).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class TransferFunction:
    """A lookup-table transfer function over sign/magnitude weights.

    The table maps weight ``w`` (in ``[-magnitude_max, +magnitude_max]``)
    to ``sign(w) * magnitudes[|w|]``.  ``apply`` uses vectorized fancy
    indexing so the predictor hot path stays cheap.
    """

    def __init__(self, magnitudes: Sequence[int], enabled: bool = True) -> None:
        magnitudes = list(magnitudes)
        if not magnitudes:
            raise ValueError("need at least one magnitude")
        if magnitudes[0] != 0:
            raise ValueError(f"transfer(0) must be 0, got {magnitudes[0]}")
        if any(b < a for a, b in zip(magnitudes, magnitudes[1:])):
            raise ValueError(f"magnitudes must be monotone, got {magnitudes}")
        self.enabled = enabled
        self.magnitude_max = len(magnitudes) - 1
        span = np.arange(-self.magnitude_max, self.magnitude_max + 1)
        if enabled:
            mags = np.array(magnitudes, dtype=np.int32)
            self._lut = np.sign(span).astype(np.int32) * mags[np.abs(span)]
        else:
            self._lut = span.astype(np.int32)

    def apply(self, weights: np.ndarray) -> np.ndarray:
        """Transfer a vector of raw weights (int8, sign/magnitude range)."""
        return self._lut[weights.astype(np.intp) + self.magnitude_max]

    def apply_scalar(self, weight: int) -> int:
        """Transfer one weight value."""
        if not -self.magnitude_max <= weight <= self.magnitude_max:
            raise ValueError(
                f"weight {weight} out of range ±{self.magnitude_max}"
            )
        return int(self._lut[weight + self.magnitude_max])
