"""SNIP: Scaled Neural Indirect Prediction (Jiménez, JWAC-2 2011).

BLBP's §3 positions itself as an extension of SNIP that "greatly reduces
the number of SRAM arrays that would be needed for a practical
implementation from 44 to 8".  SNIP is the original bit-level neural
indirect predictor: instead of hashing history *segments* into table
indices (BLBP's hashed-perceptron style), SNIP keeps one weight array
per individual history feature — each recent conditional outcome and
each recent path element is its own ±1 input to a classic perceptron,
with position-dependent scaling coefficients (the "scaled" in SNIP).

Per predicted target bit k:

    yout[k] = Σ_i  scale(i) · x_i · W_i[row(pc, i)][k]

where ``x_i`` is +1/-1 from history feature i, and ``row(pc, i)``
depends only on the branch PC (history enters through the signs, not
the index).  Target selection against the IBTB is identical to BLBP's.

Because every history bit is an independent input, SNIP handles
high-entropy histories more gracefully than pattern hashing — but needs
one SRAM array per feature (44 in the published configuration), which
is what makes it impractical and motivates BLBP.  The bench
``benchmarks/bench_snip_vs_blbp.py`` reproduces that trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.common.hashing import mix_pc
from repro.common.state import (
    StateError,
    check_state,
    dataclass_fingerprint,
    decode_array,
    encode_array,
    require,
)
from repro.common.storage import StorageBudget
from repro.core.ibtb import IndirectBTB
from repro.core.regions import RegionArray
from repro.core.threshold import PerBitAdaptiveThreshold
from repro.predictors.base import IndirectBranchPredictor


@dataclass(frozen=True)
class SNIPConfig:
    """Sizing knobs for :class:`SNIP` (44 arrays as published)."""

    #: Individual global-history positions used as ±1 inputs.
    history_features: int = 40
    #: Recent-path features (low PC bits of recent branches) as inputs.
    path_features: int = 4
    num_target_bits: int = 12
    low_bit: int = 2
    weight_bits: int = 4
    #: Rows per feature array (indexed by branch PC only).
    table_rows: int = 256
    #: Scaling: scale(i) = scale_num / (scale_den + i), fixed-point-ish.
    scale_numerator: float = 8.0
    scale_denominator: float = 8.0
    #: Piecewise context selection (cf. piecewise-linear branch
    #: prediction): the low ``piecewise_bits`` of recent history offset
    #: the row index, giving the perceptron one linear function per
    #: recent-history context and letting it express non-linearly-
    #: separable target maps.  Off by default — the published SNIP is a
    #: plain linear perceptron; enabling this is an extension studied in
    #: ``benchmarks/bench_snip_vs_blbp.py``.
    piecewise_bits: int = 0
    initial_theta: int = 14
    theta_counter_bits: int = 7
    # IBTB sizing (shared shape with BLBP's Table 2 configuration).
    ibtb_sets: int = 64
    ibtb_ways: int = 64
    ibtb_tag_bits: int = 8
    rrip_bits: int = 2
    region_entries: int = 128
    region_offset_bits: int = 20

    def __post_init__(self) -> None:
        if self.history_features < 1:
            raise ValueError(
                f"need >= 1 history features, got {self.history_features}"
            )
        if self.path_features < 0:
            raise ValueError(f"negative path features {self.path_features}")
        if self.num_target_bits < 1:
            raise ValueError(f"need >= 1 target bits, got {self.num_target_bits}")
        if self.table_rows < 1:
            raise ValueError(f"need >= 1 rows, got {self.table_rows}")
        if self.weight_bits < 2:
            raise ValueError(f"weight_bits must be >= 2, got {self.weight_bits}")

    @property
    def num_features(self) -> int:
        """Total feature arrays (44 in the published configuration)."""
        return self.history_features + self.path_features


class SNIP(IndirectBranchPredictor):
    """The SNIP bit-level neural indirect predictor."""

    name = "SNIP"

    def __init__(self, config: Optional[SNIPConfig] = None) -> None:
        self.config = config or SNIPConfig()
        cfg = self.config
        self._magnitude = (1 << (cfg.weight_bits - 1)) - 1
        # W: (features, rows, K) of sign/magnitude weights.
        self._weights = np.zeros(
            (cfg.num_features, cfg.table_rows, cfg.num_target_bits),
            dtype=np.int8,
        )
        # Position-dependent scaling coefficients, fixed per feature.
        positions = np.arange(cfg.num_features, dtype=float)
        self._scales = cfg.scale_numerator / (cfg.scale_denominator + positions)
        self.threshold = PerBitAdaptiveThreshold(
            num_bits=cfg.num_target_bits,
            initial_theta=cfg.initial_theta,
            counter_bits=cfg.theta_counter_bits,
        )
        self.ibtb = IndirectBTB(
            num_sets=cfg.ibtb_sets,
            num_ways=cfg.ibtb_ways,
            tag_bits=cfg.ibtb_tag_bits,
            rrpv_bits=cfg.rrip_bits,
            regions=RegionArray(cfg.region_entries, cfg.region_offset_bits),
        )
        self._bit_shifts = np.arange(
            cfg.low_bit, cfg.low_bit + cfg.num_target_bits, dtype=np.uint64
        )
        # History: a ring of the most recent feature bits, most recent
        # first.  History features take conditional outcomes; path
        # features take parity bits of recent branch PCs.
        self._ghist = np.zeros(cfg.history_features, dtype=np.int8)
        self._path = np.zeros(max(cfg.path_features, 1), dtype=np.int8)
        self._row_cache: Dict[int, np.ndarray] = {}
        self._ctx: Optional[dict] = None

    # ------------------------------------------------------------------

    def _rows_for(self, pc: int) -> np.ndarray:
        """Per-feature row indices; PC-only, so cacheable per branch."""
        cached = self._row_cache.get(pc)
        if cached is None:
            cfg = self.config
            cached = np.array(
                [
                    mix_pc(pc, salt=feature) % cfg.table_rows
                    for feature in range(cfg.num_features)
                ],
                dtype=np.int64,
            )
            self._row_cache[pc] = cached
        return cached

    def _context_rows(self, pc: int) -> np.ndarray:
        """Row indices for the current (pc, recent-history) context."""
        rows = self._rows_for(pc)
        if not self.config.piecewise_bits:
            return rows
        recent = 0
        for bit in self._ghist[: self.config.piecewise_bits]:
            recent = (recent << 1) | int(bit)
        return (rows + recent) % self.config.table_rows

    def _signs(self) -> np.ndarray:
        """±1 inputs from the current history, length num_features."""
        cfg = self.config
        bits = np.concatenate(
            [self._ghist, self._path[: cfg.path_features]]
        ) if cfg.path_features else self._ghist.copy()
        return (bits.astype(np.float64) * 2.0) - 1.0

    def _compute_yout(self, pc: int) -> np.ndarray:
        rows = self._context_rows(pc)
        gathered = self._weights[np.arange(len(rows)), rows, :].astype(
            np.float64
        )
        signs = self._signs() * self._scales
        return signs @ gathered  # (K,)

    # ------------------------------------------------------------------

    def predict_target(self, pc: int) -> Optional[int]:
        yout = self._compute_yout(pc)
        candidates = self.ibtb.lookup(pc)
        if not candidates:
            prediction = None
            bit_matrix = None
        else:
            targets = np.asarray([t for _, t in candidates], dtype=np.uint64)
            bit_matrix = (
                (targets[:, None] >> self._bit_shifts[None, :]) & np.uint64(1)
            ).astype(np.float64)
            scores = bit_matrix @ yout
            prediction = int(targets[int(np.argmax(scores))])
        self._ctx = {
            "pc": pc,
            "yout": yout,
            "bit_matrix": bit_matrix,
            "prediction": prediction,
        }
        return prediction

    def train(self, pc: int, target: int) -> None:
        ctx = self._ctx
        if ctx is None or ctx["pc"] != pc:
            self.predict_target(pc)
            ctx = self._ctx
        self._ctx = None
        cfg = self.config

        way = self.ibtb.ensure(pc, target)
        self.ibtb.touch(pc, way)

        yout = ctx["yout"]
        actual_bits = (
            (np.uint64(target) >> self._bit_shifts) & np.uint64(1)
        ).astype(np.int8)
        bit_targets = actual_bits.astype(np.float64) * 2.0 - 1.0  # ±1

        predicted_ones = yout >= 0
        correct_bits = predicted_ones == (actual_bits == 1)
        magnitudes = np.abs(yout)

        train_mask = np.zeros(cfg.num_target_bits, dtype=bool)
        for k in range(cfg.num_target_bits):
            correct = bool(correct_bits[k])
            magnitude = int(magnitudes[k])
            self.threshold.observe(k, correct, magnitude)
            if self.threshold.should_train(k, correct, magnitude):
                train_mask[k] = True

        if train_mask.any():
            rows = self._context_rows(pc)
            signs = self._signs()
            # delta[i, k] = x_i * t_k on trained bits; clip to magnitude.
            delta = np.outer(signs, np.where(train_mask, bit_targets, 0.0))
            selected = self._weights[np.arange(len(rows)), rows, :].astype(
                np.int16
            )
            selected += delta.astype(np.int16)
            np.clip(selected, -self._magnitude, self._magnitude, out=selected)
            self._weights[np.arange(len(rows)), rows, :] = selected.astype(
                np.int8
            )

    # ------------------------------------------------------------------

    def on_conditional(self, pc: int, taken: bool) -> None:
        self._ghist = np.roll(self._ghist, 1)
        self._ghist[0] = int(taken)

    def on_retired(self, pc: int, branch_type: int, target: int) -> None:
        if self.config.path_features:
            self._path = np.roll(self._path, 1)
            self._path[0] = (pc >> 2) & 1

    # ------------------------------------------------------------------
    # Snapshot/restore.  `_row_cache` is a pure-PC memo and `_scales`
    # is derived from the config; both are excluded.
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        if self._ctx is not None:
            raise StateError(
                "cannot snapshot SNIP between predict_target and train; "
                "snapshot at record boundaries"
            )
        return {
            "v": 1,
            "kind": "SNIP",
            "config": dataclass_fingerprint(self.config),
            "weights": encode_array(self._weights),
            "threshold": self.threshold.state_dict(),
            "ibtb": self.ibtb.state_dict(),
            "ghist": encode_array(self._ghist),
            "path": encode_array(self._path),
        }

    def load_state(self, state: dict) -> None:
        check_state(state, "SNIP")
        require(
            state["config"] == dataclass_fingerprint(self.config),
            "SNIP snapshot was taken under a different configuration",
        )
        weights = decode_array(state["weights"])
        ghist = decode_array(state["ghist"])
        path = decode_array(state["path"])
        require(
            weights.shape == self._weights.shape
            and weights.dtype == self._weights.dtype,
            "SNIP weight tensor mismatch",
        )
        require(
            ghist.shape == self._ghist.shape
            and path.shape == self._path.shape,
            "SNIP history shape mismatch",
        )
        self._weights = weights
        self._ghist = ghist.astype(np.int8)
        self._path = path.astype(np.int8)
        self.threshold.load_state(state["threshold"])
        self.ibtb.load_state(state["ibtb"])
        self._row_cache = {}
        self._ctx = None

    # ------------------------------------------------------------------

    def storage_budget(self) -> StorageBudget:
        cfg = self.config
        budget = StorageBudget(self.name)
        budget.add(
            f"weights ({cfg.num_features} feature arrays)",
            cfg.num_features * cfg.table_rows * cfg.num_target_bits
            * cfg.weight_bits,
        )
        budget.add("global history", cfg.history_features)
        budget.add("path history", cfg.path_features)
        budget.add("IBTB", self.ibtb.storage_bits())
        budget.add("region array", self.ibtb.regions.storage_bits())
        budget.add("adaptive thresholds", self.threshold.storage_bits())
        return budget
