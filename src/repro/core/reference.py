"""Reference BLBP: the straightforward per-bank implementation.

:class:`ReferenceBLBP` is algorithmically identical to
:class:`repro.core.blbp.BLBP` but deliberately *unoptimized*: it
re-folds every history interval from scratch with ``fold_int``
(:meth:`BLBPHistories.indices_reference`), keeps one
:class:`~repro.core.subpredictor.WeightBank` object per sub-predictor
and loops over them in Python, and drives the adaptive threshold
through the scalar ``observe``/``should_train`` calls — the shape the
code had before the fused-tensor / incremental-fold rewrite.

It exists for differential testing: the equivalence suite
(``tests/integration/test_equivalence.py``) replays the synthetic
workload suite through both predictors in lockstep and asserts
per-branch identical predictions, and ``benchmarks/bench_throughput.py``
uses it as the "before" side of the speedup measurement.  Any change to
the optimized hot path must keep this class in exact behavioural
agreement (or change both, intentionally, in the same commit).

Both classes include the two training fixes of this revision: no
double-promotion of the IBTB way after ``ensure``, and symmetric
threshold-counter saturation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.common.state import (
    StateError,
    check_state,
    dataclass_fingerprint,
    require,
)
from repro.common.storage import StorageBudget
from repro.core.config import BLBPConfig
from repro.core.hibtb import HierarchicalIBTB
from repro.core.histories import BLBPHistories
from repro.core.ibtb import IndirectBTB
from repro.core.regions import RegionArray
from repro.core.subpredictor import WeightBank
from repro.core.threshold import PerBitAdaptiveThreshold
from repro.core.transfer import TransferFunction
from repro.predictors.base import IndirectBranchPredictor


class ReferenceBLBP(IndirectBranchPredictor):
    """Per-bank, from-scratch-fold BLBP (the differential oracle)."""

    name = "BLBP-ref"

    def __init__(self, config: Optional[BLBPConfig] = None) -> None:
        self.config = config or BLBPConfig()
        cfg = self.config
        self.histories = BLBPHistories(cfg)
        self.transfer = TransferFunction(
            cfg.transfer_magnitudes, enabled=cfg.use_transfer_function
        )
        self.threshold = PerBitAdaptiveThreshold(
            num_bits=cfg.num_target_bits,
            initial_theta=cfg.initial_theta,
            counter_bits=cfg.theta_counter_bits,
            adaptive=cfg.use_adaptive_threshold,
        )
        self.banks = [
            WeightBank(cfg.table_rows, cfg.num_target_bits, cfg.weight_bits)
            for _ in range(cfg.num_subpredictors)
        ]
        regions = RegionArray(cfg.region_entries, cfg.region_offset_bits)
        if cfg.use_hierarchical_ibtb:
            self.ibtb = HierarchicalIBTB(
                l1_entries=cfg.hibtb_l1_entries,
                l2_sets=cfg.hibtb_l2_sets,
                l2_ways=cfg.hibtb_l2_ways,
                tag_bits=cfg.ibtb_tag_bits,
                rrpv_bits=cfg.rrip_bits,
                regions=regions,
            )
        else:
            self.ibtb = IndirectBTB(
                num_sets=cfg.ibtb_sets,
                num_ways=cfg.ibtb_ways,
                tag_bits=cfg.ibtb_tag_bits,
                rrpv_bits=cfg.rrip_bits,
                regions=regions,
            )
        self._bit_shifts = np.arange(
            cfg.low_bit, cfg.low_bit + cfg.num_target_bits, dtype=np.uint64
        )
        self._ctx: Optional[dict] = None

    # ------------------------------------------------------------------
    # Prediction (Algorithm 1), one bank at a time
    # ------------------------------------------------------------------

    def _target_bits(self, targets: List[int]) -> np.ndarray:
        array = np.asarray(targets, dtype=np.uint64)
        return ((array[:, None] >> self._bit_shifts[None, :]) & np.uint64(1)).astype(
            np.int32
        )

    def _compute_yout(self, indices: List[int]) -> np.ndarray:
        yout = np.zeros(self.config.num_target_bits, dtype=np.int32)
        for bank, row in zip(self.banks, indices):
            yout += self.transfer.apply(bank.read(row))
        return yout

    def predict_target(self, pc: int) -> Optional[int]:
        indices = self.histories.indices_reference(pc)
        yout = self._compute_yout(indices)
        candidates = self.ibtb.lookup(pc)

        if not candidates:
            prediction = None
            chosen_way = None
            bit_matrix = None
        else:
            targets = [target for _, target in candidates]
            bit_matrix = self._target_bits(targets)
            scores = bit_matrix @ yout
            best = int(np.argmax(scores))
            prediction = targets[best]
            chosen_way = candidates[best][0]

        self._ctx = {
            "pc": pc,
            "indices": indices,
            "yout": yout,
            "candidates": candidates,
            "bit_matrix": bit_matrix,
            "prediction": prediction,
            "chosen_way": chosen_way,
        }
        return prediction

    # ------------------------------------------------------------------
    # Training (Algorithm 2), scalar threshold calls per bit
    # ------------------------------------------------------------------

    def train(self, pc: int, target: int) -> None:
        ctx = self._ctx
        if ctx is None or ctx["pc"] != pc:
            self.predict_target(pc)
            ctx = self._ctx
        self._ctx = None
        cfg = self.config

        # ``ensure`` promotes on hit / inserts on fill; no extra touch.
        self.ibtb.ensure(pc, target)

        yout = ctx["yout"]
        actual_bits = (
            (np.uint64(target) >> self._bit_shifts) & np.uint64(1)
        ).astype(np.int32)

        if cfg.use_selective_update:
            if ctx["bit_matrix"] is not None and len(ctx["bit_matrix"]):
                stacked = np.vstack([ctx["bit_matrix"], actual_bits])
            else:
                stacked = actual_bits[None, :]
            differs = stacked.min(axis=0) != stacked.max(axis=0)
        else:
            differs = np.ones(cfg.num_target_bits, dtype=bool)

        predicted_ones = yout >= 0
        correct_bits = predicted_ones == (actual_bits == 1)
        magnitudes = np.abs(yout)

        train_mask = np.zeros(cfg.num_target_bits, dtype=bool)
        for k in range(cfg.num_target_bits):
            if not differs[k]:
                continue
            correct = bool(correct_bits[k])
            magnitude = int(magnitudes[k])
            self.threshold.observe(k, correct, magnitude)
            if self.threshold.should_train(k, correct, magnitude):
                train_mask[k] = True

        if train_mask.any():
            desired = actual_bits == 1
            for bank, row in zip(self.banks, ctx["indices"]):
                bank.train(row, desired, train_mask)

        self.histories.push_target(pc, target)

    # ------------------------------------------------------------------

    def on_conditional(self, pc: int, taken: bool) -> None:
        self.histories.push_conditional(taken)

    def predicted_bit_vector(self, pc: int) -> Tuple[np.ndarray, np.ndarray]:
        indices = self.histories.indices_reference(pc)
        yout = self._compute_yout(indices)
        return yout, (yout >= 0).astype(np.int32)

    def candidate_targets(self, pc: int) -> List[int]:
        return [target for _, target in self.ibtb.lookup(pc)]

    # ------------------------------------------------------------------
    # Snapshot/restore — same layout as the optimized BLBP, with the
    # banks serialized individually.
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        if self._ctx is not None:
            raise StateError(
                "cannot snapshot ReferenceBLBP between predict_target and "
                "train; snapshot at record boundaries"
            )
        return {
            "v": 1,
            "kind": "ReferenceBLBP",
            "config": dataclass_fingerprint(self.config),
            "histories": self.histories.state_dict(),
            "threshold": self.threshold.state_dict(),
            "banks": [bank.state_dict() for bank in self.banks],
            "ibtb": self.ibtb.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        check_state(state, "ReferenceBLBP")
        require(
            state["config"] == dataclass_fingerprint(self.config),
            "ReferenceBLBP snapshot was taken under a different configuration",
        )
        require(
            len(state["banks"]) == len(self.banks),
            "ReferenceBLBP bank count mismatch",
        )
        self.histories.load_state(state["histories"])
        self.threshold.load_state(state["threshold"])
        for bank, bank_state in zip(self.banks, state["banks"]):
            bank.load_state(bank_state)
        self.ibtb.load_state(state["ibtb"])
        self._ctx = None

    def storage_budget(self) -> StorageBudget:
        cfg = self.config
        budget = StorageBudget(self.name)
        for position, bank in enumerate(self.banks):
            label = (
                "weights (local history)"
                if position == 0
                else f"weights (interval {cfg.effective_intervals[position - 1]})"
            )
            budget.add(label, bank.storage_bits(cfg.weight_bits))
        budget.add("global history", cfg.global_history_bits)
        budget.add(
            "local histories", cfg.local_histories * cfg.local_history_bits
        )
        budget.add("IBTB", self.ibtb.storage_bits())
        budget.add("region array", self.ibtb.regions.storage_bits())
        budget.add("adaptive thresholds", self.threshold.storage_bits())
        return budget
