"""Hashed perceptron conditional predictor (Tarjan & Skadron).

The paper's simulation infrastructure predicts conditional branches with
a hashed perceptron (§4.2): N weight tables, each indexed by a hash of
the branch PC and a geometrically-growing slice of global history; the
prediction is the sign of the summed weights, and training bumps each
selected weight toward the outcome when the prediction was wrong or the
sum's magnitude fell below an adaptively-trained threshold (Seznec's
O-GEHL threshold rule).  This same structure, with per-*bit* weight
vectors, is the skeleton BLBP builds on — so the implementation here is
deliberately written in the same vocabulary as :mod:`repro.core.blbp`.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.common.hashing import fold_int, mix_pc
from repro.common.history import GlobalHistory
from repro.common.state import check_state, decode_array, encode_array, require
from repro.common.storage import StorageBudget
from repro.cond.base import ConditionalPredictor

#: Geometric history lengths used when none are supplied (8 tables).
DEFAULT_HISTORY_LENGTHS: Tuple[int, ...] = (0, 3, 8, 16, 32, 64, 128, 256)


class AdaptiveThreshold:
    """Seznec's adaptive threshold-training rule (O-GEHL).

    Keeps the number of trainings on correct predictions roughly equal to
    the number of mispredictions by nudging θ with a saturating counter.
    """

    __slots__ = ("theta", "_counter", "_counter_bits", "_max", "_min")

    def __init__(self, initial_theta: int, counter_bits: int = 7) -> None:
        if initial_theta < 1:
            raise ValueError(f"theta must be >= 1, got {initial_theta}")
        self.theta = initial_theta
        self._counter = 0
        self._counter_bits = counter_bits
        self._max = (1 << (counter_bits - 1)) - 1
        self._min = -(1 << (counter_bits - 1))

    def observe(self, mispredicted: bool, trained_on_correct: bool) -> None:
        """Feed one training event into the threshold controller."""
        if mispredicted:
            self._counter += 1
            if self._counter >= self._max:
                self._counter = 0
                self.theta += 1
        elif trained_on_correct:
            self._counter -= 1
            if self._counter <= self._min:
                self._counter = 0
                if self.theta > 1:
                    self.theta -= 1

    def state_dict(self) -> dict:
        return {
            "v": 1,
            "kind": "AdaptiveThreshold",
            "counter_bits": self._counter_bits,
            "theta": self.theta,
            "counter": self._counter,
        }

    def load_state(self, state: dict) -> None:
        check_state(state, "AdaptiveThreshold")
        require(
            state["counter_bits"] == self._counter_bits,
            "AdaptiveThreshold counter width mismatch",
        )
        theta = int(state["theta"])
        counter = int(state["counter"])
        require(theta >= 1, "AdaptiveThreshold theta out of range")
        require(
            self._min <= counter <= self._max,
            "AdaptiveThreshold counter out of range",
        )
        self.theta = theta
        self._counter = counter


class HashedPerceptron(ConditionalPredictor):
    """Perceptron predictor with hashed geometric-history features.

    Args:
        history_lengths: history slice (from position 0) hashed into each
            table's index; length 0 gives a PC-only (bias) table.
        index_bits: log2 of rows per table.
        weight_bits: signed weight width (6 bits → [-32, 31]).
    """

    def __init__(
        self,
        history_lengths: Sequence[int] = DEFAULT_HISTORY_LENGTHS,
        index_bits: int = 12,
        weight_bits: int = 6,
    ) -> None:
        if not history_lengths:
            raise ValueError("need at least one history length")
        if index_bits < 1:
            raise ValueError(f"index_bits must be >= 1, got {index_bits}")
        if weight_bits < 2:
            raise ValueError(f"weight_bits must be >= 2, got {weight_bits}")
        self.history_lengths = tuple(history_lengths)
        self.index_bits = index_bits
        self.weight_bits = weight_bits
        self._rows = 1 << index_bits
        self._weight_max = (1 << (weight_bits - 1)) - 1
        self._weight_min = -(1 << (weight_bits - 1))
        self._tables = [
            np.zeros(self._rows, dtype=np.int8) for _ in self.history_lengths
        ]
        self._history = GlobalHistory(max(max(history_lengths), 1))
        self._threshold = AdaptiveThreshold(
            initial_theta=int(2.14 * len(history_lengths) + 20)
        )
        self._index_mask = self._rows - 1

    def _indices(self, pc: int) -> List[int]:
        pc_hash = mix_pc(pc)
        indices = []
        history_value = self._history.value()
        for position, length in enumerate(self.history_lengths):
            if length == 0:
                folded = 0
            else:
                folded = fold_int(history_value, length, self.index_bits)
            index = (pc_hash ^ (pc_hash >> (position + 3)) ^ folded) & self._index_mask
            indices.append(index)
        return indices

    def _sum(self, indices: Sequence[int]) -> int:
        return int(
            sum(int(table[index]) for table, index in zip(self._tables, indices))
        )

    def predict(self, pc: int) -> bool:
        return self._sum(self._indices(pc)) >= 0

    def _train(self, pc: int, taken: bool) -> None:
        indices = self._indices(pc)
        total = self._sum(indices)
        prediction = total >= 0
        mispredicted = prediction != taken
        below_threshold = abs(total) < self._threshold.theta
        if mispredicted or below_threshold:
            for table, index in zip(self._tables, indices):
                weight = int(table[index])
                if taken and weight < self._weight_max:
                    table[index] = weight + 1
                elif not taken and weight > self._weight_min:
                    table[index] = weight - 1
        self._threshold.observe(mispredicted, not mispredicted and below_threshold)

    def update(self, pc: int, taken: bool) -> None:
        self._train(pc, taken)
        self._history.push(taken)

    def train_weights(self, pc: int, taken: bool) -> None:
        self._train(pc, taken)

    def state_dict(self) -> dict:
        return {
            "v": 1,
            "kind": "HashedPerceptron",
            "history_lengths": list(self.history_lengths),
            "index_bits": self.index_bits,
            "weight_bits": self.weight_bits,
            "tables": [encode_array(table) for table in self._tables],
            "history": self._history.state_dict(),
            "threshold": self._threshold.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        check_state(state, "HashedPerceptron")
        require(
            tuple(state["history_lengths"]) == self.history_lengths
            and state["index_bits"] == self.index_bits
            and state["weight_bits"] == self.weight_bits,
            "HashedPerceptron geometry mismatch",
        )
        require(
            len(state["tables"]) == len(self._tables),
            "HashedPerceptron table count mismatch",
        )
        tables = [decode_array(payload) for payload in state["tables"]]
        for table, current in zip(tables, self._tables):
            require(
                table.shape == current.shape and table.dtype == current.dtype,
                "HashedPerceptron table mismatch",
            )
        self._tables = tables
        self._history.load_state(state["history"])
        self._threshold.load_state(state["threshold"])

    def storage_budget(self) -> StorageBudget:
        budget = StorageBudget("hashed perceptron")
        for length in self.history_lengths:
            budget.add_table(
                f"weights (hist {length})", self._rows, self.weight_bits
            )
        budget.add("global history", self._history.capacity)
        budget.add("adaptive threshold", 7 + 8)
        return budget
