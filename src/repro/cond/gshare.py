"""Classic gshare conditional predictor (McFarling).

Used as a cheap reference point in tests and examples; the paper's
infrastructure uses perceptron-family predictors, but gshare's behaviour
is so well understood that it anchors sanity checks on the simulation
engine (e.g. it must predict a strongly-biased branch near-perfectly).
"""

from __future__ import annotations

import numpy as np

from repro.common.hashing import mix_pc
from repro.common.state import check_state, decode_array, encode_array, require
from repro.common.storage import StorageBudget
from repro.cond.base import ConditionalPredictor


class GShare(ConditionalPredictor):
    """Global-history-XOR-PC indexed table of 2-bit counters."""

    def __init__(self, index_bits: int = 14, history_bits: int = 14) -> None:
        if index_bits < 1:
            raise ValueError(f"index_bits must be >= 1, got {index_bits}")
        if history_bits < 0:
            raise ValueError(f"history_bits must be >= 0, got {history_bits}")
        self.index_bits = index_bits
        self.history_bits = history_bits
        self._table = np.full(1 << index_bits, 1, dtype=np.int8)  # weakly NT
        self._history = 0
        self._history_mask = (1 << history_bits) - 1 if history_bits else 0

    def _index(self, pc: int) -> int:
        hashed = mix_pc(pc) ^ self._history
        return hashed & ((1 << self.index_bits) - 1)

    def predict(self, pc: int) -> bool:
        return bool(self._table[self._index(pc)] >= 2)

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = int(self._table[index])
        if taken and counter < 3:
            self._table[index] = counter + 1
        elif not taken and counter > 0:
            self._table[index] = counter - 1
        if self.history_bits:
            self._history = ((self._history << 1) | int(taken)) & self._history_mask

    def state_dict(self) -> dict:
        return {
            "v": 1,
            "kind": "GShare",
            "index_bits": self.index_bits,
            "history_bits": self.history_bits,
            "table": encode_array(self._table),
            "history": self._history,
        }

    def load_state(self, state: dict) -> None:
        check_state(state, "GShare")
        require(
            state["index_bits"] == self.index_bits
            and state["history_bits"] == self.history_bits,
            "GShare geometry mismatch",
        )
        table = decode_array(state["table"])
        require(
            table.shape == self._table.shape
            and table.dtype == self._table.dtype,
            "GShare table mismatch",
        )
        history = int(state["history"])
        require(
            0 <= history <= self._history_mask,
            "GShare history out of range",
        )
        self._table = table
        self._history = history

    def storage_budget(self) -> StorageBudget:
        budget = StorageBudget("gshare")
        budget.add_table("pattern table", 1 << self.index_bits, 2)
        budget.add("global history", self.history_bits)
        return budget
