"""TAGE: tagged geometric-history conditional predictor (Seznec).

The direction-predicting sibling of ITTAGE (§2.2: "The TAGE predictor
predicts conditional branch directions while the ITTAGE predictor
predicts indirect branch targets"; COTTAGE combines both).  Included as
an alternative conditional substrate — VPC can run over TAGE instead of
the multiperspective perceptron, and the COTTAGE pairing
(:class:`repro.predictors.cottage.COTTAGE`) reuses this implementation
directly.

Structure mirrors :class:`repro.predictors.ittage.ITTAGE`: a bimodal
base table plus partially-tagged tables at geometric history lengths,
longest-match provider selection with a weak-entry/altpred meta-choice,
usefulness-guided allocation, and periodic usefulness resets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.common.hashing import FoldedHistory, mix_pc
from repro.common.state import (
    StateError,
    check_state,
    dataclass_fingerprint,
    decode_array,
    encode_array,
    require,
)
from repro.common.storage import StorageBudget
from repro.cond.base import ConditionalPredictor
from repro.predictors.ittage import geometric_lengths


@dataclass(frozen=True)
class TAGEConfig:
    """Sizing knobs for :class:`TAGE` (a ~32 KB configuration)."""

    num_tagged: int = 7
    base_entries: int = 16384
    tagged_entries: int = 1024
    tag_bits: Tuple[int, ...] = (8, 8, 9, 10, 10, 11, 12)
    history_lengths: Tuple[int, ...] = field(
        default_factory=lambda: geometric_lengths(7, minimum=5, maximum=320)
    )
    counter_bits: int = 3
    useful_bits: int = 2
    u_reset_period: int = 1 << 16
    use_alt_bits: int = 4
    seed: int = 0x7A6E

    def __post_init__(self) -> None:
        if len(self.tag_bits) != self.num_tagged:
            raise ValueError(
                f"{self.num_tagged} tables but {len(self.tag_bits)} tag widths"
            )
        if len(self.history_lengths) != self.num_tagged:
            raise ValueError(
                f"{self.num_tagged} tables but "
                f"{len(self.history_lengths)} history lengths"
            )
        if list(self.history_lengths) != sorted(self.history_lengths):
            raise ValueError("history lengths must be non-decreasing")


class _TaggedDirectionTable:
    __slots__ = ("tags", "ctr", "useful", "valid")

    def __init__(self, entries: int) -> None:
        self.tags = np.zeros(entries, dtype=np.int64)
        self.ctr = np.zeros(entries, dtype=np.int8)  # signed: >=0 taken
        self.useful = np.zeros(entries, dtype=np.int8)
        self.valid = np.zeros(entries, dtype=bool)


class TAGE(ConditionalPredictor):
    """Seznec's TAGE conditional branch predictor."""

    def __init__(self, config: Optional[TAGEConfig] = None) -> None:
        self.config = config or TAGEConfig()
        cfg = self.config
        self._rng = np.random.default_rng(cfg.seed)
        # Bimodal base: 2-bit counters, weakly not-taken.
        self._base = np.ones(cfg.base_entries, dtype=np.int8)
        self._tables = [
            _TaggedDirectionTable(cfg.tagged_entries)
            for _ in range(cfg.num_tagged)
        ]
        self._index_bits = max(1, (cfg.tagged_entries - 1).bit_length())
        self._ctr_max = (1 << (cfg.counter_bits - 1)) - 1
        self._ctr_min = -(1 << (cfg.counter_bits - 1))
        self._useful_max = (1 << cfg.useful_bits) - 1

        capacity = max(cfg.history_lengths) + 1
        self._history_ring = [0] * capacity
        self._history_head = 0
        self._index_folds = [
            FoldedHistory(length, self._index_bits)
            for length in cfg.history_lengths
        ]
        self._tag_folds = [
            FoldedHistory(length, cfg.tag_bits[i])
            for i, length in enumerate(cfg.history_lengths)
        ]
        self._tag_folds2 = [
            FoldedHistory(length, max(1, cfg.tag_bits[i] - 1))
            for i, length in enumerate(cfg.history_lengths)
        ]
        self._use_alt = 0
        self._use_alt_max = (1 << (cfg.use_alt_bits - 1)) - 1
        self._use_alt_min = -(1 << (cfg.use_alt_bits - 1))
        self._updates = 0
        self._ctx: Optional[dict] = None

    # ------------------------------------------------------------------

    def _base_index(self, pc: int) -> int:
        return mix_pc(pc) % self.config.base_entries

    def _tagged_index(self, pc: int, table: int) -> int:
        mixed = mix_pc(pc, salt=table + 1) ^ self._index_folds[table].fold
        return (mixed & ((1 << self._index_bits) - 1)) % self.config.tagged_entries

    def _tagged_tag(self, pc: int, table: int) -> int:
        tag = (
            mix_pc(pc, salt=0x7A6 + table)
            ^ self._tag_folds[table].fold
            ^ (self._tag_folds2[table].fold << 1)
        )
        return tag & ((1 << self.config.tag_bits[table]) - 1)

    # ------------------------------------------------------------------

    def predict(self, pc: int) -> bool:
        cfg = self.config
        indices = []
        tags = []
        hits: List[Tuple[int, int]] = []
        for table_number in range(cfg.num_tagged):
            index = self._tagged_index(pc, table_number)
            tag = self._tagged_tag(pc, table_number)
            indices.append(index)
            tags.append(tag)
            table = self._tables[table_number]
            if table.valid[index] and int(table.tags[index]) == tag:
                hits.append((table_number, index))
        hits.sort(reverse=True)

        base_index = self._base_index(pc)
        base_prediction = int(self._base[base_index]) >= 2

        provider = hits[0] if hits else None
        if provider is not None:
            provider_ctr = int(self._tables[provider[0]].ctr[provider[1]])
            provider_prediction = provider_ctr >= 0
            weak = provider_ctr in (-1, 0)
        else:
            provider_prediction = base_prediction
            weak = False

        if len(hits) > 1:
            alt_ctr = int(self._tables[hits[1][0]].ctr[hits[1][1]])
            alt_prediction = alt_ctr >= 0
        else:
            alt_prediction = base_prediction

        if provider is not None and weak and self._use_alt >= 0:
            final = alt_prediction
        elif provider is not None:
            final = provider_prediction
        else:
            final = base_prediction

        self._ctx = {
            "pc": pc,
            "indices": indices,
            "tags": tags,
            "provider": provider,
            "provider_prediction": provider_prediction if provider else None,
            "alt_prediction": alt_prediction,
            "base_index": base_index,
            "final": final,
            "weak": weak,
        }
        return final

    # ------------------------------------------------------------------

    def _train(self, pc: int, taken: bool) -> None:
        ctx = self._ctx
        if ctx is None or ctx["pc"] != pc:
            self.predict(pc)
            ctx = self._ctx
        self._ctx = None
        cfg = self.config
        mispredicted = ctx["final"] != taken

        provider = ctx["provider"]
        if provider is not None:
            table_number, index = provider
            table = self._tables[table_number]
            provider_correct = ctx["provider_prediction"] == taken
            alt_correct = ctx["alt_prediction"] == taken

            if ctx["weak"] and ctx["provider_prediction"] != ctx["alt_prediction"]:
                if alt_correct and not provider_correct:
                    if self._use_alt < self._use_alt_max:
                        self._use_alt += 1
                elif provider_correct and not alt_correct:
                    if self._use_alt > self._use_alt_min:
                        self._use_alt -= 1

            if ctx["provider_prediction"] != ctx["alt_prediction"]:
                if provider_correct and int(table.useful[index]) < self._useful_max:
                    table.useful[index] += 1
                elif not provider_correct and int(table.useful[index]) > 0:
                    table.useful[index] -= 1

            ctr = int(table.ctr[index])
            if taken and ctr < self._ctr_max:
                table.ctr[index] = ctr + 1
            elif not taken and ctr > self._ctr_min:
                table.ctr[index] = ctr - 1

        # Base bimodal always trains.
        base_index = ctx["base_index"]
        base = int(self._base[base_index])
        if taken and base < 3:
            self._base[base_index] = base + 1
        elif not taken and base > 0:
            self._base[base_index] = base - 1

        if mispredicted:
            provider_rank = provider[0] if provider is not None else -1
            self._allocate(ctx, provider_rank, taken)

        self._updates += 1
        if self._updates % cfg.u_reset_period == 0:
            for table in self._tables:
                table.useful[:] = 0

    def _allocate(self, ctx: dict, provider_rank: int, taken: bool) -> None:
        cfg = self.config
        candidates = [
            table_number
            for table_number in range(provider_rank + 1, cfg.num_tagged)
            if int(self._tables[table_number].useful[ctx["indices"][table_number]]) == 0
        ]
        if not candidates:
            for table_number in range(provider_rank + 1, cfg.num_tagged):
                index = ctx["indices"][table_number]
                table = self._tables[table_number]
                if int(table.useful[index]) > 0:
                    table.useful[index] -= 1
            return
        chosen = candidates[0]
        for candidate in candidates[1:]:
            if self._rng.random() < 0.5:
                break
            chosen = candidate
        index = ctx["indices"][chosen]
        table = self._tables[chosen]
        table.valid[index] = True
        table.tags[index] = ctx["tags"][chosen]
        table.ctr[index] = 0 if taken else -1
        table.useful[index] = 0

    # ------------------------------------------------------------------

    def _push_history_bit(self, bit: int) -> None:
        lengths = self.config.history_lengths
        capacity = len(self._history_ring)
        outgoing = [
            self._history_ring[(self._history_head - length) % capacity]
            for length in lengths
        ]
        self._history_ring[self._history_head] = bit
        self._history_head = (self._history_head + 1) % capacity
        for folds in (self._index_folds, self._tag_folds, self._tag_folds2):
            for fold, out in zip(folds, outgoing):
                fold.update(bit, out)

    def update(self, pc: int, taken: bool) -> None:
        self._train(pc, taken)
        self._push_history_bit(int(taken))

    def train_weights(self, pc: int, taken: bool) -> None:
        self._train(pc, taken)

    # ------------------------------------------------------------------
    # Snapshot/restore.  The allocation tie-breaker consumes the RNG, so
    # its bit-generator state is architectural and rides in the snapshot.
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        if self._ctx is not None:
            raise StateError(
                "cannot snapshot TAGE between predict and update; "
                "snapshot at record boundaries"
            )
        return {
            "v": 1,
            "kind": "TAGE",
            "config": dataclass_fingerprint(self.config),
            "base": encode_array(self._base),
            "tables": [
                {
                    "tags": encode_array(table.tags),
                    "ctr": encode_array(table.ctr),
                    "useful": encode_array(table.useful),
                    "valid": encode_array(table.valid),
                }
                for table in self._tables
            ],
            "history_ring": list(self._history_ring),
            "history_head": self._history_head,
            "index_folds": [fold.state_dict() for fold in self._index_folds],
            "tag_folds": [fold.state_dict() for fold in self._tag_folds],
            "tag_folds2": [fold.state_dict() for fold in self._tag_folds2],
            "use_alt": self._use_alt,
            "updates": self._updates,
            "rng": self._rng.bit_generator.state,
        }

    def load_state(self, state: dict) -> None:
        check_state(state, "TAGE")
        require(
            state["config"] == dataclass_fingerprint(self.config),
            "TAGE snapshot was taken under a different configuration",
        )
        require(
            len(state["tables"]) == len(self._tables),
            "TAGE table count mismatch",
        )
        require(
            len(state["history_ring"]) == len(self._history_ring),
            "TAGE history ring size mismatch",
        )
        for table, payload in zip(self._tables, state["tables"]):
            for attr in ("tags", "ctr", "useful", "valid"):
                decoded = decode_array(payload[attr])
                current = getattr(table, attr)
                require(
                    decoded.shape == current.shape
                    and decoded.dtype == current.dtype,
                    f"TAGE table {attr} mismatch",
                )
                setattr(table, attr, decoded)
        self._base = decode_array(state["base"])
        self._history_ring = [int(bit) for bit in state["history_ring"]]
        self._history_head = int(state["history_head"])
        for folds, payloads in (
            (self._index_folds, state["index_folds"]),
            (self._tag_folds, state["tag_folds"]),
            (self._tag_folds2, state["tag_folds2"]),
        ):
            require(len(folds) == len(payloads), "TAGE fold count mismatch")
            for fold, payload in zip(folds, payloads):
                fold.load_state(payload)
        self._use_alt = int(state["use_alt"])
        self._updates = int(state["updates"])
        self._rng.bit_generator.state = state["rng"]
        self._ctx = None

    # ------------------------------------------------------------------

    def storage_budget(self) -> StorageBudget:
        cfg = self.config
        budget = StorageBudget("TAGE")
        budget.add_table("bimodal base", cfg.base_entries, 2)
        for table_number in range(cfg.num_tagged):
            entry_bits = (
                cfg.tag_bits[table_number] + cfg.counter_bits + cfg.useful_bits
            )
            budget.add_table(
                f"tagged table {table_number} "
                f"(hist {cfg.history_lengths[table_number]})",
                cfg.tagged_entries,
                entry_bits,
            )
        budget.add("global history", max(cfg.history_lengths))
        budget.add("use-alt meta counter", cfg.use_alt_bits)
        return budget
