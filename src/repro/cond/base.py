"""Interface for conditional (taken / not-taken) branch predictors."""

from __future__ import annotations

import abc
from typing import Any, Dict

from repro.common.state import hash_state
from repro.common.storage import StorageBudget


class ConditionalPredictor(abc.ABC):
    """A direction predictor for conditional branches.

    The contract mirrors the CBP simulation loop: ``predict`` is called
    at fetch, then ``update`` with the resolved outcome.  ``update`` must
    be called exactly once per prediction, in order.  Implementations
    keep their own history registers; the simulator never feeds history
    in from outside.
    """

    @abc.abstractmethod
    def predict(self, pc: int) -> bool:
        """Predict the direction of the conditional branch at ``pc``."""

    @abc.abstractmethod
    def update(self, pc: int, taken: bool) -> None:
        """Train with the resolved outcome and advance internal history."""

    def train_weights(self, pc: int, taken: bool) -> None:
        """Train on (pc, outcome) WITHOUT advancing internal history.

        VPC uses this for its *virtual* branches: they must train the
        shared predictor's tables, but letting them shift the history
        register would desynchronize training contexts from prediction
        contexts (predictions are made against the history as of the
        real indirect branch).  Default: fall back to ``update`` — only
        predictors actually used under VPC need the real thing.
        """
        self.update(pc, taken)

    @abc.abstractmethod
    def storage_budget(self) -> StorageBudget:
        """Itemized hardware state of this predictor."""

    # Snapshot/restore protocol (see docs/checkpointing.md).

    def state_dict(self) -> Dict[str, Any]:
        """A JSON-ready snapshot of all architectural state."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support snapshot/restore"
        )

    def load_state(self, state: Dict[str, Any]) -> None:
        """Restore a freshly constructed predictor from a snapshot."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support snapshot/restore"
        )

    def state_hash(self) -> str:
        """Canonical SHA-256 of :meth:`state_dict` (determinism checks)."""
        return hash_state(self.state_dict())
