"""BLBP as a conditional predictor — the paper's §6 future work.

§6: "We also plan to explore how BLBP might be used to predict
conditional branches as well as indirect branches as VPC does, allowing
consolidation of the two structures."  A conditional branch is a
one-bit target, so the BLBP machinery collapses naturally: the same
eight history features (local history + the seven tuned global-history
intervals), the same 4-bit sign/magnitude weights with the transfer
function, the same per-"bit" adaptive threshold — but K = 1, and the
"candidate selection" step degenerates to the sign of ``yout``.

This is what consolidation would look like: a front-end could bank the
same SRAM arrays for K = 12 bit-lanes of indirect prediction and one
direction lane.  The bench ``benchmarks/bench_blbp_conditional.py``
compares it with the hashed perceptron and TAGE on the suite's
conditional streams.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.common.hashing import fold_int, mix_pc, stable_hash64
from repro.common.history import LocalHistoryTable
from repro.common.state import (
    check_state,
    dataclass_fingerprint,
    decode_array,
    encode_array,
    require,
)
from repro.common.storage import StorageBudget
from repro.cond.base import ConditionalPredictor
from repro.core.config import BLBPConfig
from repro.core.threshold import PerBitAdaptiveThreshold
from repro.core.transfer import TransferFunction


class BLBPConditional(ConditionalPredictor):
    """Direction predictor sharing BLBP's feature set and training rules.

    Configured through a :class:`~repro.core.config.BLBPConfig`; the
    target-bit count is ignored (K = 1) and local history records the
    branch outcome instead of a target bit.
    """

    def __init__(self, config: Optional[BLBPConfig] = None) -> None:
        self.config = config or BLBPConfig()
        cfg = self.config
        self._magnitude = cfg.weight_magnitude
        self.transfer = TransferFunction(
            cfg.transfer_magnitudes, enabled=cfg.use_transfer_function
        )
        self.threshold = PerBitAdaptiveThreshold(
            num_bits=1,
            initial_theta=cfg.initial_theta,
            counter_bits=cfg.theta_counter_bits,
            adaptive=cfg.use_adaptive_threshold,
        )
        self._tables = [
            np.zeros(cfg.table_rows, dtype=np.int8)
            for _ in range(cfg.num_subpredictors)
        ]
        self._ghist = 0
        self._ghist_mask = (1 << cfg.global_history_bits) - 1
        self._local = LocalHistoryTable(
            cfg.local_histories, cfg.local_history_bits
        )
        self._fold_bits = max(1, (cfg.table_rows - 1).bit_length())

    def _indices(self, pc: int) -> List[int]:
        cfg = self.config
        rows = cfg.table_rows
        indices = []
        if cfg.use_local_history:
            mixed = mix_pc(pc) ^ stable_hash64(self._local.read(pc))
        else:
            mixed = mix_pc(pc)
        indices.append(mixed % rows)
        for position, (start, end) in enumerate(cfg.effective_intervals):
            width = end - start
            segment = (self._ghist >> start) & ((1 << width) - 1)
            folded = fold_int(segment, width, self._fold_bits)
            indices.append((mix_pc(pc, salt=position + 1) ^ folded) % rows)
        return indices

    def _yout(self, indices: List[int]) -> int:
        total = 0
        for table, index in zip(self._tables, indices):
            total += self.transfer.apply_scalar(int(table[index]))
        return total

    def predict(self, pc: int) -> bool:
        return self._yout(self._indices(pc)) >= 0

    def _train(self, pc: int, taken: bool) -> None:
        indices = self._indices(pc)
        yout = self._yout(indices)
        correct = (yout >= 0) == taken
        magnitude = abs(yout)
        self.threshold.observe(0, correct, magnitude)
        if self.threshold.should_train(0, correct, magnitude):
            for table, index in zip(self._tables, indices):
                weight = int(table[index])
                if taken and weight < self._magnitude:
                    table[index] = weight + 1
                elif not taken and weight > -self._magnitude:
                    table[index] = weight - 1

    def update(self, pc: int, taken: bool) -> None:
        self._train(pc, taken)
        self._ghist = ((self._ghist << 1) | int(taken)) & self._ghist_mask
        self._local.push(pc, int(taken))

    def train_weights(self, pc: int, taken: bool) -> None:
        self._train(pc, taken)

    def state_dict(self) -> dict:
        return {
            "v": 1,
            "kind": "BLBPConditional",
            "config": dataclass_fingerprint(self.config),
            "tables": [encode_array(table) for table in self._tables],
            "ghist": self._ghist,
            "local": self._local.state_dict(),
            "threshold": self.threshold.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        check_state(state, "BLBPConditional")
        require(
            state["config"] == dataclass_fingerprint(self.config),
            "BLBPConditional snapshot was taken under a different "
            "configuration",
        )
        require(
            len(state["tables"]) == len(self._tables),
            "BLBPConditional table count mismatch",
        )
        tables = [decode_array(payload) for payload in state["tables"]]
        for table, current in zip(tables, self._tables):
            require(
                table.shape == current.shape and table.dtype == current.dtype,
                "BLBPConditional table mismatch",
            )
        ghist = int(state["ghist"])
        require(
            0 <= ghist <= self._ghist_mask,
            "BLBPConditional global history out of range",
        )
        self._tables = tables
        self._ghist = ghist
        self._local.load_state(state["local"])
        self.threshold.load_state(state["threshold"])

    def storage_budget(self) -> StorageBudget:
        cfg = self.config
        budget = StorageBudget("BLBP-cond")
        budget.add(
            "weights (8 single-lane arrays)",
            cfg.num_subpredictors * cfg.table_rows * cfg.weight_bits,
        )
        budget.add("global history", cfg.global_history_bits)
        budget.add(
            "local histories", cfg.local_histories * cfg.local_history_bits
        )
        budget.add("adaptive threshold", self.threshold.storage_bits())
        return budget
