"""A reduced multiperspective perceptron predictor (MPP).

The paper implements VPC on top of Jiménez's 64 KB multiperspective
perceptron predictor, which combines 37 features (global history
segments, paths, local histories, recency stacks, ...).  Reproducing all
37 features adds little to this study — VPC's behaviour is dominated by
the devirtualization algorithm, not the last percent of its conditional
predictor — so this MPP keeps the three feature families that carry most
of the weight in the published ablations:

* **global-history segments** at geometric lengths (as in the hashed
  perceptron);
* **path history** folds at several depths;
* **per-branch local history**;
* a **bias** table indexed by PC alone.

The deviation is recorded in DESIGN.md §5.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.common.hashing import fold_int, mix_pc
from repro.common.history import GlobalHistory, LocalHistoryTable, PathHistory
from repro.common.state import check_state, decode_array, encode_array, require
from repro.common.storage import StorageBudget
from repro.cond.base import ConditionalPredictor
from repro.cond.hashed_perceptron import AdaptiveThreshold

#: (kind, parameter) feature descriptors for the default configuration.
#: kinds: "bias", "ghist" (parameter = history length), "path"
#: (parameter = fold depth), "local" (parameter ignored).
DEFAULT_FEATURES: Tuple[Tuple[str, int], ...] = (
    ("bias", 0),
    ("ghist", 4),
    ("ghist", 10),
    ("ghist", 24),
    ("ghist", 55),
    ("ghist", 120),
    ("ghist", 256),
    ("path", 8),
    ("path", 24),
    ("local", 0),
)


class MultiperspectivePerceptron(ConditionalPredictor):
    """Perceptron predictor over heterogeneous history features."""

    def __init__(
        self,
        features: Sequence[Tuple[str, int]] = DEFAULT_FEATURES,
        index_bits: int = 12,
        weight_bits: int = 6,
        local_entries: int = 512,
        local_bits: int = 11,
    ) -> None:
        if not features:
            raise ValueError("need at least one feature")
        for kind, _ in features:
            if kind not in ("bias", "ghist", "path", "local"):
                raise ValueError(f"unknown feature kind {kind!r}")
        self.features = tuple(features)
        self.index_bits = index_bits
        self.weight_bits = weight_bits
        self._rows = 1 << index_bits
        self._index_mask = self._rows - 1
        self._weight_max = (1 << (weight_bits - 1)) - 1
        self._weight_min = -(1 << (weight_bits - 1))
        self._tables = [np.zeros(self._rows, dtype=np.int8) for _ in self.features]

        max_ghist = max(
            [parameter for kind, parameter in features if kind == "ghist"],
            default=1,
        )
        max_path = max(
            [parameter for kind, parameter in features if kind == "path"],
            default=1,
        )
        self._ghist = GlobalHistory(max(max_ghist, 1))
        self._path = PathHistory(max(max_path, 1))
        self._local = LocalHistoryTable(local_entries, local_bits)
        self._threshold = AdaptiveThreshold(
            initial_theta=int(2.14 * len(features) + 20)
        )

    def _indices(self, pc: int) -> List[int]:
        pc_hash = mix_pc(pc)
        ghist_value = self._ghist.value()
        indices = []
        for position, (kind, parameter) in enumerate(self.features):
            if kind == "bias":
                folded = 0
            elif kind == "ghist":
                folded = fold_int(ghist_value, parameter, self.index_bits)
            elif kind == "path":
                folded = self._path.folded(parameter, self.index_bits)
            else:  # local
                folded = fold_int(
                    self._local.read(pc), self._local.history_bits, self.index_bits
                )
            index = (pc_hash ^ (pc_hash >> (position + 3)) ^ folded) & self._index_mask
            indices.append(index)
        return indices

    def _sum(self, indices: Sequence[int]) -> int:
        return int(
            sum(int(table[index]) for table, index in zip(self._tables, indices))
        )

    def predict(self, pc: int) -> bool:
        return self._sum(self._indices(pc)) >= 0

    def _train(self, pc: int, taken: bool) -> None:
        indices = self._indices(pc)
        total = self._sum(indices)
        prediction = total >= 0
        mispredicted = prediction != taken
        below_threshold = abs(total) < self._threshold.theta
        if mispredicted or below_threshold:
            for table, index in zip(self._tables, indices):
                weight = int(table[index])
                if taken and weight < self._weight_max:
                    table[index] = weight + 1
                elif not taken and weight > self._weight_min:
                    table[index] = weight - 1
        self._threshold.observe(mispredicted, not mispredicted and below_threshold)

    def update(self, pc: int, taken: bool) -> None:
        self._train(pc, taken)
        self._ghist.push(taken)
        self._path.push(pc)
        self._local.push(pc, int(taken))

    def train_weights(self, pc: int, taken: bool) -> None:
        self._train(pc, taken)

    def state_dict(self) -> dict:
        return {
            "v": 1,
            "kind": "MultiperspectivePerceptron",
            "features": [list(feature) for feature in self.features],
            "index_bits": self.index_bits,
            "weight_bits": self.weight_bits,
            "tables": [encode_array(table) for table in self._tables],
            "ghist": self._ghist.state_dict(),
            "path": self._path.state_dict(),
            "local": self._local.state_dict(),
            "threshold": self._threshold.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        check_state(state, "MultiperspectivePerceptron")
        require(
            tuple(tuple(feature) for feature in state["features"])
            == self.features
            and state["index_bits"] == self.index_bits
            and state["weight_bits"] == self.weight_bits,
            "MultiperspectivePerceptron geometry mismatch",
        )
        require(
            len(state["tables"]) == len(self._tables),
            "MultiperspectivePerceptron table count mismatch",
        )
        tables = [decode_array(payload) for payload in state["tables"]]
        for table, current in zip(tables, self._tables):
            require(
                table.shape == current.shape and table.dtype == current.dtype,
                "MultiperspectivePerceptron table mismatch",
            )
        self._tables = tables
        self._ghist.load_state(state["ghist"])
        self._path.load_state(state["path"])
        self._local.load_state(state["local"])
        self._threshold.load_state(state["threshold"])

    def storage_budget(self) -> StorageBudget:
        budget = StorageBudget("multiperspective perceptron")
        for kind, parameter in self.features:
            budget.add_table(
                f"weights ({kind} {parameter})", self._rows, self.weight_bits
            )
        budget.add("global history", self._ghist.capacity)
        budget.add("path history", self._path.depth * self._path.bits_per_pc)
        budget.add("local histories", self._local.storage_bits())
        budget.add("adaptive threshold", 7 + 8)
        return budget
