"""Conditional-branch predictor substrate.

The paper's simulation uses a hashed perceptron predictor for
conditional branches (§4.2), and its VPC baseline devirtualizes indirect
branches on top of a 64 KB multiperspective perceptron predictor.  This
package provides those predictors plus a simple gshare reference point:

* :class:`~repro.cond.gshare.GShare` — classic two-level predictor;
* :class:`~repro.cond.hashed_perceptron.HashedPerceptron` — Tarjan &
  Skadron's merged path/gshare perceptron;
* :class:`~repro.cond.mpp.MultiperspectivePerceptron` — a reduced
  multiperspective perceptron (global-history segments, path history and
  bias features) used as VPC's underlying predictor.
"""

from repro.cond.base import ConditionalPredictor
from repro.cond.blbp_cond import BLBPConditional
from repro.cond.gshare import GShare
from repro.cond.hashed_perceptron import HashedPerceptron
from repro.cond.mpp import MultiperspectivePerceptron
from repro.cond.tage import TAGE, TAGEConfig

__all__ = [
    "ConditionalPredictor",
    "GShare",
    "HashedPerceptron",
    "MultiperspectivePerceptron",
    "TAGE",
    "TAGEConfig",
    "BLBPConditional",
]
