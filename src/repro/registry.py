"""The predictor construction registry.

One string-keyed catalogue of every predictor the reproduction can
build — indirect target predictors, conditional direction predictors,
and the consolidated front-ends — shared by the CLI (``--predictors``),
exec campaign planning, the design-space search, and the checkpointing
test-suite ("every registered predictor round-trips through
``state_dict``/``load_state``").

Names are the stable public identifiers: they appear in journals,
leaderboards, and golden state-hash fixtures, so renaming an entry is a
breaking change to on-disk artifacts.  Every factory takes no arguments
and returns a predictor in its default (paper Table 2) configuration;
:func:`make_indirect`/:func:`make_conditional` construct by name with a
helpful error listing valid choices.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.cond.base import ConditionalPredictor
from repro.cond.blbp_cond import BLBPConditional
from repro.cond.gshare import GShare
from repro.cond.hashed_perceptron import HashedPerceptron
from repro.cond.mpp import MultiperspectivePerceptron
from repro.cond.tage import TAGE
from repro.core.blbp import BLBP
from repro.core.frontend import ConsolidatedBLBPFrontend
from repro.core.reference import ReferenceBLBP
from repro.core.snip import SNIP
from repro.predictors.base import IndirectBranchPredictor
from repro.predictors.btb import BranchTargetBuffer
from repro.predictors.cottage import COTTAGE
from repro.predictors.ittage import ITTAGE
from repro.predictors.target_cache import TargetCache
from repro.predictors.two_bit_btb import TwoBitBTB
from repro.predictors.vpc import VPCPredictor

IndirectFactory = Callable[[], IndirectBranchPredictor]
ConditionalFactory = Callable[[], ConditionalPredictor]

#: Every indirect target predictor, by its CLI/journal name.
INDIRECT_PREDICTORS: Dict[str, IndirectFactory] = {
    "BTB": BranchTargetBuffer,
    "2bit-BTB": TwoBitBTB,
    "TargetCache": TargetCache,
    "VPC": VPCPredictor,
    "ITTAGE": ITTAGE,
    "COTTAGE": COTTAGE,
    "SNIP": SNIP,
    "BLBP": BLBP,
    "BLBP-ref": ReferenceBLBP,
    "BLBP-frontend": ConsolidatedBLBPFrontend,
}

#: Every conditional direction predictor, by name.
CONDITIONAL_PREDICTORS: Dict[str, ConditionalFactory] = {
    "gshare": GShare,
    "hashed-perceptron": HashedPerceptron,
    "mpp": MultiperspectivePerceptron,
    "tage": TAGE,
    "blbp-cond": BLBPConditional,
}

#: Consolidated front-ends (indirect + conditional behind one object).
FRONTEND_PREDICTORS: Dict[str, IndirectFactory] = {
    "BLBP-frontend": ConsolidatedBLBPFrontend,
    "COTTAGE": COTTAGE,
    "VPC": VPCPredictor,
}


class RegistryError(KeyError):
    """An unknown predictor name was requested."""


def _lookup(name: str, table: Dict[str, Callable], what: str) -> Callable:
    try:
        return table[name]
    except KeyError:
        raise RegistryError(
            f"unknown {what} predictor {name!r}; choose from "
            f"{', '.join(sorted(table))}"
        ) from None


def indirect_factory(name: str) -> IndirectFactory:
    """The zero-argument factory registered under ``name``."""
    return _lookup(name, INDIRECT_PREDICTORS, "indirect")


def conditional_factory(name: str) -> ConditionalFactory:
    """The zero-argument factory registered under ``name``."""
    return _lookup(name, CONDITIONAL_PREDICTORS, "conditional")


def make_indirect(name: str) -> IndirectBranchPredictor:
    """Construct the indirect predictor registered under ``name``."""
    return indirect_factory(name)()


def make_conditional(name: str) -> ConditionalPredictor:
    """Construct the conditional predictor registered under ``name``."""
    return conditional_factory(name)()


def indirect_names() -> List[str]:
    """Registered indirect predictor names, in registration order."""
    return list(INDIRECT_PREDICTORS)


def conditional_names() -> List[str]:
    """Registered conditional predictor names, in registration order."""
    return list(CONDITIONAL_PREDICTORS)


def config_fingerprint(name: str, kind: str = "indirect") -> str:
    """Stable fingerprint of the default configuration behind ``name``.

    The canonical state hash of a freshly constructed instance: two
    registry entries fingerprint equal exactly when they would behave
    identically on every future branch from a cold start, so a changed
    default configuration (or initial table layout) changes the
    fingerprint.  Shown by ``python -m repro registry`` and used by the
    serve layer to describe what a session key actually builds.
    """
    if kind == "indirect":
        instance = make_indirect(name)
    elif kind == "conditional":
        instance = make_conditional(name)
    else:
        raise ValueError(f"kind must be 'indirect' or 'conditional', not {kind!r}")
    return instance.state_hash()


def registry_listing() -> List[Dict[str, str]]:
    """Every registered predictor with its kind and config fingerprint.

    One row per entry: ``{"name", "kind", "class", "fingerprint"}``,
    indirect predictors first (registration order), then conditionals.
    """
    rows: List[Dict[str, str]] = []
    for kind, table in (
        ("indirect", INDIRECT_PREDICTORS),
        ("conditional", CONDITIONAL_PREDICTORS),
    ):
        for name, factory in table.items():
            instance = factory()
            rows.append(
                {
                    "name": name,
                    "kind": kind,
                    "class": type(instance).__name__,
                    "fingerprint": instance.state_hash(),
                }
            )
    return rows


__all__ = [
    "CONDITIONAL_PREDICTORS",
    "FRONTEND_PREDICTORS",
    "INDIRECT_PREDICTORS",
    "ConditionalFactory",
    "IndirectFactory",
    "RegistryError",
    "conditional_factory",
    "conditional_names",
    "config_fingerprint",
    "indirect_factory",
    "indirect_names",
    "make_conditional",
    "make_indirect",
    "registry_listing",
]
