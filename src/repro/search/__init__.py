"""Design-space exploration engine: parallel, journaled, resumable.

The paper's headline configuration is a search artifact — hill-climbed
intervals (§3.6), swept sizings (§3.7) — so the reproduction treats
search as a first-class subsystem built on :mod:`repro.exec`:

* :mod:`repro.search.space` — declarative parameter spaces over
  :class:`~repro.core.config.BLBPConfig` with validation, seeded
  sampling, mutation, and grid enumeration;
* :mod:`repro.search.strategies` — batch-proposing strategies: batched
  stochastic hill-climbing, random search, grid search, and successive
  halving on trace-subset budgets;
* :mod:`repro.search.evaluate` — a batched evaluator that spills the
  tuning traces once and scores whole candidate generations through
  the exec pool (one cell per candidate × trace), with per-candidate
  mean-MPKI aggregation and a score memo;
* :mod:`repro.search.journal` — a JSONL log of every scored candidate
  enabling ``--resume`` with zero re-evaluation;
* :mod:`repro.search.leaderboard` — deterministic ranked leaderboards
  exportable to JSON and markdown;
* :mod:`repro.search.engine` — :func:`run_search`, the loop tying them
  together.

Quickstart::

    from repro.search import (
        GenerationEvaluator, HillClimb, intervals_space, run_search,
    )

    space = intervals_space()
    with GenerationEvaluator(traces, jobs=4) as evaluator:
        result = run_search(
            HillClimb(space, seed=7, batch_size=8),
            evaluator,
            budget=64,
            journal_path="search.jsonl",   # rerun to resume
        )
    print(result.best_params, result.best_score)

CLI equivalent: ``python -m repro search --strategy hillclimb
--budget 64 --jobs 4 --resume search.jsonl``.
"""

from repro.search.engine import SearchProgress, SearchResult, run_search
from repro.search.evaluate import (
    Candidate,
    EvaluationError,
    GenerationEvaluator,
    config_candidate,
    make_candidate,
    suite_evaluator,
)
from repro.search.journal import (
    SEARCH_JOURNAL_VERSION,
    SearchJournal,
    SearchJournalError,
    SearchRecord,
    load_search_journal,
)
from repro.search.leaderboard import (
    Leaderboard,
    LeaderboardEntry,
    build_leaderboard,
    format_leaderboard,
    leaderboard_to_json,
    save_leaderboard_json,
    save_leaderboard_markdown,
)
from repro.search.space import (
    ChoiceDimension,
    Dimension,
    IntDimension,
    IntervalsDimension,
    SearchSpace,
    SpaceError,
    default_space,
    intervals_space,
    sizing_space,
    toggle,
    toggles_space,
)
from repro.search.strategies import (
    STRATEGIES,
    GridSearch,
    HillClimb,
    Proposal,
    RandomSearch,
    Strategy,
    SuccessiveHalving,
    make_strategy,
)

__all__ = [
    "Candidate",
    "ChoiceDimension",
    "Dimension",
    "EvaluationError",
    "GenerationEvaluator",
    "GridSearch",
    "HillClimb",
    "IntDimension",
    "IntervalsDimension",
    "Leaderboard",
    "LeaderboardEntry",
    "Proposal",
    "RandomSearch",
    "SEARCH_JOURNAL_VERSION",
    "STRATEGIES",
    "SearchJournal",
    "SearchJournalError",
    "SearchProgress",
    "SearchRecord",
    "SearchResult",
    "SearchSpace",
    "SpaceError",
    "Strategy",
    "SuccessiveHalving",
    "build_leaderboard",
    "config_candidate",
    "default_space",
    "make_candidate",
    "format_leaderboard",
    "intervals_space",
    "leaderboard_to_json",
    "load_search_journal",
    "make_strategy",
    "run_search",
    "save_leaderboard_json",
    "save_leaderboard_markdown",
    "sizing_space",
    "suite_evaluator",
    "toggle",
    "toggles_space",
]
