"""Batched candidate evaluation through the ``repro.exec`` pool.

Search throughput is bounded by simulation, so the evaluator treats a
whole candidate *generation* as one campaign: every (candidate, trace)
pair becomes one :class:`~repro.exec.plan.CellSpec` and the exec pool
schedules them all at once — B candidates × T traces cells per
generation instead of one simulation at a time.

Two costs are paid once, not per generation:

* **Trace spill.**  Tuning traces are written through the ``RPTRACE1``
  binary cache a single time at construction; every generation's cells
  point at the same files (``plan_campaign`` would re-spill per call,
  which is exactly what a thousand-generation search cannot afford).
* **Candidate scores.**  A per-evaluator memo keyed on
  ``(candidate key, trace subset)`` makes re-proposed candidates free —
  hill-climbing revisits its incumbent constantly, and successive
  halving re-scores survivors only at *larger* budgets.

Factories cross the process boundary as
``functools.partial(BLBP, config)`` — picklable because
:class:`BLBPConfig` is a frozen dataclass — so parallel generations
never degrade to the serial fallback.

The default tuning workload comes from
:func:`repro.experiments.runcache.get_suite_traces`, sharing the
process-level suite cache with the figure benchmarks.
"""

from __future__ import annotations

import functools
import hashlib
import math
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core import BLBP
from repro.core.config import BLBPConfig
from repro.exec import resolve_jobs
from repro.exec.events import EventSink
from repro.exec.plan import CampaignPlan, CellSpec, FactoryRef, _spill_name
from repro.exec.pool import execute_plan
from repro.trace.source import as_source
from repro.trace.stream import Trace


class EvaluationError(RuntimeError):
    """A candidate generation could not be scored."""


@dataclass(frozen=True)
class Candidate:
    """One scoreable configuration with a stable identity.

    ``key`` is the canonical parameter string from
    :meth:`SearchSpace.candidate_key`; ``uid`` the short derived id used
    as the predictor name inside exec plans and journals.
    """

    key: str
    uid: str
    config: BLBPConfig
    params: Dict[str, object] = field(default_factory=dict, compare=False)


def make_candidate(space, params) -> "Candidate":
    """Build a :class:`Candidate` from a space assignment."""
    return Candidate(
        key=space.candidate_key(params),
        uid=space.candidate_id(params),
        config=space.to_config(params),
        params=dict(params),
    )


def config_candidate(label: str, config: BLBPConfig) -> "Candidate":
    """A candidate from an explicit config, keyed by a caller label.

    The sweep/ablation drivers name points by human label rather than
    by parameter assignment; the uid is hash-derived so it is always
    plan- and journal-safe whatever the label contains.
    """
    digest = hashlib.sha1(label.encode("utf-8")).hexdigest()
    return Candidate(
        key=label,
        uid=f"cand-{digest[:16]}",
        config=config,
        params={"label": label},
    )


class GenerationEvaluator:
    """Scores candidate generations as parallel campaigns.

    Use as a context manager (or call :meth:`close`) so a temporary
    spill directory is cleaned up; an explicit ``cache_dir`` is left in
    place for reuse across processes.
    """

    def __init__(
        self,
        traces: Sequence[Trace],
        jobs: Optional[int] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        events: Optional[EventSink] = None,
        ras_depth: int = 32,
        warmup_records: int = 0,
        timeout: Optional[float] = None,
        retries: int = 2,
        backoff: float = 0.1,
        fuse: bool = True,
        pool=None,
        backend: str = "scalar",
    ) -> None:
        sources = [as_source(trace) for trace in traces]
        if not sources:
            raise EvaluationError("evaluator needs at least one trace")
        names = [source.name for source in sources]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise EvaluationError(
                f"duplicate trace names: {sorted(duplicates)}"
            )
        self.jobs = resolve_jobs(jobs)
        self.events = events
        self.ras_depth = ras_depth
        self.warmup_records = warmup_records
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.fuse = fuse
        self.backend = backend
        # Resolve the campaign pool once for the evaluator's lifetime —
        # a search scores hundreds of generations, and an env-driven
        # NodePool must not respawn its workers per score() call.
        # Worker trace stores are content-addressed, so every
        # generation's cells reuse the spills shipped by the first.
        from repro.dist import resolve_pool

        self.pool = resolve_pool(pool)
        self._owns_pool = pool is None and self.pool is not None
        self._owns_dir = cache_dir is None
        self._dir = Path(
            tempfile.mkdtemp(prefix="repro-search-")
            if cache_dir is None
            else cache_dir
        )
        self._dir.mkdir(parents=True, exist_ok=True)
        # Spill every source exactly once; cells reference these paths
        # for the evaluator's whole lifetime.  Lazy sources (workload
        # specs, files, sampled views) materialize only here, then are
        # released.  A reused cache_dir whose spills already match by
        # content hash is left untouched.
        self._spilled: List[Tuple[str, str, int]] = []
        for index, source in enumerate(sources):
            path = self._dir / _spill_name(index, source.name)
            source.spill(path)
            self._spilled.append((source.name, str(path), len(source)))
            source.release()
        #: (candidate key, subset size) → mean MPKI over that subset.
        self._memo: Dict[Tuple[str, int], float] = {}
        #: Candidates actually simulated (memo misses), cumulative.
        self.evaluated = 0
        #: Individual (candidate, trace) cells simulated, cumulative.
        self.cells_run = 0

    # -- lifecycle -----------------------------------------------------

    @property
    def num_traces(self) -> int:
        return len(self._spilled)

    def subset_size(self, trace_fraction: float) -> int:
        """Deterministic subset size for a strategy's trace fraction."""
        if not 0.0 < trace_fraction <= 1.0:
            raise EvaluationError(
                f"trace_fraction must be in (0, 1], got {trace_fraction}"
            )
        return max(1, math.ceil(trace_fraction * self.num_traces))

    def close(self) -> None:
        if self._owns_pool and self.pool is not None:
            self.pool.close()
            self.pool = None
            self._owns_pool = False
        if self._owns_dir and self._dir.exists():
            shutil.rmtree(self._dir, ignore_errors=True)

    def __enter__(self) -> "GenerationEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- scoring -------------------------------------------------------

    def score(
        self,
        candidates: Sequence[Candidate],
        subset: Optional[int] = None,
    ) -> List[float]:
        """Mean MPKI per candidate over the first ``subset`` traces.

        Scores come back in candidate order.  Already-memoized
        candidates cost nothing; the rest are scored through one exec
        campaign (parallel when ``jobs > 1``), whose deterministic
        merge makes the returned scores independent of scheduling.
        """
        subset = self.num_traces if subset is None else subset
        if not 1 <= subset <= self.num_traces:
            raise EvaluationError(
                f"subset must be in [1, {self.num_traces}], got {subset}"
            )
        pending: List[Candidate] = []
        seen_uids = set()
        for candidate in candidates:
            if (candidate.key, subset) in self._memo:
                continue
            if candidate.uid in seen_uids:
                continue
            seen_uids.add(candidate.uid)
            pending.append(candidate)

        if pending:
            plan = self._plan(pending, subset)
            campaign = execute_plan(
                plan,
                jobs=self.jobs,
                events=self.events,
                timeout=self.timeout,
                retries=self.retries,
                backoff=self.backoff,
                fuse=self.fuse,
                pool=self.pool,
            )
            for candidate in pending:
                values = [
                    campaign.results[trace_name][candidate.uid].mpki()
                    for trace_name, _, _ in self._spilled[:subset]
                ]
                self._memo[(candidate.key, subset)] = sum(values) / len(
                    values
                )
            self.evaluated += len(pending)
            self.cells_run += len(plan.cells)

        return [
            self._memo[(candidate.key, subset)] for candidate in candidates
        ]

    def prime(self, key: str, subset: int, score: float) -> None:
        """Seed the memo from a journal so resumed runs skip simulation."""
        self._memo[(key, subset)] = score

    def _plan(
        self, candidates: Sequence[Candidate], subset: int
    ) -> CampaignPlan:
        cells: List[CellSpec] = []
        index = 0
        for trace_name, trace_path, records in self._spilled[:subset]:
            for candidate in candidates:
                cells.append(
                    CellSpec(
                        index=index,
                        trace_name=trace_name,
                        predictor_name=candidate.uid,
                        trace_path=trace_path,
                        factory=FactoryRef(
                            obj=functools.partial(BLBP, candidate.config)
                        ),
                        ras_depth=self.ras_depth,
                        warmup_records=self.warmup_records,
                        records=records,
                        backend=self.backend,
                    )
                )
                index += 1
        return CampaignPlan(cells=cells, cache_dir=self._dir)


def suite_evaluator(
    stride: int = 10,
    scale: Optional[float] = None,
    suite: str = "suite88",
    **kwargs,
) -> GenerationEvaluator:
    """An evaluator over a suite subsample from the shared run cache.

    ``get_suite_traces`` memoizes generated suites per (suite, scale),
    so a search and the figure benchmarks share one generation cost.
    """
    from repro.experiments.runcache import get_suite_traces

    traces = get_suite_traces(scale, suite)[:: max(1, stride)]
    return GenerationEvaluator(traces, **kwargs)


__all__ = [
    "Candidate",
    "EvaluationError",
    "GenerationEvaluator",
    "config_candidate",
    "make_candidate",
    "suite_evaluator",
]
