"""The search loop: strategy × evaluator × journal → leaderboard.

:func:`run_search` owns the generation loop.  Each iteration asks the
strategy for a :class:`~repro.search.strategies.Proposal`, deducts it
from the evaluation budget, splits it into journaled candidates (scores
replayed, zero simulation) and fresh ones (scored as one parallel
campaign through the evaluator), journals the fresh scores, and feeds
the whole generation back to the strategy in proposal order.

Determinism contract: the budget is charged for **every** proposed
candidate, journaled or not, and proposals are truncated to the
remaining budget before any journal lookup.  A resumed search therefore
walks the exact generation sequence of an uninterrupted one — same
proposals, same truncations, same observations — and its leaderboard is
byte-identical while re-evaluating only what the journal lacks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.search.evaluate import GenerationEvaluator, make_candidate
from repro.search.journal import (
    EvalKey,
    SearchJournal,
    SearchRecord,
    load_search_journal,
)
from repro.search.leaderboard import Leaderboard, build_leaderboard
from repro.search.space import Params
from repro.search.strategies import Strategy

#: Called after each generation: (generation, evaluations, best score).
SearchProgress = Callable[[int, int, float], None]


@dataclass
class SearchResult:
    """Outcome of one :func:`run_search` call."""

    leaderboard: Leaderboard
    #: Candidates charged to the budget (journaled + live).
    evaluations: int = 0
    #: Candidates actually simulated this run (memo/journal misses).
    live_evaluations: int = 0
    #: Candidates replayed from the journal (zero simulation).
    resumed: int = 0
    generations: int = 0
    records: List[SearchRecord] = field(default_factory=list)

    @property
    def best_params(self) -> Optional[Params]:
        return (
            self.leaderboard.best.params if self.leaderboard.best else None
        )

    @property
    def best_score(self) -> float:
        return (
            self.leaderboard.best.score
            if self.leaderboard.best
            else float("nan")
        )


def run_search(
    strategy: Strategy,
    evaluator: GenerationEvaluator,
    budget: int,
    journal_path: Optional[Union[str, Path]] = None,
    progress: Optional[SearchProgress] = None,
) -> SearchResult:
    """Run ``strategy`` against ``evaluator`` for ``budget`` evaluations.

    Args:
        strategy: a seeded proposal source (see
            :mod:`repro.search.strategies`).
        evaluator: the batched scorer; its ``jobs`` setting decides
            parallelism, never the result.
        budget: total candidate evaluations to charge (journaled
            replays count, so resumed runs retrace the original).
        journal_path: JSONL search log; pass the same path again to
            resume.  ``None`` journals nothing.
        progress: optional per-generation callback
            ``(generation, evaluations, best_score)``.

    Returns:
        A :class:`SearchResult` whose leaderboard is identical for any
        ``jobs`` value and for any interrupt/resume split of the run.
    """
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    space = strategy.space
    journaled: Dict[EvalKey, SearchRecord] = {}
    journal: Optional[SearchJournal] = None
    if journal_path is not None:
        journaled = load_search_journal(journal_path)
        journal = SearchJournal(journal_path)
    prior_runs = set(journaled)

    records: List[SearchRecord] = []
    evaluations = 0
    live = 0
    resumed = 0
    generation = 0
    best_seen = float("inf")
    try:
        while evaluations < budget:
            proposal = strategy.propose()
            if proposal is None or not proposal.candidates:
                break
            params_list = proposal.candidates[: budget - evaluations]
            subset = evaluator.subset_size(proposal.trace_fraction)

            candidates = [
                make_candidate(space, params) for params in params_list
            ]
            for candidate in candidates:
                record = journaled.get((candidate.key, subset))
                if record is not None:
                    evaluator.prime(candidate.key, subset, record.score)

            started = time.perf_counter()
            before = evaluator.evaluated
            scores = evaluator.score(candidates, subset=subset)
            elapsed = time.perf_counter() - started
            fresh = evaluator.evaluated - before

            for candidate, score in zip(candidates, scores):
                eval_key = (candidate.key, subset)
                if eval_key in journaled:
                    records.append(journaled[eval_key])
                    if eval_key in prior_runs:
                        resumed += 1
                    continue
                record = SearchRecord(
                    key=candidate.key,
                    params=candidate.params,
                    score=score,
                    subset=subset,
                    generation=generation,
                    strategy=strategy.name,
                    seed=strategy.seed,
                    elapsed=elapsed,
                )
                journaled[eval_key] = record
                records.append(record)
                if journal is not None:
                    journal.append(record)

            strategy.observe(
                [
                    (candidate.params, score)
                    for candidate, score in zip(candidates, scores)
                ]
            )
            evaluations += len(candidates)
            live += fresh
            generation += 1
            best_seen = min(best_seen, min(scores))
            if progress is not None:
                progress(generation, evaluations, best_seen)
    finally:
        if journal is not None:
            journal.close()

    return SearchResult(
        leaderboard=build_leaderboard(records),
        evaluations=evaluations,
        live_evaluations=live,
        resumed=resumed,
        generations=generation,
        records=records,
    )


__all__ = ["SearchProgress", "SearchResult", "run_search"]
