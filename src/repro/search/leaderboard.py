"""Ranked leaderboards over journaled search records.

A leaderboard is a pure function of the search records: per candidate,
the score at the **largest trace subset** it was ever evaluated on (a
successive-halving survivor's full-budget score outranks its cheap
rung-0 estimate), ranked ascending by (score, candidate key).  Both
tie-breaks are deterministic, so serial, parallel, and resumed runs of
the same seeded search export byte-identical leaderboards — the CI
resume smoke diffs exactly that.

Exports deliberately exclude wall-clock times: JSON/markdown artifacts
must be reproducible byte-for-byte across hosts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.search.journal import SearchRecord


@dataclass(frozen=True)
class LeaderboardEntry:
    """One ranked candidate."""

    rank: int
    key: str
    params: Dict[str, object]
    score: float
    subset: int
    generation: int


@dataclass
class Leaderboard:
    """Ranked candidates, best (lowest mean MPKI) first."""

    entries: List[LeaderboardEntry]

    @property
    def best(self) -> Optional[LeaderboardEntry]:
        return self.entries[0] if self.entries else None

    def top(self, count: int) -> List[LeaderboardEntry]:
        return self.entries[:count]


def build_leaderboard(records: Iterable[SearchRecord]) -> Leaderboard:
    """Rank records: best subset per candidate, then (score, key)."""
    by_key: Dict[str, SearchRecord] = {}
    for record in records:
        existing = by_key.get(record.key)
        if (
            existing is None
            or record.subset > existing.subset
            or (record.subset == existing.subset and record.score < existing.score)
        ):
            by_key[record.key] = record
    ranked = sorted(
        by_key.values(), key=lambda record: (record.score, record.key)
    )
    return Leaderboard(
        entries=[
            LeaderboardEntry(
                rank=rank,
                key=record.key,
                params=record.params,
                score=record.score,
                subset=record.subset,
                generation=record.generation,
            )
            for rank, record in enumerate(ranked, start=1)
        ]
    )


def leaderboard_to_json(board: Leaderboard) -> dict:
    """A JSON-ready dict (deterministic: no timestamps, sorted keys)."""
    return {
        "entries": [
            {
                "rank": entry.rank,
                "key": entry.key,
                "params": entry.params,
                "score": entry.score,
                "subset": entry.subset,
                "generation": entry.generation,
            }
            for entry in board.entries
        ]
    }


def save_leaderboard_json(
    board: Leaderboard, path: Union[str, Path]
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(leaderboard_to_json(board), indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )
    return path


def format_leaderboard(board: Leaderboard, top: int = 10) -> str:
    """A markdown table of the top candidates."""
    lines = [
        "| rank | mean MPKI | traces | gen | params |",
        "|---:|---:|---:|---:|:---|",
    ]
    for entry in board.top(top):
        params = ", ".join(
            f"{name}={value}" for name, value in sorted(entry.params.items())
        )
        lines.append(
            f"| {entry.rank} | {entry.score:.6f} | {entry.subset} "
            f"| {entry.generation} | `{params}` |"
        )
    if not board.entries:
        lines.append("| — | — | — | — | (no candidates scored) |")
    return "\n".join(lines)


def save_leaderboard_markdown(
    board: Leaderboard, path: Union[str, Path], top: int = 10
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        "# Search leaderboard\n\n" + format_leaderboard(board, top) + "\n",
        encoding="utf-8",
    )
    return path


__all__ = [
    "Leaderboard",
    "LeaderboardEntry",
    "build_leaderboard",
    "format_leaderboard",
    "leaderboard_to_json",
    "save_leaderboard_json",
    "save_leaderboard_markdown",
]
