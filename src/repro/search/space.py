"""Declarative parameter spaces over :class:`BLBPConfig`.

The paper's headline configuration is a *searched* artifact: the seven
global-history intervals came from hill-climbing (§3.6) and the sizing
choices — 4-bit weights, K = 12, 1024-row tables — from design-space
sweeps (§3.7).  A :class:`SearchSpace` makes that design space a
first-class object: a named set of :class:`Dimension`\\s, each knowing
how to **sample** a value, **mutate** one, and (when finite) enumerate
its **grid**, plus the mapping from a parameter assignment back to a
validated :class:`BLBPConfig`.

Everything is driven by an explicit ``numpy`` RNG, so two searches with
the same seed visit byte-identical candidate sequences regardless of
how their evaluations are scheduled — the property the engine's
parallel == serial guarantee rests on.

Cross-field constraints are honoured at ``to_config`` time: changing
``weight_bits`` re-derives the transfer-magnitude table via
:func:`repro.core.config.transfer_magnitudes_for`, and interval
mutations reuse :func:`repro.experiments.tuning.mutate_interval`'s
well-formedness discipline, so a mutated candidate can never build a
silently broken predictor — :class:`BLBPConfig` validation is the final
backstop.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import BLBPConfig, transfer_magnitudes_for

#: One parameter assignment: dimension name → value.
Params = Dict[str, object]

Interval = Tuple[int, int]


class SpaceError(ValueError):
    """A parameter space or assignment is malformed."""


@dataclass(frozen=True)
class Dimension:
    """One searchable axis; subclasses define its value set."""

    name: str

    def sample(self, rng: np.random.Generator):
        raise NotImplementedError

    def mutate(self, value, rng: np.random.Generator):
        raise NotImplementedError

    def contains(self, value) -> bool:
        raise NotImplementedError

    def grid_values(self) -> List:
        """Every value, for grid search; raises on unenumerable axes."""
        raise SpaceError(f"dimension {self.name!r} cannot be enumerated")


@dataclass(frozen=True)
class IntDimension(Dimension):
    """Integers ``low..high`` (inclusive) on a ``step`` lattice."""

    low: int = 0
    high: int = 0
    step: int = 1

    def __post_init__(self) -> None:
        if self.step < 1 or self.low > self.high:
            raise SpaceError(
                f"bad IntDimension {self.name}: [{self.low}, {self.high}] "
                f"step {self.step}"
            )

    def _lattice(self) -> range:
        return range(self.low, self.high + 1, self.step)

    def sample(self, rng: np.random.Generator) -> int:
        lattice = self._lattice()
        return int(lattice[int(rng.integers(len(lattice)))])

    def mutate(self, value: int, rng: np.random.Generator) -> int:
        """Nudge by ±1..3 lattice steps, clamped to the range."""
        steps = int(rng.integers(1, 4))
        if rng.random() < 0.5:
            steps = -steps
        moved = int(value) + steps * self.step
        return max(self.low, min(self.high, moved))

    def contains(self, value) -> bool:
        return (
            isinstance(value, int)
            and self.low <= value <= self.high
            and (value - self.low) % self.step == 0
        )

    def grid_values(self) -> List[int]:
        return list(self._lattice())


@dataclass(frozen=True)
class ChoiceDimension(Dimension):
    """An explicit finite value set."""

    choices: Tuple = ()

    def __post_init__(self) -> None:
        if not self.choices:
            raise SpaceError(f"dimension {self.name!r} has no choices")

    def sample(self, rng: np.random.Generator):
        return self.choices[int(rng.integers(len(self.choices)))]

    def mutate(self, value, rng: np.random.Generator):
        """Pick a *different* choice (same value when there is only one)."""
        others = [choice for choice in self.choices if choice != value]
        if not others:
            return value
        return others[int(rng.integers(len(others)))]

    def contains(self, value) -> bool:
        return value in self.choices

    def grid_values(self) -> List:
        return list(self.choices)


def toggle(name: str) -> ChoiceDimension:
    """A boolean optimization toggle as a two-choice dimension."""
    return ChoiceDimension(name=name, choices=(False, True))


@dataclass(frozen=True)
class IntervalsDimension(Dimension):
    """A tuple of ``count`` global-history intervals (§3.6 tuning).

    Values are tuples of half-open ``(start, end)`` pairs with
    ``0 <= start < end <= max_position``.  Mutation nudges one endpoint
    of one interval, exactly the paper's hill-climbing move.
    """

    count: int = 7
    max_position: int = 630
    max_step: int = 16

    def __post_init__(self) -> None:
        if self.count < 1 or self.max_position < 1:
            raise SpaceError(
                f"bad IntervalsDimension {self.name}: count {self.count}, "
                f"max_position {self.max_position}"
            )

    def sample(self, rng: np.random.Generator) -> Tuple[Interval, ...]:
        intervals = []
        for _ in range(self.count):
            start = int(rng.integers(0, self.max_position))
            end = int(rng.integers(start + 1, self.max_position + 1))
            intervals.append((start, end))
        return tuple(intervals)

    def mutate(
        self, value: Tuple[Interval, ...], rng: np.random.Generator
    ) -> Tuple[Interval, ...]:
        from repro.experiments.tuning import mutate_interval

        return mutate_interval(
            tuple(tuple(pair) for pair in value),
            rng,
            max_position=self.max_position,
            max_step=self.max_step,
        )

    def contains(self, value) -> bool:
        try:
            pairs = [tuple(pair) for pair in value]
        except TypeError:
            return False
        if len(pairs) != self.count:
            return False
        return all(
            len(pair) == 2 and 0 <= pair[0] < pair[1] <= self.max_position
            for pair in pairs
        )


class SearchSpace:
    """A named set of dimensions plus the base config they modify."""

    def __init__(
        self,
        dimensions: Sequence[Dimension],
        base_config: Optional[BLBPConfig] = None,
    ) -> None:
        names = [dimension.name for dimension in dimensions]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise SpaceError(f"duplicate dimensions: {sorted(duplicates)}")
        if not dimensions:
            raise SpaceError("a search space needs at least one dimension")
        self.dimensions: Tuple[Dimension, ...] = tuple(dimensions)
        self.base_config = base_config or BLBPConfig()
        self._by_name = {d.name: d for d in self.dimensions}

    def sample(self, rng: np.random.Generator) -> Params:
        """One random assignment, consuming rng in dimension order."""
        return {d.name: d.sample(rng) for d in self.dimensions}

    def mutate(self, params: Params, rng: np.random.Generator) -> Params:
        """Mutate exactly one uniformly-chosen dimension."""
        mutated = dict(params)
        dimension = self.dimensions[int(rng.integers(len(self.dimensions)))]
        mutated[dimension.name] = dimension.mutate(
            params[dimension.name], rng
        )
        return mutated

    def grid(self) -> Iterator[Params]:
        """The cartesian product of every dimension's grid values."""
        axes = [d.grid_values() for d in self.dimensions]
        names = [d.name for d in self.dimensions]
        for combination in itertools.product(*axes):
            yield dict(zip(names, combination))

    def grid_size(self) -> int:
        size = 1
        for dimension in self.dimensions:
            size *= len(dimension.grid_values())
        return size

    def validate(self, params: Params) -> None:
        """Raise :class:`SpaceError` unless ``params`` is a full, legal
        assignment that builds a valid :class:`BLBPConfig`."""
        unknown = set(params) - set(self._by_name)
        if unknown:
            raise SpaceError(f"unknown dimensions: {sorted(unknown)}")
        missing = set(self._by_name) - set(params)
        if missing:
            raise SpaceError(f"missing dimensions: {sorted(missing)}")
        for name, value in params.items():
            if not self._by_name[name].contains(value):
                raise SpaceError(
                    f"value {value!r} outside dimension {name!r}"
                )
        try:
            self.to_config(params)
        except ValueError as exc:
            raise SpaceError(f"params build an invalid config: {exc}") from exc

    def to_config(self, params: Params) -> BLBPConfig:
        """Apply an assignment to the base config (validated on build).

        ``intervals`` values are canonicalized to tuples, and any
        ``weight_bits`` change re-derives ``transfer_magnitudes`` so the
        weight/transfer-table invariant holds by construction.
        """
        fields = dict(params)
        if "intervals" in fields:
            fields["intervals"] = tuple(
                tuple(pair) for pair in fields["intervals"]
            )
        weight_bits = fields.get("weight_bits", self.base_config.weight_bits)
        if (
            weight_bits != self.base_config.weight_bits
            and "transfer_magnitudes" not in fields
        ):
            fields["transfer_magnitudes"] = transfer_magnitudes_for(
                weight_bits
            )
        return dataclasses.replace(self.base_config, **fields)

    def candidate_key(self, params: Params) -> str:
        """A canonical, order-independent string identity for ``params``.

        Two assignments with the same values share a key, which is what
        the search journal and the evaluator memo deduplicate on.
        """
        canonical = {
            name: (
                [list(pair) for pair in value]
                if isinstance(value, tuple)
                else value
            )
            for name, value in sorted(params.items())
        }
        return json.dumps(canonical, sort_keys=True, separators=(",", ":"))

    def candidate_id(self, params: Params) -> str:
        """A short filesystem/journal-safe id derived from the key."""
        digest = hashlib.sha1(
            self.candidate_key(params).encode("utf-8")
        ).hexdigest()
        return f"cand-{digest[:16]}"


def sizing_space(base_config: Optional[BLBPConfig] = None) -> SearchSpace:
    """The enumerable §3.7 sizing axes (grid-search friendly)."""
    return SearchSpace(
        [
            ChoiceDimension("weight_bits", choices=(2, 3, 4, 5, 6)),
            ChoiceDimension("num_target_bits", choices=(4, 8, 12, 16)),
            ChoiceDimension(
                "table_rows", choices=(128, 256, 512, 1024, 2048)
            ),
        ],
        base_config=base_config,
    )


def toggles_space(base_config: Optional[BLBPConfig] = None) -> SearchSpace:
    """The five §3.6 optimization toggles (the Fig. 10 axes)."""
    return SearchSpace(
        [
            toggle("use_local_history"),
            toggle("use_intervals"),
            toggle("use_selective_update"),
            toggle("use_transfer_function"),
            toggle("use_adaptive_threshold"),
        ],
        base_config=base_config,
    )


def intervals_space(
    base_config: Optional[BLBPConfig] = None,
    count: int = 7,
    max_step: int = 16,
) -> SearchSpace:
    """The §3.6 interval-tuning space (hill-climbing's home turf)."""
    base = base_config or BLBPConfig()
    return SearchSpace(
        [
            IntervalsDimension(
                "intervals",
                count=count,
                max_position=base.global_history_bits,
                max_step=max_step,
            )
        ],
        base_config=base,
    )


def default_space(base_config: Optional[BLBPConfig] = None) -> SearchSpace:
    """Everything searchable at once: intervals + sizing + toggles."""
    base = base_config or BLBPConfig()
    sizing = sizing_space(base)
    toggles = toggles_space(base)
    return SearchSpace(
        [
            IntervalsDimension(
                "intervals",
                count=len(base.intervals),
                max_position=base.global_history_bits,
            ),
            *sizing.dimensions,
            *toggles.dimensions,
        ],
        base_config=base,
    )


__all__ = [
    "ChoiceDimension",
    "Dimension",
    "IntDimension",
    "IntervalsDimension",
    "Params",
    "SearchSpace",
    "SpaceError",
    "default_space",
    "intervals_space",
    "sizing_space",
    "toggle",
    "toggles_space",
]
