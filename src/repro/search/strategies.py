"""Batch-proposing search strategies.

A strategy is a deterministic generator of candidate *generations*:
:meth:`Strategy.propose` returns a :class:`Proposal` — a list of
parameter assignments plus the fraction of the tuning trace set they
should be scored on — and :meth:`Strategy.observe` feeds the scores
back.  The engine owns the loop, the budget, and the journal; the
strategy owns only *what to try next*.

Batching is the point: the paper's hill-climbing evaluates one mutation
at a time, but one mutation cannot saturate a worker pool.  Batched
stochastic hill-climbing proposes ``batch_size`` independent mutations
of the incumbent per generation and accepts the best strict
improvement, so every generation is an embarrassingly parallel
candidate × trace campaign.  All randomness flows through one seeded
``numpy`` generator consumed in proposal order, which keeps the
candidate sequence — and therefore the leaderboard — identical however
the evaluations are scheduled.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.search.space import Params, SearchSpace

#: (params, mean MPKI) pairs fed back to a strategy, in proposal order.
Scored = Sequence[Tuple[Params, float]]


@dataclass
class Proposal:
    """One generation of candidates to evaluate.

    ``trace_fraction`` lets budget-aware strategies (successive
    halving) score early rungs on a prefix of the tuning traces; the
    engine turns it into a deterministic trace-subset size.
    """

    candidates: List[Params]
    trace_fraction: float = 1.0


class Strategy:
    """Common state: the space, a seeded RNG, and the incumbent."""

    name = "strategy"

    def __init__(self, space: SearchSpace, seed: int = 0) -> None:
        self.space = space
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.best_params: Optional[Params] = None
        self.best_score: float = math.inf

    def propose(self) -> Optional[Proposal]:
        """The next generation, or ``None`` when exhausted."""
        raise NotImplementedError

    def observe(self, scored: Scored) -> None:
        """Default bookkeeping: track the best (ties keep the earlier)."""
        for params, score in scored:
            if score < self.best_score:
                self.best_params = dict(params)
                self.best_score = score


class RandomSearch(Strategy):
    """Pure random sampling, ``batch_size`` candidates per generation."""

    name = "random"

    def __init__(
        self, space: SearchSpace, seed: int = 0, batch_size: int = 8
    ) -> None:
        super().__init__(space, seed)
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size

    def propose(self) -> Optional[Proposal]:
        return Proposal(
            [self.space.sample(self.rng) for _ in range(self.batch_size)]
        )


class GridSearch(Strategy):
    """Exhaustive enumeration of the space's grid, in batches.

    Only works on spaces whose every dimension is enumerable; the
    constructor fails fast otherwise.  Exhausts after one full pass.
    """

    name = "grid"

    def __init__(
        self, space: SearchSpace, seed: int = 0, batch_size: int = 8
    ) -> None:
        super().__init__(space, seed)
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size
        space.grid_size()  # fail fast on unenumerable dimensions
        self._grid = space.grid()
        self._exhausted = False

    def propose(self) -> Optional[Proposal]:
        if self._exhausted:
            return None
        batch: List[Params] = []
        for params in self._grid:
            batch.append(params)
            if len(batch) >= self.batch_size:
                break
        if len(batch) < self.batch_size:
            self._exhausted = True
        return Proposal(batch) if batch else None


class HillClimb(Strategy):
    """Batched stochastic hill-climbing (the paper's §3.6 move, wider).

    Generation 0 scores the starting point (``initial`` or a seeded
    sample); each later generation proposes ``batch_size`` independent
    single-dimension mutations of the incumbent and accepts the best
    strict improvement.  With ``batch_size=1`` this is exactly the
    paper's serial hill-climb, mutation-for-mutation.
    """

    name = "hillclimb"

    def __init__(
        self,
        space: SearchSpace,
        seed: int = 0,
        batch_size: int = 8,
        initial: Optional[Params] = None,
    ) -> None:
        super().__init__(space, seed)
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size
        self._initial = dict(initial) if initial is not None else None
        self._started = False

    def propose(self) -> Optional[Proposal]:
        if not self._started:
            self._started = True
            start = (
                self._initial
                if self._initial is not None
                else self.space.sample(self.rng)
            )
            return Proposal([dict(start)])
        assert self.best_params is not None, "observe() must run first"
        return Proposal(
            [
                self.space.mutate(self.best_params, self.rng)
                for _ in range(self.batch_size)
            ]
        )


@dataclass
class _Rung:
    """Successive halving bookkeeping: survivors at one budget level."""

    candidates: List[Params] = field(default_factory=list)
    fraction: float = 0.0


class SuccessiveHalving(Strategy):
    """Successive halving on trace-subset budgets.

    Rung 0 scores ``initial_candidates`` random configurations on a
    ``1/eta**depth`` fraction of the tuning traces; each following rung
    keeps the top ``1/eta`` and multiplies the fraction by ``eta``
    until the survivors have been scored on the full trace set.  Cheap
    early rungs buy breadth; the full-budget final rung buys trust.
    """

    name = "sha"

    def __init__(
        self,
        space: SearchSpace,
        seed: int = 0,
        initial_candidates: int = 16,
        eta: int = 2,
    ) -> None:
        super().__init__(space, seed)
        if initial_candidates < 2:
            raise ValueError(
                f"need >= 2 initial candidates, got {initial_candidates}"
            )
        if eta < 2:
            raise ValueError(f"eta must be >= 2, got {eta}")
        self.initial_candidates = initial_candidates
        self.eta = eta
        depth = max(1, math.ceil(math.log(initial_candidates, eta)))
        self._rung: Optional[_Rung] = _Rung(
            candidates=[],
            fraction=1.0 / (eta ** depth),
        )
        self._scored_rung: List[Tuple[Params, float]] = []

    def propose(self) -> Optional[Proposal]:
        if self._rung is None:
            return None
        if not self._rung.candidates:
            self._rung.candidates = [
                self.space.sample(self.rng)
                for _ in range(self.initial_candidates)
            ]
        return Proposal(
            [dict(params) for params in self._rung.candidates],
            trace_fraction=self._rung.fraction,
        )

    def observe(self, scored: Scored) -> None:
        assert self._rung is not None
        if self._rung.fraction >= 1.0:
            # The full-budget rung is the final word: record and stop.
            super().observe(scored)
            self._rung = None
            return
        ranked = sorted(
            enumerate(scored), key=lambda pair: (pair[1][1], pair[0])
        )
        survivors = [
            dict(scored[index][0])
            for index, _ in ranked[: max(1, len(ranked) // self.eta)]
        ]
        self._rung = _Rung(
            candidates=survivors,
            fraction=min(1.0, self._rung.fraction * self.eta),
        )


#: CLI names → constructors (keyword arguments vary per strategy).
STRATEGIES = {
    "hillclimb": HillClimb,
    "random": RandomSearch,
    "grid": GridSearch,
    "sha": SuccessiveHalving,
}


def make_strategy(
    name: str,
    space: SearchSpace,
    seed: int = 0,
    batch_size: int = 8,
) -> Strategy:
    """Build a strategy by CLI name with uniform knobs."""
    if name not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {name!r}; choose from {sorted(STRATEGIES)}"
        )
    if name == "sha":
        return SuccessiveHalving(
            space, seed=seed, initial_candidates=max(2, batch_size)
        )
    return STRATEGIES[name](space, seed=seed, batch_size=batch_size)


__all__ = [
    "GridSearch",
    "HillClimb",
    "Proposal",
    "RandomSearch",
    "STRATEGIES",
    "Scored",
    "Strategy",
    "SuccessiveHalving",
    "make_strategy",
]
