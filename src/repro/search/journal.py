"""JSONL journaling of every scored search candidate.

The search journal is the engine's flight recorder *and* its resume
mechanism: one self-describing JSON line per (candidate, trace-subset)
evaluation — parameters, score, generation, strategy provenance, seed,
wall time — flushed and fsynced per append so a SIGKILL costs at most
one torn final line.  On ``--resume`` the engine replays the journal
into the evaluator's memo before proposing anything, so every
journaled candidate is skipped, never re-simulated.

The format discipline mirrors :mod:`repro.exec.journal`: a version tag
on every line, tolerance for exactly one truncated final line, loud
rejection of interior corruption or version drift.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, IO, List, Optional, Tuple, Union

#: Format tag written into every line; bump on incompatible change.
SEARCH_JOURNAL_VERSION = 1

#: (candidate key, trace-subset size) — the identity of one evaluation.
EvalKey = Tuple[str, int]


class SearchJournalError(ValueError):
    """A search journal exists but cannot be used."""


@dataclass(frozen=True)
class SearchRecord:
    """One scored candidate, exactly as journaled."""

    key: str
    params: Dict[str, object]
    score: float
    subset: int
    generation: int
    strategy: str = ""
    seed: int = 0
    #: Wall-clock seconds of the generation this candidate rode in.
    elapsed: float = 0.0
    #: True when replayed from a journal rather than simulated live.
    resumed: bool = field(default=False, compare=False)

    @property
    def eval_key(self) -> EvalKey:
        return (self.key, self.subset)


def record_to_json(record: SearchRecord) -> dict:
    return {
        "v": SEARCH_JOURNAL_VERSION,
        "key": record.key,
        "params": record.params,
        "score": record.score,
        "subset": record.subset,
        "generation": record.generation,
        "strategy": record.strategy,
        "seed": record.seed,
        "elapsed": record.elapsed,
    }


def record_from_json(payload: dict) -> SearchRecord:
    version = payload.get("v")
    if version != SEARCH_JOURNAL_VERSION:
        raise SearchJournalError(
            f"search journal line has version {version!r}, "
            f"expected {SEARCH_JOURNAL_VERSION}"
        )
    return SearchRecord(
        key=payload["key"],
        params=payload["params"],
        score=payload["score"],
        subset=payload["subset"],
        generation=payload["generation"],
        strategy=payload.get("strategy", ""),
        seed=payload.get("seed", 0),
        elapsed=payload.get("elapsed", 0.0),
        resumed=True,
    )


def load_search_journal(
    path: Union[str, Path]
) -> Dict[EvalKey, SearchRecord]:
    """Replay a journal into ``(key, subset) → record``.

    A missing file is an empty journal.  A torn **final** line is
    dropped (interrupted run); interior corruption raises — silently
    skipping mid-journal candidates would re-run an unpredictable
    subset of the search.
    """
    path = Path(path)
    records: Dict[EvalKey, SearchRecord] = {}
    if not path.exists():
        return records
    lines = path.read_text(encoding="utf-8").splitlines()
    for line_number, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            record = record_from_json(json.loads(line))
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            if line_number == len(lines) - 1:
                break  # torn final write from an interrupted search
            raise SearchJournalError(
                f"{path}:{line_number + 1}: corrupt journal line ({exc})"
            ) from exc
        records[record.eval_key] = record
    return records


class SearchJournal:
    """Append-only search journal writer (use as a context manager)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: Optional[IO[str]] = open(
            self.path, "a", encoding="utf-8"
        )

    def append(self, record: SearchRecord) -> None:
        if self._handle is None:
            raise SearchJournalError(f"journal {self.path} is closed")
        self._handle.write(json.dumps(record_to_json(record)) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SearchJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "EvalKey",
    "SEARCH_JOURNAL_VERSION",
    "SearchJournal",
    "SearchJournalError",
    "SearchRecord",
    "load_search_journal",
    "record_from_json",
    "record_to_json",
]
