"""Cell execution: worker processes, retries, timeouts, and fallback.

:func:`execute_plan` takes a :class:`~repro.exec.plan.CampaignPlan` and
produces the same :class:`~repro.sim.metrics.CampaignResult` the serial
runner would, scheduling cells across a
:class:`~concurrent.futures.ProcessPoolExecutor` when ``jobs > 1``.
Results are merged **in plan order**, so the outcome is byte-identical
regardless of which worker finished first.

Robustness ladder, roughly in the order things go wrong in practice:

* a cell raises → bounded retry with linear backoff, then
  :class:`CellFailedError` (the journal keeps everything already done);
* a cell hangs → a per-cell wall-clock deadline enforced *inside* the
  worker via ``SIGALRM`` (no cross-process kill needed), surfacing as
  :class:`CellTimeout` and entering the same retry path;
* the pool cannot start, a factory cannot be pickled, or a worker dies
  hard (``BrokenProcessPool``) → graceful degradation to in-process
  serial execution of the remaining cells, announced by a ``fallback``
  event — a campaign never fails merely because parallelism did.

With ``fuse=True`` (the default) contiguous cells sharing a trace are
grouped into :class:`~repro.exec.plan.FusedCellSpec` units that a worker
runs as *one* pass over the trace (:func:`run_fused_cell` →
:func:`repro.sim.engine.simulate_many`), sharing the trace mapping, the
derived plane, and the per-branch dispatch across all member predictors.
Journal entries, events, results, and checkpoints stay per-cell, and a
group that exhausts its retry budget degrades to solo member cells —
fusion is invisible to everything downstream except the wall clock.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.exec.events import (
    CAMPAIGN_END,
    CAMPAIGN_START,
    CELL_FAILED,
    CELL_FINISH,
    CELL_RESUME,
    CELL_SKIPPED,
    CELL_START,
    CELL_RETRY,
    FALLBACK,
    EventSink,
    ExecEvent,
    safe_emit,
)
from repro.exec.journal import Journal, load_journal
from repro.exec.plan import (
    CampaignPlan,
    CellKey,
    CellSpec,
    ExecutionUnit,
    FusedCellSpec,
    checkpoint_name,
    fuse_cells,
)
from repro.sim.checkpoint import discard_checkpoint, load_checkpoint
from repro.sim.counters import SimCounters
from repro.sim.engine import simulate, simulate_many
from repro.sim.metrics import CampaignResult, SimulationResult
from repro.trace.derived import cached_derived
from repro.trace.plane import cached_trace


class CellTimeout(RuntimeError):
    """A cell exceeded its per-cell wall-clock deadline."""


class CellFailedError(RuntimeError):
    """A cell failed after exhausting its retry budget."""

    def __init__(self, key: CellKey, attempts: int, cause: BaseException):
        trace, predictor = key
        super().__init__(
            f"cell ({trace}, {predictor}) failed after {attempts} "
            f"attempt(s): {cause!r}"
        )
        self.key = key
        self.attempts = attempts


@contextmanager
def _deadline(seconds: Optional[float]):
    """Raise :class:`CellTimeout` if the block runs past ``seconds``.

    Uses ``SIGALRM``/``setitimer``, which only works on Unix and only
    in a main thread — both true for pool workers (tasks run on the
    worker's main thread) and the usual serial caller.  Anywhere else
    the deadline silently degrades to "no deadline".
    """
    usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _expired(signum, frame):
        raise CellTimeout(f"cell exceeded {seconds:.1f}s deadline")

    previous = signal.signal(signal.SIGALRM, _expired)
    # setitimer returns the *outer* timer it displaced.  Restoring only
    # the handler would silently cancel a nested/outer deadline when
    # this block finishes early, so re-arm whatever time it has left
    # (the time this block consumed counts against it; an outer timer
    # that expired while ours was armed fires near-immediately).
    armed_at = time.monotonic()
    outer_delay, outer_interval = signal.setitimer(
        signal.ITIMER_REAL, seconds
    )
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
        if outer_delay:
            remaining = outer_delay - (time.monotonic() - armed_at)
            signal.setitimer(
                signal.ITIMER_REAL,
                max(remaining, 1e-6),
                outer_interval,
            )


def run_cell(
    spec: CellSpec, timeout: Optional[float] = None
) -> Tuple[int, SimulationResult, float]:
    """Execute one cell: load its trace, simulate, stamp the name.

    This is the worker entry point; it must stay module-level so the
    process pool can pickle a reference to it.  Returns
    ``(plan index, result, wall-clock seconds)``.

    When the spec carries a ``checkpoint_path``, the worker resumes from
    any checkpoint left by a killed or timed-out predecessor (validating
    it belongs to this cell; a stale or damaged file just restarts the
    trace), snapshots every ``checkpoint_every`` records while running,
    and removes the file on success so a finished cell never resumes.
    """
    started = time.perf_counter()
    resume_from = None
    if spec.checkpoint_path is not None:
        candidate = load_checkpoint(spec.checkpoint_path)
        if candidate is not None and candidate.trace_name == spec.trace_name:
            resume_from = candidate
    with _deadline(timeout):
        trace = cached_trace(spec.trace_path)
        predictor = spec.factory.build()
        if resume_from is not None and (
            resume_from.predictor_name != predictor.name
        ):
            resume_from = None
        derived = None
        if spec.backend != "scalar" and not spec.checkpoint_every:
            # The columnar kernel consumes the derived plane whole; the
            # per-worker cache shares one plane across every cell and
            # retry on the same trace.
            derived = cached_derived(spec.trace_path, trace, spec.ras_depth)
        result = simulate(
            predictor,
            trace,
            ras_depth=spec.ras_depth,
            warmup_records=spec.warmup_records,
            counters=SimCounters() if spec.profile else None,
            checkpoint_every=spec.checkpoint_every,
            checkpoint_path=spec.checkpoint_path,
            resume_from=resume_from,
            backend=spec.backend,
            derived=derived,
        )
    if spec.checkpoint_path is not None:
        discard_checkpoint(spec.checkpoint_path)
    result.predictor_name = spec.predictor_name
    return spec.index, result, time.perf_counter() - started


def run_fused_cell(
    group: FusedCellSpec, timeout: Optional[float] = None
) -> List[Tuple[int, SimulationResult, float]]:
    """Execute a fused group: one trace pass, all member predictors.

    Worker entry point like :func:`run_cell`.  The trace is attached
    through the per-worker :class:`~repro.trace.plane.TraceCache` and its
    derived plane through the matching derived-plane cache, so every
    group (and every unfused cell) on the same trace shares one mapping.
    The SIGALRM deadline scales by group size — a fused group
    legitimately does N cells of predictor work in one pass.

    Returns one ``(plan index, result, seconds)`` triple per member, the
    wall clock split evenly across members (throughput accounting; the
    pass is genuinely shared).
    """
    started = time.perf_counter()
    cells = group.cells
    scaled = timeout * len(cells) if timeout else timeout
    first = cells[0]
    with _deadline(scaled):
        trace = cached_trace(group.trace_path)
        derived = None
        if not first.checkpoint_every:
            derived = cached_derived(group.trace_path, trace, first.ras_depth)
        predictors = [spec.factory.build() for spec in cells]
        results = simulate_many(
            predictors,
            trace,
            ras_depth=first.ras_depth,
            warmup_records=first.warmup_records,
            derived=derived,
            checkpoint_every=first.checkpoint_every,
            checkpoint_paths=[spec.checkpoint_path for spec in cells],
            backend=first.backend,
        )
    share = (time.perf_counter() - started) / len(cells)
    outcomes = []
    for spec, result in zip(cells, results):
        if spec.checkpoint_path is not None:
            discard_checkpoint(spec.checkpoint_path)
        result.predictor_name = spec.predictor_name
        outcomes.append((spec.index, result, share))
    return outcomes


def _member_cells(unit: ExecutionUnit) -> Tuple[CellSpec, ...]:
    return unit.cells if isinstance(unit, FusedCellSpec) else (unit,)


def _fusable(spec: CellSpec) -> bool:
    """Whether a cell may join a fused group.

    Profiled cells keep the solo path (their profile must measure one
    predictor, not a fused pass), and a cell with a pending mid-trace
    checkpoint resumes solo — ``simulate_many`` starts every member at
    record zero.
    """
    if spec.profile:
        return False
    if spec.checkpoint_path and os.path.exists(spec.checkpoint_path):
        return False
    return True


def _plan_units(specs: List[CellSpec], fuse: bool) -> List[ExecutionUnit]:
    if not fuse:
        return list(specs)
    return fuse_cells(specs, fusable=_fusable)


def _announce_resume(state: "_Execution", spec: CellSpec, attempt: int) -> None:
    """Emit CELL_RESUME when a mid-trace checkpoint awaits this cell.

    Checked in the parent (not the worker) so the event reaches the sink
    even when the previous attempt died without a word — which is
    exactly the case checkpoints exist for.
    """
    if spec.checkpoint_path and os.path.exists(spec.checkpoint_path):
        state.emit(
            CELL_RESUME,
            trace=spec.trace_name,
            predictor=spec.predictor_name,
            index=spec.index,
            completed=state.completed,
            attempt=attempt,
        )


class _Execution:
    """Mutable bookkeeping shared by the parallel and serial paths."""

    def __init__(
        self,
        plan: CampaignPlan,
        events: Optional[EventSink],
        journal: Optional[Journal],
    ) -> None:
        self.plan = plan
        self.events = events
        self.journal = journal
        self.results: Dict[CellKey, SimulationResult] = {}
        self.completed = 0
        self.live_finished = 0
        self.retries = 0
        self.started = time.monotonic()

    def emit(self, kind: str, **fields) -> None:
        safe_emit(
            self.events,
            ExecEvent(kind=kind, total=self.plan.total, **fields),
        )

    def _eta(self) -> float:
        remaining = self.plan.total - self.completed
        if remaining <= 0 or self.live_finished == 0:
            return 0.0
        elapsed = time.monotonic() - self.started
        return remaining * elapsed / self.live_finished

    def skip(self, spec: CellSpec, result: SimulationResult) -> None:
        self.results[spec.key] = result
        self.completed += 1
        self.emit(
            CELL_SKIPPED,
            trace=spec.trace_name,
            predictor=spec.predictor_name,
            index=spec.index,
            completed=self.completed,
            records=spec.records,
            mpki=result.mpki(),
            node=result.node,
        )

    def record(
        self,
        spec: CellSpec,
        result: SimulationResult,
        duration: float,
        node: str = "",
    ) -> None:
        self.results[spec.key] = result
        self.completed += 1
        self.live_finished += 1
        if self.journal is not None:
            self.journal.append(result, node=node)
        self.emit(
            CELL_FINISH,
            trace=spec.trace_name,
            predictor=spec.predictor_name,
            index=spec.index,
            completed=self.completed,
            duration=duration,
            records=spec.records,
            records_per_sec=spec.records / duration if duration > 0 else 0.0,
            eta_seconds=self._eta(),
            mpki=result.mpki(),
            profile=result.profile,
            node=node,
        )

    def pending(self) -> List[CellSpec]:
        return [
            cell for cell in self.plan.cells if cell.key not in self.results
        ]


def _run_cell_serial(
    state: _Execution,
    spec: CellSpec,
    timeout: Optional[float],
    retries: int,
    backoff: float,
) -> None:
    """Run one cell in-process, with the retry/timeout discipline."""
    attempts = 0
    while True:
        attempts += 1
        state.emit(
            CELL_START,
            trace=spec.trace_name,
            predictor=spec.predictor_name,
            index=spec.index,
            completed=state.completed,
            attempt=attempts,
        )
        _announce_resume(state, spec, attempts)
        try:
            _, result, duration = run_cell(spec, timeout)
        except Exception as exc:  # noqa: BLE001 - retried, then raised
            if attempts <= retries:
                state.retries += 1
                state.emit(
                    CELL_RETRY,
                    trace=spec.trace_name,
                    predictor=spec.predictor_name,
                    index=spec.index,
                    attempt=attempts,
                    message=repr(exc),
                )
                time.sleep(backoff * attempts)
                continue
            state.emit(
                CELL_FAILED,
                trace=spec.trace_name,
                predictor=spec.predictor_name,
                index=spec.index,
                attempt=attempts,
                message=repr(exc),
            )
            raise CellFailedError(spec.key, attempts, exc) from exc
        state.record(spec, result, duration)
        break


def _record_fused(
    state: _Execution,
    group: FusedCellSpec,
    outcomes: List[Tuple[int, SimulationResult, float]],
) -> None:
    """Record a fused group's outcomes *in member (plan) order*.

    The journal appends on record, so member order is what keeps a
    serial fused journal byte-identical to an unfused one.
    """
    by_index = {index: (result, duration) for index, result, duration in outcomes}
    for spec in group.cells:
        result, duration = by_index[spec.index]
        state.record(spec, result, duration)


def _run_fused_serial(
    state: _Execution,
    group: FusedCellSpec,
    timeout: Optional[float],
    retries: int,
    backoff: float,
) -> None:
    """Run one fused group in-process; degrade to solo cells on failure.

    The whole group shares a retry budget (one pass = one attempt); if
    that budget runs out, the group unfuses and each member re-runs solo
    with a fresh budget — precise failure attribution, and a poisoned
    predictor cannot take its groupmates down with it.
    """
    attempts = 0
    while True:
        attempts += 1
        for spec in group.cells:
            state.emit(
                CELL_START,
                trace=spec.trace_name,
                predictor=spec.predictor_name,
                index=spec.index,
                completed=state.completed,
                attempt=attempts,
                group=group.size,
            )
        try:
            outcomes = run_fused_cell(group, timeout)
        except Exception as exc:  # noqa: BLE001 - retried, then unfused
            if attempts <= retries:
                state.retries += 1
                state.emit(
                    CELL_RETRY,
                    trace=group.trace_name,
                    predictor=_group_label(group),
                    index=group.cells[0].index,
                    attempt=attempts,
                    group=group.size,
                    message=repr(exc),
                )
                time.sleep(backoff * attempts)
                continue
            state.emit(
                FALLBACK,
                message=(
                    f"fused group of {group.size} on {group.trace_name!r} "
                    f"failed after {attempts} attempt(s): {exc!r}; "
                    "re-running its cells unfused"
                ),
            )
            for spec in group.cells:
                _run_cell_serial(state, spec, timeout, retries, backoff)
            return
        _record_fused(state, group, outcomes)
        return


def _group_label(group: FusedCellSpec) -> str:
    return "+".join(spec.predictor_name for spec in group.cells)


def _run_serial(
    state: _Execution,
    units: List[ExecutionUnit],
    timeout: Optional[float],
    retries: int,
    backoff: float,
) -> None:
    """Run ``units`` in-process, with the same retry/timeout discipline."""
    for unit in units:
        if isinstance(unit, FusedCellSpec):
            _run_fused_serial(state, unit, timeout, retries, backoff)
        else:
            _run_cell_serial(state, unit, timeout, retries, backoff)


class _PoolDegraded(Exception):
    """Internal: the process pool is unusable; finish serially."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


def _run_parallel(
    state: _Execution,
    units: List[ExecutionUnit],
    jobs: int,
    timeout: Optional[float],
    retries: int,
    backoff: float,
) -> None:
    """Run ``units`` on a worker pool; raise :class:`_PoolDegraded` if
    the pool itself (not a cell) is the problem."""
    unpicklable = [
        s
        for unit in units
        for s in _member_cells(unit)
        if not s.factory.picklable()
    ]
    if unpicklable:
        names = sorted({s.predictor_name for s in unpicklable})
        raise _PoolDegraded(
            f"factories not picklable for worker processes: {names}"
        )
    attempts: Dict[int, int] = {}
    try:
        pool = ProcessPoolExecutor(max_workers=jobs)
    except (OSError, ValueError) as exc:
        raise _PoolDegraded(f"process pool failed to start: {exc!r}")

    def _submit(futures: Dict, unit: ExecutionUnit) -> None:
        if isinstance(unit, FusedCellSpec):
            futures[pool.submit(run_fused_cell, unit, timeout)] = unit
        else:
            futures[pool.submit(run_cell, unit, timeout)] = unit

    def _emit_start(unit: ExecutionUnit, attempt: int) -> None:
        group = unit.size if isinstance(unit, FusedCellSpec) else 0
        for spec in _member_cells(unit):
            state.emit(
                CELL_START,
                trace=spec.trace_name,
                predictor=spec.predictor_name,
                index=spec.index,
                completed=state.completed,
                attempt=attempt,
                group=group,
            )

    try:
        futures: Dict = {}
        for unit in units:
            for spec in _member_cells(unit):
                _announce_resume(state, spec, 1)
            _submit(futures, unit)
            attempts[_member_cells(unit)[0].index] = 1
            _emit_start(unit, 1)
        while futures:
            finished, _ = wait(futures, return_when=FIRST_COMPLETED)
            for future in finished:
                unit = futures.pop(future)
                fused = isinstance(unit, FusedCellSpec)
                first = _member_cells(unit)[0]
                try:
                    payload = future.result()
                except BrokenProcessPool as exc:
                    raise _PoolDegraded(f"worker pool broke: {exc!r}")
                except Exception as exc:  # noqa: BLE001 - retry then raise
                    tried = attempts[first.index]
                    if tried <= retries:
                        state.retries += 1
                        state.emit(
                            CELL_RETRY,
                            trace=unit.trace_name,
                            predictor=(
                                _group_label(unit)
                                if fused
                                else unit.predictor_name
                            ),
                            index=first.index,
                            attempt=tried,
                            group=unit.size if fused else 0,
                            message=repr(exc),
                        )
                        time.sleep(backoff * tried)
                        attempts[first.index] = tried + 1
                        for spec in _member_cells(unit):
                            _announce_resume(state, spec, tried + 1)
                        try:
                            _submit(futures, unit)
                        except (OSError, RuntimeError) as submit_exc:
                            raise _PoolDegraded(
                                f"resubmission failed: {submit_exc!r}"
                            )
                        continue
                    if fused:
                        # The group exhausted its shared budget: unfuse
                        # and give each member its own solo attempts for
                        # precise failure attribution.
                        state.emit(
                            FALLBACK,
                            message=(
                                f"fused group of {unit.size} on "
                                f"{unit.trace_name!r} failed after {tried} "
                                f"attempt(s): {exc!r}; re-running its cells "
                                "unfused"
                            ),
                        )
                        for spec in unit.cells:
                            attempts[spec.index] = 1
                            _announce_resume(state, spec, 1)
                            _emit_start(spec, 1)
                            try:
                                _submit(futures, spec)
                            except (OSError, RuntimeError) as submit_exc:
                                raise _PoolDegraded(
                                    f"resubmission failed: {submit_exc!r}"
                                )
                        continue
                    state.emit(
                        CELL_FAILED,
                        trace=unit.trace_name,
                        predictor=unit.predictor_name,
                        index=unit.index,
                        attempt=tried,
                        message=repr(exc),
                    )
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise CellFailedError(unit.key, tried, exc) from exc
                else:
                    if fused:
                        _record_fused(state, unit, payload)
                    else:
                        _, result, duration = payload
                        state.record(unit, result, duration)
    finally:
        pool.shutdown(wait=True, cancel_futures=True)


def _attach_checkpoints(
    plan: CampaignPlan,
    checkpoint_every: int,
    journal_path: Optional[Union[str, Path]],
) -> CampaignPlan:
    """Return a copy of ``plan`` whose cells carry checkpoint files.

    Checkpoints live in a ``<journal>.ckpt`` sibling directory — the
    journal is the artifact that survives a killed run (the plan's
    ``cache_dir`` is often a temporary directory torn down with the
    process), so mid-cell state must live next to it to be there for
    the resuming process.  Without a journal there is nothing durable to
    resume *from*, so checkpointing falls back to the plan's own cache
    directory (useful for in-process supervisors) or, lacking both, is
    disabled.
    """
    if checkpoint_every <= 0:
        return plan
    if journal_path is not None:
        checkpoint_dir = Path(str(journal_path) + ".ckpt")
    elif plan.cache_dir is not None:
        checkpoint_dir = Path(plan.cache_dir) / "checkpoints"
    else:
        return plan
    checkpoint_dir.mkdir(parents=True, exist_ok=True)
    cells = [
        dataclasses.replace(
            cell,
            checkpoint_every=checkpoint_every,
            checkpoint_path=str(checkpoint_dir / checkpoint_name(cell)),
        )
        for cell in plan.cells
    ]
    return CampaignPlan(cells=cells, cache_dir=plan.cache_dir)


def execute_plan(
    plan: CampaignPlan,
    jobs: int = 1,
    journal_path: Optional[Union[str, Path]] = None,
    events: Optional[EventSink] = None,
    timeout: Optional[float] = None,
    retries: int = 2,
    backoff: float = 0.1,
    checkpoint_every: int = 0,
    fuse: bool = True,
    pool=None,
) -> CampaignResult:
    """Execute every cell of ``plan`` and merge deterministically.

    Args:
        plan: the expanded campaign (see :func:`repro.exec.plan.plan_campaign`).
        jobs: worker processes; ``1`` runs in-process with no pool.
        journal_path: JSONL checkpoint file.  Existing entries matching
            plan cells are **skipped** (resume); new completions are
            appended as they happen.
        events: observability sink receiving :class:`ExecEvent`s.
        timeout: per-cell wall-clock deadline in seconds (best effort;
            see :func:`run_cell`).
        retries: extra attempts per cell after its first failure.
        backoff: seconds slept before retry ``n`` is ``backoff * n``.
        checkpoint_every: when > 0, workers snapshot simulation state
            every this-many records into per-cell files beside the
            journal, so a killed or timed-out cell resumes *mid-trace*
            on the next attempt (or the next process) instead of
            replaying from record zero.  Zero disables mid-cell
            checkpointing; journal-level cell resume is unaffected.
        fuse: run contiguous same-trace cells as one fused pass
            (:func:`repro.sim.engine.simulate_many`) — results, journal
            bytes, and final predictor states are identical to unfused
            execution, just cheaper.  Profiled cells and cells resuming
            from a mid-trace checkpoint always run solo.
        pool: a :class:`repro.dist.Pool` backend to schedule units on.
            ``None`` keeps the classic ``jobs``-driven behavior; a
            :class:`~repro.dist.LocalPool` is equivalent to passing its
            job count; :class:`~repro.dist.NodePool` /
            :class:`~repro.dist.SSHPool` shard units across worker
            nodes, journal into per-node shards, and leave the journal
            canonicalized (byte-identical to a single-node run) on
            completion.

    Returns:
        A :class:`CampaignResult` whose cells and values are identical
        to a serial :func:`repro.sim.runner.run_campaign` of the same
        campaign, regardless of ``jobs``, ``pool``, or completion order.
    """
    jobs = max(1, int(jobs))
    owns_pool = False
    if pool is None:
        from repro.dist.pool import resolve_pool

        pool = resolve_pool(None)  # REPRO_NODES env default
        owns_pool = pool is not None
    distributed = pool is not None and not getattr(pool, "local", False)
    if not distributed:
        # Mid-trace checkpoint files are coordinator-local; distributed
        # workers derive their own node-local checkpoint paths instead.
        plan = _attach_checkpoints(plan, checkpoint_every, journal_path)
    journal: Optional[Journal] = None
    journaled: Dict[CellKey, SimulationResult] = {}
    had_shards = False
    if journal_path is not None:
        journaled = load_journal(journal_path)
        from repro.dist.merge import (  # local import: dist builds on exec
            ShardedJournal,
            load_shards,
            shards_dir,
        )

        if shards_dir(journal_path).is_dir():
            # Leftovers of a killed distributed run: its per-node shards
            # hold cells the canonical journal never absorbed.  Whatever
            # backend finishes the campaign must canonicalize at the
            # end, or those cells would live only in the shards.
            journaled.update(load_shards(journal_path))
            had_shards = True
        journal = (
            ShardedJournal(journal_path) if distributed
            else Journal(journal_path)
        )

    state = _Execution(plan, events, journal)
    state.emit(CAMPAIGN_START, jobs=jobs, completed=0)
    try:
        for cell in plan.cells:
            if cell.key in journaled:
                state.skip(cell, journaled[cell.key])
        pending = state.pending()
        if pending:
            units = _plan_units(pending, fuse)
            if pool is not None:
                try:
                    pool.execute(
                        state,
                        units,
                        timeout=timeout,
                        retries=retries,
                        backoff=backoff,
                        checkpoint_every=checkpoint_every,
                    )
                except _PoolDegraded as degraded:
                    state.emit(FALLBACK, message=degraded.reason)
                    _run_serial(
                        state,
                        _plan_units(state.pending(), fuse),
                        timeout,
                        retries,
                        backoff,
                    )
            elif jobs == 1:
                _run_serial(state, units, timeout, retries, backoff)
            else:
                try:
                    _run_parallel(
                        state, units, jobs, timeout, retries, backoff
                    )
                except _PoolDegraded as degraded:
                    state.emit(FALLBACK, message=degraded.reason)
                    _run_serial(
                        state,
                        _plan_units(state.pending(), fuse),
                        timeout,
                        retries,
                        backoff,
                    )
    finally:
        if journal is not None:
            journal.close()
        if owns_pool:
            pool.close()

    campaign = CampaignResult()
    for cell in plan.cells:
        campaign.add(state.results[cell.key])
    if (distributed or had_shards) and journal_path is not None:
        from repro.dist.merge import write_canonical_journal

        write_canonical_journal(journal_path, plan.keys(), state.results)
    state.emit(
        CAMPAIGN_END,
        completed=state.completed,
        retries=state.retries,
        duration=time.monotonic() - state.started,
    )
    return campaign


__all__ = [
    "CellFailedError",
    "CellTimeout",
    "execute_plan",
    "run_cell",
    "run_fused_cell",
]
