"""Structured observability events for campaign execution.

The execution engine narrates a campaign as a stream of
:class:`ExecEvent` values — cell scheduled/finished/skipped, retries,
failures, serial fallback, campaign start/end — pushed into a *sink*: a
plain callable ``sink(event) -> None``.  Sinks decouple what the engine
knows (timings, throughput, attempt counts) from how a caller wants to
see it: the CLI renders a live progress line, tests collect events into
a list, and library users can forward them to logging/metrics systems.

Sink exceptions are swallowed by :func:`safe_emit` — observability must
never kill a multi-minute simulation.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, IO, List, Optional

#: Event kinds, in roughly chronological order of a campaign.
CAMPAIGN_START = "campaign_start"
CELL_START = "cell_start"
#: A cell found a mid-trace checkpoint and will resume inside the trace.
CELL_RESUME = "cell_resume"
CELL_FINISH = "cell_finish"
CELL_SKIPPED = "cell_skipped"
CELL_RETRY = "cell_retry"
CELL_FAILED = "cell_failed"
FALLBACK = "fallback"
CAMPAIGN_END = "campaign_end"
#: A distributed worker node joined the campaign (repro.dist pools).
NODE_UP = "node_up"
#: A worker node died or disconnected; its cells reschedule elsewhere.
NODE_DOWN = "node_down"


@dataclass(frozen=True)
class ExecEvent:
    """One observation from the execution engine.

    Not every field is meaningful for every kind; unused fields keep
    their zero values so sinks can consume events uniformly.
    """

    kind: str
    trace: str = ""
    predictor: str = ""
    #: Zero-based plan index of the cell (-1 for campaign-level events).
    index: int = -1
    #: Total cells in the plan.
    total: int = 0
    #: Cells finished or skipped so far (including this event).
    completed: int = 0
    #: Wall-clock seconds the cell's simulation took.
    duration: float = 0.0
    #: Branch records simulated in the cell.
    records: int = 0
    #: Simulated trace records per wall-clock second.
    records_per_sec: float = 0.0
    #: Estimated seconds until campaign completion (0 when unknown).
    eta_seconds: float = 0.0
    mpki: float = 0.0
    #: 1-based attempt number for retry/failure events.
    attempt: int = 0
    #: Size of the fused group this cell runs in (0 = solo execution).
    group: int = 0
    #: Identity of the worker node executing the cell ("" = this
    #: process / the local pool; see :mod:`repro.dist`).
    node: str = ""
    #: Retries issued so far in the campaign (campaign_end).
    retries: int = 0
    #: Worker processes in use (campaign_start; 1 = serial).
    jobs: int = 0
    message: str = ""
    #: Hot-path counters/timings for the cell (cell_finish of profiled
    #: cells only; the :meth:`~repro.sim.counters.SimCounters.as_dict`
    #: layout).
    profile: Optional[Dict[str, float]] = None


#: A sink consumes events; it must not raise (but safe_emit guards).
EventSink = Callable[[ExecEvent], None]


def null_sink(event: ExecEvent) -> None:
    """Discard every event (the default sink)."""


def safe_emit(sink: Optional[EventSink], event: ExecEvent) -> None:
    """Deliver ``event`` to ``sink``, swallowing sink exceptions."""
    if sink is None:
        return
    try:
        sink(event)
    except Exception:  # noqa: BLE001 - observability must not kill runs
        pass


def broadcast(*sinks: EventSink) -> EventSink:
    """A sink that forwards each event to every sink in ``sinks``."""

    def fanout(event: ExecEvent) -> None:
        for sink in sinks:
            safe_emit(sink, event)

    return fanout


@dataclass
class CollectingSink:
    """Append every event to ``events`` (tests and programmatic use)."""

    events: List[ExecEvent] = field(default_factory=list)

    def __call__(self, event: ExecEvent) -> None:
        self.events.append(event)

    def kinds(self) -> List[str]:
        return [event.kind for event in self.events]

    def of_kind(self, kind: str) -> List[ExecEvent]:
        return [event for event in self.events if event.kind == kind]


class LogSink:
    """One structured ``key=value`` line per event, for logs/CI."""

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self._stream = stream if stream is not None else sys.stderr

    def __call__(self, event: ExecEvent) -> None:
        parts = [f"exec {event.kind}"]
        if event.trace:
            parts.append(f"trace={event.trace}")
        if event.predictor:
            parts.append(f"predictor={event.predictor}")
        if event.node:
            parts.append(f"node={event.node}")
        if event.total:
            parts.append(f"cell={event.completed}/{event.total}")
        if event.kind == CELL_FINISH:
            parts.append(f"mpki={event.mpki:.4f}")
            parts.append(f"records_per_sec={event.records_per_sec:,.0f}")
            if event.eta_seconds:
                parts.append(f"eta={event.eta_seconds:.1f}s")
        if event.attempt:
            parts.append(f"attempt={event.attempt}")
        if event.kind == CAMPAIGN_START and event.jobs:
            parts.append(f"jobs={event.jobs}")
        if event.kind == CAMPAIGN_END:
            parts.append(f"retries={event.retries}")
            parts.append(f"elapsed={event.duration:.1f}s")
        if event.message:
            parts.append(f"message={event.message!r}")
        print(" ".join(parts), file=self._stream)


class ProgressLineSink:
    """A live single-line progress display (the CLI's default view).

    Rewrites one ``\\r``-terminated status line as cells complete —
    ``simulate 12/24 [BLBP/LONG-MOBILE-3] 51k rec/s eta 14s`` — and
    finishes it with a newline plus a retry/failure summary at campaign
    end.  Writes to ``stream`` (stderr by default) so piped stdout stays
    machine-readable.
    """

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._width = 0

    def _render(self, line: str) -> None:
        padding = " " * max(0, self._width - len(line))
        self._stream.write("\r" + line + padding)
        self._stream.flush()
        self._width = len(line)

    def __call__(self, event: ExecEvent) -> None:
        if event.kind in (CELL_FINISH, CELL_SKIPPED):
            label = f"{event.predictor}/{event.trace}"
            if event.node:
                label += f"@{event.node}"
            line = f"simulate {event.completed}/{event.total} [{label}]"
            if event.kind == CELL_SKIPPED:
                line += " (resumed)"
            elif event.records_per_sec:
                line += f" {event.records_per_sec / 1000:.0f}k rec/s"
            if event.eta_seconds:
                line += f" eta {event.eta_seconds:.0f}s"
            self._render(line)
        elif event.kind == NODE_DOWN:
            self._render(
                f"simulate node {event.node} down: {event.message}"
            )
        elif event.kind == CELL_RESUME:
            self._render(
                f"simulate resuming {event.predictor}/{event.trace} "
                f"mid-trace from checkpoint"
            )
        elif event.kind == CELL_RETRY:
            self._render(
                f"simulate retrying {event.predictor}/{event.trace} "
                f"(attempt {event.attempt}): {event.message}"
            )
        elif event.kind == FALLBACK:
            self._render(f"simulate falling back to serial: {event.message}")
        elif event.kind == CAMPAIGN_END:
            line = (
                f"simulate done: {event.completed}/{event.total} cells "
                f"in {event.duration:.1f}s"
            )
            if event.retries:
                line += f" ({event.retries} retries)"
            self._render(line)
            self._stream.write("\n")
            self._stream.flush()
            self._width = 0


__all__ = [
    "ExecEvent",
    "EventSink",
    "null_sink",
    "safe_emit",
    "broadcast",
    "CollectingSink",
    "LogSink",
    "ProgressLineSink",
    "CAMPAIGN_START",
    "CELL_START",
    "CELL_RESUME",
    "CELL_FINISH",
    "CELL_SKIPPED",
    "CELL_RETRY",
    "CELL_FAILED",
    "FALLBACK",
    "CAMPAIGN_END",
    "NODE_UP",
    "NODE_DOWN",
]
