"""Campaign planning: expand traces × factories into serializable cells.

A *plan* is the execution engine's unit of truth: one
:class:`CellSpec` per (trace, predictor) pair, in the same
deterministic order the serial runner would visit them.  Specs must
cross a process boundary cheaply, so they reference traces **by on-disk
path** — :func:`plan_campaign` spills each in-memory trace into the
``RPTRACE2`` zero-copy format (:mod:`repro.trace.plane`) and workers
attach it with ``np.memmap``, instead of pickling multi-megabyte NumPy
columns into every task message.  A spill whose recorded content hash
already matches is left untouched, so resumed campaigns rewrite nothing
(and keep existing mappings and derived planes valid).

:func:`fuse_cells` groups contiguous cells that share a trace into
:class:`FusedCellSpec` units, which the pool layer runs as *one* pass
over the trace via :func:`repro.sim.engine.simulate_many` — journal
entries, events, and results stay per-cell.

Predictor factories are captured as :class:`FactoryRef`: importable
classes/functions travel as a ``module:qualname`` string (stable across
processes and journal restarts); anything else — closures, bound
configs — is carried as the callable itself, which the pool layer
pickles when it can and degrades to in-process execution when it
cannot.
"""

from __future__ import annotations

import importlib
import pickle
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.sim.runner import PredictorFactory
from repro.trace.plane import spilled_hash, trace_content_hash, write_trace_v2
from repro.trace.source import TraceSource, as_source
from repro.trace.stream import Trace

#: What campaigns accept as a trace: an in-memory :class:`Trace`, any
#: :class:`~repro.trace.source.TraceSource`, or a workload spec with
#: ``.name``/``.generate()`` — all coerced via
#: :func:`repro.trace.source.as_source`.
TraceLike = Union[Trace, TraceSource, object]

#: (trace_name, predictor_name) — the identity of one campaign cell.
CellKey = Tuple[str, str]


class PlanError(ValueError):
    """A campaign could not be expanded into a valid plan."""


def _resolve_dotted(dotted: str) -> Callable:
    """Import ``module:qualname`` back into the object it names."""
    module_name, _, qualname = dotted.partition(":")
    obj = importlib.import_module(module_name)
    for attribute in qualname.split("."):
        obj = getattr(obj, attribute)
    return obj


@dataclass(frozen=True)
class FactoryRef:
    """A predictor factory in a process-portable form.

    Exactly one of ``dotted`` (an importable ``module:qualname``) or
    ``obj`` (the callable itself) is set.  ``dotted`` is preferred: it
    pickles as a short string and stays valid across interpreter
    restarts, which matters for resumed campaigns.
    """

    dotted: Optional[str] = None
    obj: Optional[Callable] = None

    @classmethod
    def from_callable(cls, factory: PredictorFactory) -> "FactoryRef":
        module = getattr(factory, "__module__", None)
        qualname = getattr(factory, "__qualname__", None)
        if module and qualname and "<" not in qualname:
            dotted = f"{module}:{qualname}"
            try:
                if _resolve_dotted(dotted) is factory:
                    return cls(dotted=dotted)
            except (ImportError, AttributeError):
                pass
        return cls(obj=factory)

    def build(self):
        """Construct a fresh predictor from this reference."""
        factory = _resolve_dotted(self.dotted) if self.dotted else self.obj
        if factory is None:
            raise PlanError("FactoryRef has neither dotted path nor object")
        return factory()

    def picklable(self) -> bool:
        """Whether this ref can cross a process boundary."""
        if self.dotted is not None:
            return True
        try:
            pickle.dumps(self.obj)
            return True
        except Exception:  # noqa: BLE001 - pickle raises many types
            return False


@dataclass(frozen=True)
class CellSpec:
    """One schedulable (trace, predictor) simulation."""

    #: Zero-based position in the plan (the deterministic merge order).
    index: int
    trace_name: str
    predictor_name: str
    #: Spill file the worker attaches the trace from (RPTRACE2; legacy
    #: RPTRACE1 files are still readable).
    trace_path: str
    factory: FactoryRef
    ras_depth: int = 32
    warmup_records: int = 0
    #: Branch records in the trace (for throughput/ETA accounting).
    records: int = 0
    #: Run the cell with hot-path profiling (counters + phase timings
    #: land on the result's ``profile`` field and in journal/events).
    profile: bool = False
    #: When > 0, the worker snapshots simulation state every this-many
    #: records into ``checkpoint_path`` so a killed/timed-out cell
    #: resumes mid-trace instead of restarting (see repro.sim.checkpoint).
    checkpoint_every: int = 0
    #: Per-cell checkpoint file (attached by the pool layer).
    checkpoint_path: Optional[str] = None
    #: Simulation backend (see :data:`repro.sim.engine.BACKENDS`):
    #: ``"scalar"`` retires branch-by-branch, ``"columnar"`` batches
    #: whole branch groups through :mod:`repro.sim.kernel` (bit-
    #: identical; unsupported predictors fall back to scalar).
    backend: str = "scalar"

    @property
    def key(self) -> CellKey:
        return (self.trace_name, self.predictor_name)


@dataclass(frozen=True)
class FusedCellSpec:
    """Several same-trace cells executed as one pass over the trace.

    Purely an *execution* grouping: the member cells keep their plan
    indices, keys, and per-cell journal/event identity.  Members share
    trace path, RAS depth, warmup, and checkpoint interval (enforced at
    construction), which is exactly what :func:`simulate_many` needs to
    issue every predictor its unfused call sequence in one pass.
    """

    cells: Tuple[CellSpec, ...]

    def __post_init__(self) -> None:
        if len(self.cells) < 2:
            raise PlanError("a fused cell needs at least two member cells")
        first = self.cells[0]
        for cell in self.cells[1:]:
            if (
                cell.trace_path != first.trace_path
                or cell.trace_name != first.trace_name
                or cell.ras_depth != first.ras_depth
                or cell.warmup_records != first.warmup_records
                or cell.checkpoint_every != first.checkpoint_every
                or cell.backend != first.backend
            ):
                raise PlanError(
                    f"cells ({first.trace_name}, {first.predictor_name}) and "
                    f"({cell.trace_name}, {cell.predictor_name}) cannot fuse: "
                    "trace/ras_depth/warmup/checkpoint settings differ"
                )

    @property
    def trace_name(self) -> str:
        return self.cells[0].trace_name

    @property
    def trace_path(self) -> str:
        return self.cells[0].trace_path

    @property
    def records(self) -> int:
        return self.cells[0].records

    @property
    def size(self) -> int:
        return len(self.cells)


#: What the pool layer schedules: a bare cell or a fused group.
ExecutionUnit = Union[CellSpec, "FusedCellSpec"]


def fuse_cells(
    cells: Iterable[CellSpec],
    fusable: Optional[Callable[[CellSpec], bool]] = None,
) -> List[ExecutionUnit]:
    """Group contiguous same-trace cells into :class:`FusedCellSpec`s.

    Only *adjacent* compatible cells fuse, which preserves plan order:
    recording a group's members in cell order keeps the serial journal
    byte-identical to an unfused run.  ``fusable`` can veto individual
    cells (profiled cells, cells with a pending checkpoint); a vetoed
    cell runs alone and breaks the current run of fusable cells.
    """
    units: List[ExecutionUnit] = []
    run: List[CellSpec] = []

    def flush() -> None:
        if len(run) >= 2:
            units.append(FusedCellSpec(cells=tuple(run)))
        elif run:
            units.append(run[0])
        run.clear()

    for cell in cells:
        if fusable is not None and not fusable(cell):
            flush()
            units.append(cell)
            continue
        if run and (
            cell.trace_path != run[-1].trace_path
            or cell.trace_name != run[-1].trace_name
            or cell.ras_depth != run[-1].ras_depth
            or cell.warmup_records != run[-1].warmup_records
            or cell.checkpoint_every != run[-1].checkpoint_every
            or cell.backend != run[-1].backend
        ):
            flush()
        run.append(cell)
    flush()
    return units


@dataclass
class CampaignPlan:
    """An ordered set of cells plus the spill directory they reference."""

    cells: List[CellSpec] = field(default_factory=list)
    cache_dir: Optional[Path] = None

    @property
    def total(self) -> int:
        return len(self.cells)

    def keys(self) -> List[CellKey]:
        return [cell.key for cell in self.cells]


_UNSAFE_FILENAME = re.compile(r"[^A-Za-z0-9._-]+")


def _spill_name(index: int, trace_name: str) -> str:
    """A filesystem-safe, collision-free spill filename for a trace."""
    stem = _UNSAFE_FILENAME.sub("_", trace_name)[:80] or "trace"
    return f"{index:04d}-{stem}.trace"


def spill_trace(trace: Trace, path: Path) -> bool:
    """Spill ``trace`` to ``path`` unless an identical spill is present.

    Returns ``True`` if the file was (re)written.  The content hash in
    the RPTRACE2 header makes the check one header read — resumed
    campaigns touch no spill bytes, which keeps worker ``TraceCache``
    mappings and on-disk derived planes valid across runs.
    """
    content_hash = trace_content_hash(trace)
    if path.exists() and spilled_hash(path) == content_hash:
        return False
    write_trace_v2(trace, path, content_hash=content_hash)
    return True


def checkpoint_name(spec: "CellSpec") -> str:
    """A filesystem-safe, collision-free checkpoint filename for a cell.

    The plan index disambiguates cells whose sanitized names collide;
    the names keep the file greppable next to its journal.
    """
    trace = _UNSAFE_FILENAME.sub("_", spec.trace_name)[:60] or "trace"
    predictor = (
        _UNSAFE_FILENAME.sub("_", spec.predictor_name)[:40] or "predictor"
    )
    return f"{spec.index:04d}-{trace}-{predictor}.ckpt.json"


def plan_campaign(
    traces: Iterable[TraceLike],
    factories: Dict[str, PredictorFactory],
    cache_dir: Union[str, Path],
    ras_depth: int = 32,
    warmup_records: int = 0,
    profile: bool = False,
    backend: str = "scalar",
) -> CampaignPlan:
    """Expand a campaign into a :class:`CampaignPlan`.

    ``traces`` may mix in-memory :class:`Trace`s, lazy
    :class:`~repro.trace.source.TraceSource`s, and workload specs; each
    is written once into ``cache_dir`` (created if needed) and each of
    its cells points at that file.  Lazy sources materialize only here,
    at spill time, and are released again afterwards — a plan over
    workload sources produces byte-identical spills, cells, and journals
    to one over eagerly generated traces.  Cell order matches
    :func:`repro.sim.runner.run_campaign`: traces outermost, factories
    in dict order — so a merged parallel campaign is cell-for-cell
    identical to a serial one.

    Raises:
        PlanError: on duplicate trace names (they would alias one
            journal/result cell) or an empty factory map.
    """
    sources = [as_source(trace) for trace in traces]
    if not factories:
        raise PlanError("campaign needs at least one predictor factory")
    from repro.sim.engine import BACKENDS

    if backend not in BACKENDS:
        raise PlanError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    names = [source.name for source in sources]
    duplicates = {name for name in names if names.count(name) > 1}
    if duplicates:
        raise PlanError(
            f"duplicate trace names in campaign: {sorted(duplicates)}; "
            "cells are keyed by (trace, predictor) and would collide"
        )

    cache_dir = Path(cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)
    refs = {
        name: FactoryRef.from_callable(factory)
        for name, factory in factories.items()
    }

    cells: List[CellSpec] = []
    index = 0
    for trace_index, source in enumerate(sources):
        path = cache_dir / _spill_name(trace_index, source.name)
        source.spill(path)
        records = len(source)
        source.release()
        for predictor_name, ref in refs.items():
            cells.append(
                CellSpec(
                    index=index,
                    trace_name=source.name,
                    predictor_name=predictor_name,
                    trace_path=str(path),
                    factory=ref,
                    ras_depth=ras_depth,
                    warmup_records=warmup_records,
                    records=records,
                    profile=profile,
                    backend=backend,
                )
            )
            index += 1
    return CampaignPlan(cells=cells, cache_dir=cache_dir)


#: Estimated fixed spill overhead (RPTRACE2 magic + JSON header + column
#: alignment padding); the per-record columns dominate real spills.
SPILL_OVERHEAD_BYTES = 512


def plan_summary(
    traces: Iterable[TraceLike],
    factories: Dict[str, PredictorFactory],
    fuse: bool = True,
    profile: bool = False,
) -> Dict[str, int]:
    """What a campaign *would* plan, without spilling or executing.

    Backs ``repro simulate --dry-run`` / ``repro search --dry-run``:
    the cell count, scheduling-unit/fusion-group shape, the number of
    distinct traces a distributed pool would ship, and an estimate of
    total spill bytes (:func:`repro.trace.plane.record_nbytes` per
    record plus a fixed per-file overhead).  No files are written;
    sources with header metadata (e.g. RPTRACE2 files) are sized
    without decoding, others materialize once for the count.
    """
    from repro.trace.plane import record_nbytes

    traces = [as_source(trace) for trace in traces]
    names = {source.name for source in traces}
    cells = len(traces) * len(factories)
    # Mirrors fuse_cells over plan_campaign's trace-major order:
    # each trace's cells are adjacent and fuse into one group unless
    # fusion is off, profiling forces solo cells, or there is only one
    # factory (a "group" of one is just a solo cell).
    if fuse and not profile and len(factories) > 1:
        fused_groups = len(traces)
        units = len(traces)
    else:
        fused_groups = 0
        units = cells
    spill_bytes = sum(
        SPILL_OVERHEAD_BYTES + len(trace) * record_nbytes()
        for trace in traces
    )
    return {
        "traces": len(traces),
        "distinct_traces": len(names),
        "predictors": len(factories),
        "cells": cells,
        "units": units,
        "fused_groups": fused_groups,
        "estimated_spill_bytes": spill_bytes,
    }


__all__ = [
    "CellKey",
    "CellSpec",
    "CampaignPlan",
    "ExecutionUnit",
    "FactoryRef",
    "FusedCellSpec",
    "PlanError",
    "SPILL_OVERHEAD_BYTES",
    "TraceLike",
    "checkpoint_name",
    "fuse_cells",
    "plan_summary",
    "plan_campaign",
    "spill_trace",
]
