"""Campaign execution engine: parallel, resumable, observable.

The serial :func:`repro.sim.runner.run_campaign` visits (trace,
predictor) cells one at a time in one process.  This package runs the
same cells as a scheduled *campaign*:

* :mod:`repro.exec.plan` expands traces × factories into serializable
  :class:`CellSpec`s, spilling traces to the binary cache so workers
  load columns from disk instead of pickling them;
* :mod:`repro.exec.pool` executes cells across a process pool with
  per-cell timeouts, bounded retry, and graceful degradation to serial
  execution, merging results in deterministic plan order;
* :mod:`repro.exec.journal` checkpoints every finished cell to a JSONL
  file so an interrupted campaign resumes where it died;
* :mod:`repro.exec.events` streams structured progress events
  (throughput, ETA, retries) into pluggable sinks.

:func:`run_campaign_parallel` is the drop-in entry point::

    from repro.exec import run_campaign_parallel

    campaign = run_campaign_parallel(
        traces, {"BLBP": BLBP, "ITTAGE": ITTAGE},
        jobs=4, journal_path="campaign.jsonl",
    )

It accepts the serial runner's arguments (including its ``progress``
callback protocol) and returns a cell-for-cell identical
:class:`~repro.sim.metrics.CampaignResult`.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Dict, Iterable, Optional, Union

from repro.exec.events import (
    CELL_FINISH,
    CELL_RESUME,
    CELL_SKIPPED,
    CollectingSink,
    EventSink,
    ExecEvent,
    LogSink,
    ProgressLineSink,
    broadcast,
    null_sink,
)
from repro.exec.journal import (
    Journal,
    JournalError,
    load_journal,
    result_from_json,
    result_to_json,
)
from repro.exec.plan import (
    CampaignPlan,
    CellSpec,
    FactoryRef,
    FusedCellSpec,
    PlanError,
    fuse_cells,
    plan_campaign,
)
from repro.exec.pool import (
    CellFailedError,
    CellTimeout,
    execute_plan,
    run_cell,
    run_fused_cell,
)
from repro.sim.metrics import CampaignResult
from repro.sim.runner import (
    PredictorFactory,
    ProgressCallback,
    invoke_progress,
    progress_arity,
)
from repro.trace.stream import Trace

#: Environment variable selecting the default worker count.
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: explicit value, else ``REPRO_JOBS``, else 1.

    Values below 1 are clamped to 1 (serial).  A non-integer
    ``REPRO_JOBS`` raises ``ValueError`` rather than silently running
    serial.
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV)
        if raw is None:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"{JOBS_ENV} must be an integer, got {raw!r}"
            ) from None
    return max(1, jobs)


def _progress_sink(progress: ProgressCallback) -> EventSink:
    """Adapt a runner-style progress callback into an event sink."""
    arity = progress_arity(progress)

    def sink(event: ExecEvent) -> None:
        if event.kind in (CELL_FINISH, CELL_SKIPPED):
            invoke_progress(
                progress,
                event.trace,
                event.predictor,
                event.mpki,
                event.index,
                event.total,
                arity=arity,
            )

    return sink


def run_campaign_parallel(
    traces: Iterable[Trace],
    factories: Dict[str, PredictorFactory],
    jobs: Optional[int] = None,
    ras_depth: int = 32,
    warmup_records: int = 0,
    progress: Optional[ProgressCallback] = None,
    journal_path: Optional[Union[str, Path]] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    events: Optional[EventSink] = None,
    timeout: Optional[float] = None,
    retries: int = 2,
    backoff: float = 0.1,
    profile: bool = False,
    checkpoint_every: int = 0,
    fuse: bool = True,
    pool=None,
    backend: str = "scalar",
) -> CampaignResult:
    """Run a campaign across worker processes; a drop-in for
    :func:`repro.sim.runner.run_campaign`.

    Args:
        traces, factories, ras_depth, warmup_records, progress: as the
            serial runner (both progress arities supported).
        jobs: worker processes; ``None`` reads ``REPRO_JOBS`` (default 1).
        journal_path: JSONL checkpoint; pass the same path again to
            resume an interrupted campaign.
        cache_dir: where trace spill files go; ``None`` uses a
            temporary directory deleted when the call returns.
        events: structured-event sink (combined with ``progress`` if
            both given).
        timeout, retries, backoff: per-cell execution policy, see
            :func:`repro.exec.pool.execute_plan`.
        profile: run every cell with hot-path profiling; per-cell
            counters land on each result's ``profile`` field, in
            ``cell_finish`` events, and in the journal.
        checkpoint_every: when > 0, workers snapshot simulation state
            every this-many records into ``<journal>.ckpt/`` so a
            killed or timed-out cell resumes mid-trace; see
            :func:`repro.exec.pool.execute_plan`.
        fuse: fuse contiguous same-trace cells into single-pass
            multi-predictor units (default on; results are identical
            either way — see :func:`repro.exec.pool.execute_plan`).
        pool: a :class:`repro.dist.Pool` to schedule cells on —
            :class:`~repro.dist.NodePool` / :class:`~repro.dist.SSHPool`
            distribute the campaign across worker nodes with
            byte-identical journals; ``None`` keeps classic ``jobs``
            scheduling (or reads ``REPRO_NODES``, see
            :func:`repro.dist.resolve_pool`).
        backend: simulation backend for every cell ("scalar",
            "columnar", or "columnar-strict", see
            :data:`repro.sim.engine.BACKENDS`); results and journal
            bytes are identical whichever backend runs.

    Returns:
        A :class:`CampaignResult` identical to the serial runner's.
    """
    jobs = resolve_jobs(jobs)
    sinks = []
    if events is not None:
        sinks.append(events)
    if progress is not None:
        sinks.append(_progress_sink(progress))
    sink: Optional[EventSink] = None
    if sinks:
        sink = sinks[0] if len(sinks) == 1 else broadcast(*sinks)

    def _execute(spill_dir: Union[str, Path]) -> CampaignResult:
        plan = plan_campaign(
            traces,
            factories,
            cache_dir=spill_dir,
            ras_depth=ras_depth,
            warmup_records=warmup_records,
            profile=profile,
            backend=backend,
        )
        return execute_plan(
            plan,
            jobs=jobs,
            journal_path=journal_path,
            events=sink,
            timeout=timeout,
            retries=retries,
            backoff=backoff,
            checkpoint_every=checkpoint_every,
            fuse=fuse,
            pool=pool,
        )

    if cache_dir is not None:
        return _execute(cache_dir)
    with tempfile.TemporaryDirectory(prefix="repro-exec-") as spill_dir:
        return _execute(spill_dir)


__all__ = [
    "CELL_RESUME",
    "CampaignPlan",
    "CellFailedError",
    "CellSpec",
    "CellTimeout",
    "CollectingSink",
    "EventSink",
    "ExecEvent",
    "FactoryRef",
    "FusedCellSpec",
    "JOBS_ENV",
    "Journal",
    "JournalError",
    "LogSink",
    "PlanError",
    "ProgressLineSink",
    "broadcast",
    "execute_plan",
    "fuse_cells",
    "load_journal",
    "null_sink",
    "plan_campaign",
    "resolve_jobs",
    "result_from_json",
    "result_to_json",
    "run_campaign_parallel",
    "run_cell",
    "run_fused_cell",
]
