"""JSONL checkpointing of completed campaign cells.

A campaign that dies twenty minutes in should not owe the machine those
twenty minutes again.  The executor appends every finished
:class:`~repro.sim.metrics.SimulationResult` to a journal — one JSON
object per line, flushed per cell — and on restart
:func:`load_journal` replays it into a ``(trace, predictor) → result``
map so finished cells are skipped.

The format is deliberately dumb: self-describing JSON lines with a
version tag, append-only, no footer.  A process killed mid-write leaves
at most one truncated final line, which the loader tolerates and
drops; every earlier line is intact because each append ends with a
flush.  Journals from a different format version are rejected loudly
rather than silently mis-merged.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, IO, Optional, Union

from repro.exec.plan import CellKey
from repro.sim.metrics import SimulationResult

#: Format tag written into every line; bump on incompatible change.
JOURNAL_VERSION = 1


class JournalError(ValueError):
    """A journal file exists but cannot be used."""


def result_to_json(
    result: SimulationResult, node: Optional[str] = None
) -> dict:
    """A JSON-ready dict capturing every field of ``result``.

    ``node`` attributes the entry to a distributed worker; it is only
    written when explicitly passed and truthy, so the *canonical*
    serialization (no ``node``) of a distributed cell is byte-identical
    to the line a single-node run would write.
    """
    return {
        "v": JOURNAL_VERSION,
        "trace": result.trace_name,
        "predictor": result.predictor_name,
        "total_instructions": result.total_instructions,
        "indirect_branches": result.indirect_branches,
        "indirect_mispredictions": result.indirect_mispredictions,
        "return_branches": result.return_branches,
        "return_mispredictions": result.return_mispredictions,
        "conditional_branches": result.conditional_branches,
        # JSON keys are strings; PCs are re-int'ed on load.
        "mispredictions_by_pc": {
            str(pc): count
            for pc, count in result.mispredictions_by_pc.items()
        },
        **({"profile": result.profile} if result.profile else {}),
        **({"node": node} if node else {}),
    }


def result_from_json(payload: dict) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` from :func:`result_to_json`."""
    version = payload.get("v")
    if version != JOURNAL_VERSION:
        raise JournalError(
            f"journal line has version {version!r}, expected {JOURNAL_VERSION}"
        )
    return SimulationResult(
        trace_name=payload["trace"],
        predictor_name=payload["predictor"],
        total_instructions=payload["total_instructions"],
        indirect_branches=payload["indirect_branches"],
        indirect_mispredictions=payload["indirect_mispredictions"],
        return_branches=payload.get("return_branches", 0),
        return_mispredictions=payload.get("return_mispredictions", 0),
        conditional_branches=payload.get("conditional_branches", 0),
        mispredictions_by_pc={
            int(pc): count
            for pc, count in payload.get("mispredictions_by_pc", {}).items()
        },
        profile=payload.get("profile"),
        node=payload.get("node", ""),
    )


def load_journal(path: Union[str, Path]) -> Dict[CellKey, SimulationResult]:
    """Read a journal into a ``(trace, predictor) → result`` map.

    A missing file is an empty journal (first run).  A truncated or
    garbled **final** line — the signature of a killed process — is
    dropped; corruption anywhere earlier, or a version mismatch, raises
    :class:`JournalError` because silently skipping interior cells
    would re-simulate some cells and not others unpredictably.
    """
    path = Path(path)
    results: Dict[CellKey, SimulationResult] = {}
    if not path.exists():
        return results
    lines = path.read_text(encoding="utf-8").splitlines()
    for line_number, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
            result = result_from_json(payload)
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            if line_number == len(lines) - 1:
                break  # torn final write from an interrupted run
            raise JournalError(
                f"{path}:{line_number + 1}: corrupt journal line ({exc})"
            ) from exc
        results[(result.trace_name, result.predictor_name)] = result
    return results


class Journal:
    """An append-only journal writer (use as a context manager).

    Appending re-opens nothing and rewrites nothing: each
    :meth:`append` serializes one result, writes one line, and flushes
    so the entry survives a subsequent SIGKILL.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: Optional[IO[str]] = open(
            self.path, "a", encoding="utf-8"
        )

    def append(self, result: SimulationResult, node: str = "") -> None:
        if self._handle is None:
            raise JournalError(f"journal {self.path} is closed")
        self._handle.write(
            json.dumps(result_to_json(result, node=node)) + "\n"
        )
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "JOURNAL_VERSION",
    "Journal",
    "JournalError",
    "load_journal",
    "result_from_json",
    "result_to_json",
]
