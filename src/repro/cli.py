"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``suite``     — list the 88-workload suite (Table 1);
* ``generate``  — generate a named suite trace (or all) to disk;
* ``stats``     — workload-characterization statistics for traces;
* ``import``    — ingest an external trace (ChampSim/gem5/CSV) to RPTRACE2;
* ``trace``     — trace utilities (``trace info``: identity + branch mix);
* ``simulate``  — run predictors over traces or suite samples;
* ``search``    — design-space search over BLBP configurations;
* ``budgets``   — predictor hardware budgets (Table 2);
* ``registry``  — registered predictor keys + config fingerprints;
* ``serve``     — the prediction server (``repro.serve``);
* ``nodes``     — probe distributed worker nodes (``repro.dist``);
* ``statehash`` — canonical predictor state hashes (golden fixtures).

Examples::

    python -m repro suite
    python -m repro generate SHORT-MOBILE-1 --out /tmp/sm1.trace
    python -m repro stats /tmp/sm1.trace
    python -m repro import branches.champsim.txt --out branches.trace
    python -m repro trace info branches.trace
    python -m repro simulate --predictors BTB,ITTAGE,BLBP --stride 16
    python -m repro simulate --traces branches.trace --sample 4
    python -m repro simulate --jobs 4 --resume campaign.jsonl --stride 8
    python -m repro simulate --jobs 4 --resume c.jsonl --checkpoint-every 100000
    python -m repro simulate --nodes 4 --resume campaign.jsonl --stride 8
    python -m repro simulate --dry-run --stride 8
    python -m repro nodes --nodes 2
    python -m repro search --strategy hillclimb --budget 24 --jobs 4
    python -m repro search --strategy sha --space sizing --resume s.jsonl
    python -m repro budgets
    python -m repro registry
    python -m repro serve --port 9317 --state-dir /tmp/serve-state
    python -m repro statehash --out tests/fixtures/state_hashes.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Callable, Dict, List

from repro.experiments.configs import format_budget_details, format_table2
from repro.predictors import IndirectBranchPredictor
from repro.registry import INDIRECT_PREDICTORS, make_indirect
from repro.sim import (
    ColumnarUnsupportedError,
    SimCounters,
    aggregate_profiles,
    format_counters,
    format_mpki_table,
    run_campaign,
)
from repro.trace.record import BranchType
from repro.trace.stats import compute_stats
from repro.trace.stream import write_trace
from repro.trace.textio import write_text_trace
from repro.workloads.suite import suite88_specs
from repro.workloads.validation import format_report, validate_trace

#: CLI names for every available indirect predictor (the shared
#: construction registry; see :mod:`repro.registry`).
PREDICTOR_REGISTRY: Dict[str, Callable[[], IndirectBranchPredictor]] = (
    INDIRECT_PREDICTORS
)


def _cmd_suite(args: argparse.Namespace) -> int:
    specs = suite88_specs(args.scale)
    print(f"{'name':<28} {'source':<14} {'category':<14} {'records':>8}")
    for entry in specs:
        print(
            f"{entry.name:<28} {entry.source:<14} {entry.category:<14} "
            f"{entry.spec.num_records:>8}"
        )
    print(f"\n{len(specs)} workloads")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    specs = {entry.name: entry for entry in suite88_specs(args.scale)}
    if args.name not in specs:
        print(f"unknown trace {args.name!r}; see `python -m repro suite`",
              file=sys.stderr)
        return 1
    trace = specs[args.name].generate()
    if str(args.out).endswith(".csv"):
        write_text_trace(trace, args.out)
    else:
        write_trace(trace, args.out)
    print(f"wrote {trace} -> {args.out}")
    return 0


def _load_trace(path: str):
    """Load a trace in any readable format (RPTRACE, CSV, ingested)."""
    from repro.trace.ingest import load_any_trace

    return load_any_trace(path)


def _cmd_stats(args: argparse.Namespace) -> int:
    for path in args.traces:
        trace = _load_trace(path)
        stats = compute_stats(trace)
        indirect_pk = sum(
            stats.per_kilo(bt)
            for bt in (BranchType.INDIRECT_JUMP, BranchType.INDIRECT_CALL)
        )
        print(f"{trace.name}:")
        print(f"  instructions        {stats.total_instructions}")
        print(f"  conditional / ki    {stats.per_kilo(BranchType.CONDITIONAL):.2f}")
        print(f"  indirect / ki       {indirect_pk:.2f}")
        print(f"  returns / ki        {stats.per_kilo(BranchType.RETURN):.2f}")
        print(f"  polymorphic share   {100 * stats.polymorphic_fraction():.1f}%")
        print(f"  static ind branches {len(stats.targets_per_branch)}")
        most = max(stats.targets_per_branch.values(), default=0)
        print(f"  max targets/branch  {most}")
    return 0


def _cmd_import(args: argparse.Namespace) -> int:
    """Ingest an external trace file into an RPTRACE2 spill."""
    from repro.trace.ingest import IngestError, detect_format
    from repro.trace.source import FileSource, SourceError

    try:
        source = FileSource(args.path, format=args.format, name=args.name)
        detected = args.format or detect_format(args.path)
        wrote = source.spill(Path(args.out))
    except (IngestError, SourceError, ValueError, OSError) as exc:
        print(f"import error: {exc}", file=sys.stderr)
        return 1
    verb = "wrote" if wrote else "unchanged (content hash matches)"
    print(
        f"{verb} {args.out}: {source.name!r}, {len(source)} records "
        f"(from {detected}), hash {source.content_hash()[:16]}"
    )
    return 0


def _cmd_trace_info(args: argparse.Namespace) -> int:
    """Identity + branch mix for trace files in any readable format."""
    from repro.trace.ingest import IngestError, detect_format
    from repro.trace.source import FileSource, SourceError

    status = 0
    for path in args.traces:
        try:
            detected = detect_format(path)
            source = FileSource(path, format=detected)
            trace = source.trace()
        except (IngestError, SourceError, ValueError, OSError) as exc:
            print(f"{path}: error: {exc}", file=sys.stderr)
            status = 1
            continue
        indirect = (
            trace.types == int(BranchType.INDIRECT_JUMP)
        ) | (trace.types == int(BranchType.INDIRECT_CALL))
        distinct_indirect = len(set(trace.pcs[indirect].tolist()))
        print(f"{path}:")
        print(f"  name             {trace.name}")
        print(f"  format           {detected}")
        print(f"  records          {len(trace)}")
        print(f"  instructions     {int(trace.gaps.sum()) + len(trace)}")
        print(f"  content hash     {source.content_hash()}")
        for branch_type in BranchType:
            count = int((trace.types == int(branch_type)).sum())
            share = 100.0 * count / len(trace)
            print(
                f"  {branch_type.name.lower():<16} {count:>10} "
                f"({share:5.1f}%)"
            )
        print(f"  distinct indirect PCs {distinct_indirect}")
    return status


def _parse_predictors(raw: str) -> Dict[str, Callable[[], IndirectBranchPredictor]]:
    factories = {}
    for name in raw.split(","):
        name = name.strip()
        if name not in PREDICTOR_REGISTRY:
            raise SystemExit(
                f"unknown predictor {name!r}; choose from "
                f"{', '.join(PREDICTOR_REGISTRY)}"
            )
        factories[name] = PREDICTOR_REGISTRY[name]
    return factories


def _format_plan_summary(summary: Dict[str, int], label: str) -> str:
    """Human-readable ``--dry-run`` rendering of a plan summary."""
    spill = summary["estimated_spill_bytes"]
    lines = [
        f"{label}: {summary['traces']} trace(s) x "
        f"{summary['predictors']} predictor(s) = "
        f"{summary['cells']} cells",
        f"  scheduling units      {summary['units']} "
        f"({summary['fused_groups']} fused group(s))",
        f"  distinct traces       {summary['distinct_traces']} "
        f"(each ships to a node at most once)",
        f"  estimated spill bytes {spill:,} "
        f"(~{spill / (1 << 20):.1f} MiB)",
    ]
    return "\n".join(lines)


def _make_pool(nodes):
    """A :class:`repro.dist.NodePool` for ``--nodes N``, else ``None``."""
    if not nodes:
        return None
    from repro.dist import NodePool

    return NodePool(nodes=nodes)


def _run_sampled(args: argparse.Namespace, factories, traces) -> int:
    """The ``simulate --sample N`` path: SimPoint-style MPKI estimates."""
    from repro.sim import simulate_sampled
    from repro.trace.sampling import simpoint_plan

    print(
        f"{'trace':<28} {'predictor':<12} {'est MPKI':>9} {'regions':>7} "
        f"{'replayed':>9} {'full':>9} {'reduction':>9}"
    )
    for trace in traces:
        plan = simpoint_plan(
            trace,
            args.sample_interval,
            max_regions=args.sample,
            warmup_intervals=args.sample_warmup,
        )
        for name, factory in factories.items():
            result = simulate_sampled(
                factory,
                trace,
                plan=plan,
                backend=args.backend,
                checkpoint_dir=args.sample_checkpoints,
            )
            print(
                f"{trace.name:<28} {name:<12} "
                f"{result.estimated_mpki:>9.4f} "
                f"{len(plan.regions):>7} {result.replayed_records:>9} "
                f"{result.full_records:>9} "
                f"{result.record_reduction:>8.1f}x"
            )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.exec import ProgressLineSink, resolve_jobs, run_campaign_parallel
    from repro.exec.plan import plan_summary

    factories = _parse_predictors(args.predictors)
    traces = []
    if args.traces:
        traces = [_load_trace(path) for path in args.traces]
    else:
        entries = suite88_specs(args.scale)[:: args.stride]
        print(f"generating {len(entries)} suite traces ...", file=sys.stderr)
        traces = [entry.generate() for entry in entries]
    if args.sample:
        return _run_sampled(args, factories, traces)
    if args.dry_run:
        print(_format_plan_summary(
            plan_summary(traces, factories, fuse=args.fuse,
                         profile=args.profile),
            "campaign plan",
        ))
        return 0
    jobs = resolve_jobs(args.jobs)
    if args.checkpoint_every and not args.resume:
        print(
            "note: --checkpoint-every without --resume keeps checkpoints "
            "in a temporary directory; they will not survive this process",
            file=sys.stderr,
        )
    pool = _make_pool(args.nodes)
    try:
        if pool or jobs > 1 or args.resume or args.checkpoint_every or args.fuse:
            campaign = run_campaign_parallel(
                traces,
                factories,
                jobs=jobs,
                journal_path=args.resume,
                events=ProgressLineSink(sys.stderr),
                profile=args.profile,
                checkpoint_every=args.checkpoint_every,
                fuse=args.fuse,
                pool=pool,
                backend=args.backend,
            )
        else:
            campaign = run_campaign(
                traces,
                factories,
                counters=SimCounters() if args.profile else None,
                backend=args.backend,
            )
    finally:
        if pool is not None:
            pool.close()
    print(format_mpki_table(campaign, sort_by=list(factories)[-1]))
    if args.profile:
        print()
        for name in factories:
            totals = aggregate_profiles(
                per_trace[name].profile
                for per_trace in campaign.results.values()
                if name in per_trace
            )
            print(f"profile [{name}]")
            for line in format_counters(totals).splitlines():
                print(f"  {line}")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.exec import resolve_jobs
    from repro.search import (
        GenerationEvaluator,
        SpaceError,
        default_space,
        format_leaderboard,
        intervals_space,
        make_strategy,
        run_search,
        save_leaderboard_json,
        save_leaderboard_markdown,
        sizing_space,
        toggles_space,
    )

    spaces = {
        "default": default_space,
        "sizing": sizing_space,
        "intervals": intervals_space,
        "toggles": toggles_space,
    }
    if args.budget < 1:
        print(f"search error: budget must be >= 1, got {args.budget}",
              file=sys.stderr)
        return 1
    if args.traces:
        traces = [_load_trace(path) for path in args.traces]
    else:
        entries = suite88_specs(args.scale)[:: args.stride]
        print(f"generating {len(entries)} tuning traces ...", file=sys.stderr)
        traces = [entry.generate() for entry in entries]
    try:
        strategy = make_strategy(
            args.strategy, spaces[args.space](),
            seed=args.seed, batch_size=args.batch,
        )
    except SpaceError as exc:
        print(f"search space error: {exc}", file=sys.stderr)
        return 1

    if args.dry_run:
        from repro.exec.plan import plan_summary

        # One generation's campaign: --batch candidates over the
        # tuning traces; the search runs ceil(budget / batch) of them.
        summary = plan_summary(
            traces, {f"cand-{i}": None for i in range(args.batch)},
        )
        generations = -(-args.budget // args.batch)
        print(_format_plan_summary(summary, "per-generation plan"))
        print(
            f"  generations           ~{generations} "
            f"(budget {args.budget} / batch {args.batch})"
        )
        print(
            f"  total cells           ~{summary['cells'] * generations}"
        )
        return 0

    def progress(generation: int, evaluations: int, best: float) -> None:
        print(
            f"search gen {generation}: {evaluations}/{args.budget} "
            f"candidates, best mean MPKI {best:.4f}",
            file=sys.stderr,
        )

    pool = _make_pool(args.nodes)
    try:
        with GenerationEvaluator(
            traces, jobs=resolve_jobs(args.jobs), pool=pool,
            backend=args.backend,
        ) as evaluator:
            result = run_search(
                strategy,
                evaluator,
                budget=args.budget,
                journal_path=args.resume,
                progress=progress,
            )
    finally:
        if pool is not None:
            pool.close()
    print(
        f"search done: {result.evaluations} candidates over "
        f"{result.generations} generations "
        f"({result.live_evaluations} simulated, {result.resumed} resumed)"
    )
    print(format_leaderboard(result.leaderboard, top=args.top))
    if args.out:
        json_path = save_leaderboard_json(
            result.leaderboard, f"{args.out}/leaderboard.json"
        )
        md_path = save_leaderboard_markdown(
            result.leaderboard, f"{args.out}/leaderboard.md", top=args.top
        )
        print(f"leaderboard written to {json_path} and {md_path}",
              file=sys.stderr)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    if args.traces:
        traces = [_load_trace(path) for path in args.traces]
    else:
        entries = suite88_specs(args.scale)[:: args.stride]
        print(f"validating {len(entries)} suite traces ...", file=sys.stderr)
        traces = [entry.generate() for entry in entries]
    failures = 0
    for trace in traces:
        report = validate_trace(trace)
        print(format_report(report))
        if not report.ok:
            failures += 1
    if failures:
        print(f"{failures} trace(s) violate the workload contract",
              file=sys.stderr)
    return 1 if failures else 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import generate_report

    path = generate_report(
        args.out, scale=args.scale, stride=args.stride
    )
    print(f"report written to {path}")
    return 0


def _cmd_budgets(args: argparse.Namespace) -> int:
    print(format_table2())
    if args.details:
        print()
        print(format_budget_details())
    return 0


def _cmd_registry(args: argparse.Namespace) -> int:
    """List registered predictor keys with config fingerprints."""
    from repro.registry import registry_listing

    rows = registry_listing()
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    print(f"{'name':<18} {'kind':<12} {'class':<28} fingerprint")
    for row in rows:
        print(
            f"{row['name']:<18} {row['kind']:<12} {row['class']:<28} "
            f"{row['fingerprint'][:16]}"
        )
    print(
        f"\n{len(rows)} registered predictors; indirect keys are valid "
        f"`repro serve` session configs"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the prediction server until SIGTERM/SIGINT (drains on exit)."""
    import asyncio

    from repro.serve.server import PredictionServer

    async def run() -> int:
        server = PredictionServer(
            host=args.host,
            port=args.port,
            state_dir=args.state_dir,
            max_resident=args.max_resident,
            batch_window=args.batch_window,
            max_batch_events=args.batch_max_events,
            workers=args.workers,
            ras_depth=args.ras_depth,
        )
        port = await server.start()
        # Parsed by scripts/serve_smoke.py and the load driver: keep the
        # "serving on host:port" shape stable.
        print(f"serving on {args.host}:{port} "
              f"(state dir {args.state_dir}, "
              f"max resident {args.max_resident})", flush=True)
        saved = await server.serve_until_stopped()
        print(f"drained: {saved} session(s) checkpointed to "
              f"{args.state_dir}", flush=True)
        return 0

    return asyncio.run(run())


def _cmd_nodes(args: argparse.Namespace) -> int:
    """Probe a distributed pool: spawn/contact nodes and print a table."""
    import os

    from repro.dist import NODES_ENV, NodePool, PoolError, SSHPool

    try:
        if args.ssh:
            pool = SSHPool(
                [host.strip() for host in args.ssh.split(",")],
                template=args.template or SSHPool.DEFAULT_TEMPLATE,
                python=args.python,
            )
        else:
            count = args.nodes or int(os.environ.get(NODES_ENV, "2") or 2)
            pool = NodePool(nodes=count)
    except (PoolError, ValueError, OSError) as exc:
        print(f"nodes error: {exc}", file=sys.stderr)
        return 1
    try:
        rows = pool.describe()
    finally:
        pool.close()
    print(f"{'node':<16} {'transport':<16} {'pid':>8} {'cpus':>5} "
          f"{'alive':<6} {'cells':>6} {'traces':>7}")
    for row in rows:
        print(
            f"{row['node']:<16} {row['transport']:<16} "
            f"{row['pid']:>8} {row['cpus']:>5} "
            f"{str(row['alive']).lower():<6} "
            f"{row.get('cells', 0):>6} {row.get('traces_stored', 0):>7}"
        )
    print(f"\n{len(rows)} node(s); "
          f"{sum(1 for row in rows if row['alive'])} alive")
    return 0 if rows and all(row["alive"] for row in rows) else 1


#: Defaults for the golden state-hash fixtures; changing either is a
#: fixture regeneration (and a deliberate decision), not a tweak.
STATEHASH_TRACE = "spec2000.252_eon"
STATEHASH_SCALE = 0.02


def _cmd_statehash(args: argparse.Namespace) -> int:
    """Print canonical post-simulation state hashes per predictor.

    Every registered indirect predictor is driven over one deterministic
    suite trace and its :meth:`state_hash` printed.  With ``--out`` the
    hashes are written as a JSON fixture — this is how
    ``tests/fixtures/state_hashes.json`` is (re)generated when a
    predictor's architectural state legitimately changes.
    """
    from repro.sim import simulate

    specs = {entry.name: entry for entry in suite88_specs(args.scale)}
    if args.trace not in specs:
        print(f"unknown trace {args.trace!r}; see `python -m repro suite`",
              file=sys.stderr)
        return 1
    trace = specs[args.trace].generate()
    if args.predictors:
        names = [name.strip() for name in args.predictors.split(",")]
        unknown = [n for n in names if n not in PREDICTOR_REGISTRY]
        if unknown:
            print(f"unknown predictors {unknown}; choose from "
                  f"{', '.join(PREDICTOR_REGISTRY)}", file=sys.stderr)
            return 1
    else:
        names = list(PREDICTOR_REGISTRY)
    hashes: Dict[str, str] = {}
    for name in names:
        predictor = make_indirect(name)
        simulate(predictor, trace)
        hashes[name] = predictor.state_hash()
        print(f"{name:<16} {hashes[name]}")
    if args.out:
        payload = {
            "trace": args.trace,
            "scale": args.scale,
            "records": len(trace),
            "hashes": hashes,
        }
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BLBP reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    suite = sub.add_parser("suite", help="list the 88-workload suite")
    suite.add_argument("--scale", type=float, default=1.0)
    suite.set_defaults(func=_cmd_suite)

    generate = sub.add_parser("generate", help="generate a suite trace")
    generate.add_argument("name", help="suite trace name")
    generate.add_argument("--out", required=True, help="output path")
    generate.add_argument("--scale", type=float, default=1.0)
    generate.set_defaults(func=_cmd_generate)

    stats = sub.add_parser("stats", help="trace statistics")
    stats.add_argument("traces", nargs="+", help="trace files")
    stats.set_defaults(func=_cmd_stats)

    import_cmd = sub.add_parser(
        "import",
        help="ingest an external trace (ChampSim/gem5/CSV) to RPTRACE2",
    )
    import_cmd.add_argument("path", help="input trace file")
    import_cmd.add_argument("--out", required=True,
                            help="output RPTRACE2 spill path")
    import_cmd.add_argument(
        "--format", choices=("rptrace", "csv", "champsim", "gem5"),
        default=None, help="input format (default: auto-detect)",
    )
    import_cmd.add_argument(
        "--name", default=None,
        help="trace name (default: from the file header or filename)",
    )
    import_cmd.set_defaults(func=_cmd_import)

    trace_cmd = sub.add_parser("trace", help="trace utilities")
    trace_sub = trace_cmd.add_subparsers(dest="trace_command", required=True)
    trace_info = trace_sub.add_parser(
        "info",
        help="identity, branch mix, and content hash of trace files",
    )
    trace_info.add_argument("traces", nargs="+", help="trace files")
    trace_info.set_defaults(func=_cmd_trace_info)

    simulate = sub.add_parser("simulate", help="run predictors over traces")
    simulate.add_argument(
        "--predictors", default="BTB,ITTAGE,BLBP",
        help=f"comma list from: {', '.join(PREDICTOR_REGISTRY)}",
    )
    simulate.add_argument("--traces", nargs="*", help="trace files (else suite)")
    simulate.add_argument("--stride", type=int, default=16,
                          help="suite sampling stride (default 16)")
    simulate.add_argument("--scale", type=float, default=1.0)
    simulate.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: REPRO_JOBS env var, else 1)",
    )
    simulate.add_argument(
        "--backend", choices=("scalar", "columnar", "columnar-strict"),
        default=os.environ.get("REPRO_BACKEND", "scalar"),
        help="simulation backend: per-record scalar loop or batched "
             "columnar kernels, results identical; columnar warns and "
             "falls back to scalar for unsupported predictors, "
             "columnar-strict errors instead "
             "(default: REPRO_BACKEND env var, else scalar)",
    )
    simulate.add_argument(
        "--resume", metavar="PATH", default=None,
        help="JSONL journal checkpoint; rerun with the same path to "
             "resume an interrupted campaign",
    )
    simulate.add_argument(
        "--profile", action="store_true",
        help="collect hot-path counters and phase timings; prints an "
             "aggregated per-predictor table after the MPKI results",
    )
    simulate.add_argument(
        "--fuse", action=argparse.BooleanOptionalAction, default=True,
        help="run same-trace cells as one fused pass over the trace "
             "(results identical; --no-fuse restores per-cell passes)",
    )
    simulate.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="snapshot simulation state every N records beside the "
             "--resume journal so a killed worker resumes mid-trace "
             "(default 0 = off)",
    )
    simulate.add_argument(
        "--nodes", type=int, default=None, metavar="N",
        help="distribute the campaign across N local worker nodes "
             "(repro.dist; journals stay byte-identical to --jobs runs)",
    )
    simulate.add_argument(
        "--dry-run", action="store_true",
        help="print the campaign plan (cells, fusion groups, distinct "
             "traces, estimated spill bytes) and exit without simulating",
    )
    simulate.add_argument(
        "--sample", type=int, default=0, metavar="N",
        help="SimPoint-style sampled simulation: estimate each trace's "
             "MPKI from at most N representative regions instead of a "
             "full replay (default 0 = full replay)",
    )
    simulate.add_argument(
        "--sample-interval", type=int, default=5000, metavar="M",
        help="records per sampling interval for --sample (default 5000)",
    )
    simulate.add_argument(
        "--sample-warmup", type=int, default=1, metavar="K",
        help="warm-up intervals replayed (untallied) before each "
             "sampled region (default 1)",
    )
    simulate.add_argument(
        "--sample-checkpoints", metavar="DIR", default=None,
        help="cache per-region warm-up state as simulation checkpoints "
             "in DIR; later --sample runs skip the warm-up replay",
    )
    simulate.set_defaults(func=_cmd_simulate)

    search = sub.add_parser(
        "search", help="design-space search over BLBP configurations"
    )
    search.add_argument(
        "--strategy", default="hillclimb",
        choices=("hillclimb", "random", "grid", "sha"),
        help="batch-proposing strategy (default hillclimb)",
    )
    search.add_argument(
        "--budget", type=int, default=24,
        help="total candidate evaluations (default 24)",
    )
    search.add_argument(
        "--batch", type=int, default=4,
        help="candidates proposed per generation (default 4)",
    )
    search.add_argument(
        "--space", default="intervals",
        choices=("default", "sizing", "intervals", "toggles"),
        help="parameter space (default intervals; grid needs an "
             "enumerable space such as sizing)",
    )
    search.add_argument("--seed", type=int, default=0x5EA8C4,
                        help="strategy RNG seed")
    search.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: REPRO_JOBS env var, else 1)",
    )
    search.add_argument(
        "--backend", choices=("scalar", "columnar", "columnar-strict"),
        default=os.environ.get("REPRO_BACKEND", "scalar"),
        help="simulation backend for candidate scoring; columnar-strict "
             "errors on any candidate the kernels cannot replay "
             "(default: REPRO_BACKEND env var, else scalar)",
    )
    search.add_argument(
        "--resume", metavar="PATH", default=None,
        help="JSONL search journal; rerun with the same path to resume "
             "without re-evaluating journaled candidates",
    )
    search.add_argument("--traces", nargs="*",
                        help="tuning trace files (else suite sample)")
    search.add_argument("--stride", type=int, default=16,
                        help="suite sampling stride (default 16)")
    search.add_argument("--scale", type=float, default=1.0)
    search.add_argument("--top", type=int, default=10,
                        help="leaderboard rows to print (default 10)")
    search.add_argument(
        "--out", metavar="DIR", default=None,
        help="write leaderboard.json + leaderboard.md into DIR",
    )
    search.add_argument(
        "--nodes", type=int, default=None, metavar="N",
        help="score candidate generations across N local worker nodes",
    )
    search.add_argument(
        "--dry-run", action="store_true",
        help="print the per-generation campaign plan and exit without "
             "searching",
    )
    search.set_defaults(func=_cmd_search)

    validate = sub.add_parser(
        "validate", help="check traces against the workload contract"
    )
    validate.add_argument("--traces", nargs="*", help="trace files (else suite)")
    validate.add_argument("--stride", type=int, default=16)
    validate.add_argument("--scale", type=float, default=1.0)
    validate.set_defaults(func=_cmd_validate)

    budgets = sub.add_parser("budgets", help="hardware budgets (Table 2)")
    budgets.add_argument("--details", action="store_true")
    budgets.set_defaults(func=_cmd_budgets)

    registry = sub.add_parser(
        "registry",
        help="list registered predictor keys + config fingerprints",
    )
    registry.add_argument("--json", action="store_true",
                          help="machine-readable output")
    registry.set_defaults(func=_cmd_registry)

    serve = sub.add_parser(
        "serve", help="run the prediction server (repro.serve)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (default 0 = ephemeral, printed)")
    serve.add_argument(
        "--state-dir", default="serve-state",
        help="directory for session checkpoints (eviction + drain)",
    )
    serve.add_argument(
        "--max-resident", type=int, default=1024,
        help="resident-session cap; LRU sessions beyond it are "
             "checkpointed to --state-dir (default 1024)",
    )
    serve.add_argument(
        "--batch-window", type=float, default=0.002, metavar="SECONDS",
        help="micro-batch coalescing window (default 0.002)",
    )
    serve.add_argument(
        "--batch-max-events", type=int, default=8192,
        help="event count that triggers an early batch drain",
    )
    serve.add_argument(
        "--workers", type=int, default=4,
        help="shard batchers; sessions hash-shard across them (default 4)",
    )
    serve.add_argument("--ras-depth", type=int, default=32)
    serve.set_defaults(func=_cmd_serve)

    nodes = sub.add_parser(
        "nodes", help="probe distributed worker nodes (repro.dist)"
    )
    nodes.add_argument(
        "--nodes", type=int, default=None, metavar="N",
        help="local worker nodes to spawn and probe "
             "(default: REPRO_NODES env var, else 2)",
    )
    nodes.add_argument(
        "--ssh", metavar="HOSTS", default=None,
        help="probe SSH nodes instead: comma-separated host list",
    )
    nodes.add_argument(
        "--template", default=None,
        help="launch command template for --ssh "
             "(placeholders: {host} {python} {node})",
    )
    nodes.add_argument(
        "--python", default="python3",
        help="remote python for --ssh templates (default python3)",
    )
    nodes.set_defaults(func=_cmd_nodes)

    statehash = sub.add_parser(
        "statehash",
        help="canonical post-simulation predictor state hashes",
    )
    statehash.add_argument(
        "--predictors", default=None,
        help=f"comma list from: {', '.join(PREDICTOR_REGISTRY)} "
             "(default: all)",
    )
    statehash.add_argument("--trace", default=STATEHASH_TRACE,
                           help="suite trace name (default: the fixture's)")
    statehash.add_argument("--scale", type=float, default=STATEHASH_SCALE,
                           help="suite scale (default: the fixture's)")
    statehash.add_argument(
        "--out", metavar="PATH", default=None,
        help="also write hashes as a JSON fixture "
             "(tests/fixtures/state_hashes.json)",
    )
    statehash.set_defaults(func=_cmd_statehash)

    report = sub.add_parser(
        "report", help="run the evaluation and write a markdown report"
    )
    report.add_argument("--out", default="results/report.md")
    report.add_argument("--scale", type=float, default=0.5)
    report.add_argument("--stride", type=int, default=8)
    report.set_defaults(func=_cmd_report)

    return parser


def main(argv: List[str] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ColumnarUnsupportedError as exc:
        # --backend columnar-strict refused to fall back; surface the
        # kernel's actionable reason instead of a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
