"""The distributed job protocol: newline-delimited JSON over a stream.

One message per line, UTF-8 JSON, ``\\n``-terminated, with a ``"t"``
type tag — the same framing discipline as the serve wire protocol
(:mod:`repro.serve.protocol`), reused here for the coordinator ↔ worker
job channel.  The transport is any byte stream: a TCP socket
(:class:`~repro.dist.pool.NodePool`) or a launched process's
stdin/stdout (:class:`~repro.dist.pool.SSHPool`); the protocol is
identical on both.

Coordinator → worker requests:

* ``{"t": "hello", "protocol": 1}`` — handshake.
* ``{"t": "ping"}`` — liveness probe (``repro nodes``).
* ``{"t": "has_trace", "hash": h}`` — is spill ``h`` in the node's
  content-addressed store?
* ``{"t": "put_trace", "hash": h, "data": b64, "last": bool}`` — ship
  one chunk of a spill file; ``last`` completes (and verifies) it.
* ``{"t": "run_unit", "cells": [...], "fused": bool, "timeout": s}`` —
  execute one scheduling unit (a solo cell or a fused group).
* ``{"t": "stats"}`` — worker statistics.
* ``{"t": "shutdown"}`` — finish and exit.

Worker → coordinator responses:

* ``{"t": "welcome", "protocol": 1, "node": id, "pid": n, "cpus": n}``
* ``{"t": "pong"}``
* ``{"t": "trace_state", "hash": h, "present": bool, "bytes": n}``
* per ``run_unit``: one ``{"t": "cell_done", "index": i, "result":
  {...}, "duration": s}`` per member cell (in member order), then
  ``{"t": "unit_done", "cells": n}``; or ``{"t": "unit_failed",
  "message": m}`` when the unit raised (the coordinator owns retries).
* ``{"t": "stats", ...}`` / ``{"t": "bye"}`` / ``{"t": "error", ...}``

Cells travel as plain dicts (:func:`cell_to_wire` /
:func:`cell_from_wire`): the trace is referenced **by content hash**
(resolved against the node's :class:`~repro.dist.store.TraceStore`, so
each distinct spill crosses the wire at most once per node), and the
factory travels as its ``module:qualname`` string when importable or a
base64 pickle otherwise.  Results reuse the journal serialization
(:func:`repro.exec.journal.result_to_json`), which is what keeps a
merged distributed journal byte-identical to a single-node one.
"""

from __future__ import annotations

import base64
import pickle
from typing import Any, Dict, List, Optional

from repro.exec.plan import CellSpec, FactoryRef, PlanError

# The framing (compact-JSON encode, type-tag-validating decode) is the
# serve protocol's, verbatim — one wire discipline across subsystems.
from repro.serve.protocol import ProtocolError as _FramingError
from repro.serve.protocol import decode as _decode
from repro.serve.protocol import encode  # noqa: F401  (re-exported)

#: Version of the job protocol; sent in ``welcome`` and checked by the
#: coordinator.  Bump only for changes that break existing workers.
PROTOCOL_VERSION = 1

#: Spill bytes shipped per ``put_trace`` chunk (base64 inflates by 4/3,
#: keeping encoded lines well under the serve layer's 4 MiB line cap).
TRACE_CHUNK_BYTES = 1 << 20


class DistProtocolError(ValueError):
    """A malformed or out-of-contract job-protocol message."""


def decode(line: bytes) -> Dict[str, Any]:
    """Decode one job-protocol line (serve framing, dist error type)."""
    try:
        return _decode(line)
    except _FramingError as exc:
        raise DistProtocolError(str(exc)) from exc


def factory_to_wire(factory: FactoryRef) -> Dict[str, str]:
    """A :class:`FactoryRef` as a wire dict (dotted path or pickle)."""
    if factory.dotted is not None:
        return {"dotted": factory.dotted}
    try:
        blob = pickle.dumps(factory.obj)
    except Exception as exc:  # noqa: BLE001 - pickle raises many types
        raise DistProtocolError(
            f"factory cannot cross the node boundary: {exc!r}"
        ) from exc
    return {"pickle": base64.b64encode(blob).decode("ascii")}


def factory_from_wire(payload: Dict[str, str]) -> FactoryRef:
    """Rebuild a :class:`FactoryRef` from :func:`factory_to_wire`."""
    if not isinstance(payload, dict):
        raise DistProtocolError(f"factory must be an object, got {payload!r}")
    if "dotted" in payload:
        return FactoryRef(dotted=payload["dotted"])
    if "pickle" in payload:
        try:
            obj = pickle.loads(base64.b64decode(payload["pickle"]))
        except Exception as exc:  # noqa: BLE001
            raise DistProtocolError(
                f"factory pickle failed to load: {exc!r}"
            ) from exc
        return FactoryRef(obj=obj)
    raise DistProtocolError("factory needs a 'dotted' or 'pickle' key")


def cell_to_wire(spec: CellSpec, trace_hash: str) -> Dict[str, Any]:
    """A :class:`CellSpec` as a wire dict, trace referenced by hash."""
    return {
        "index": spec.index,
        "trace": spec.trace_name,
        "predictor": spec.predictor_name,
        "hash": trace_hash,
        "factory": factory_to_wire(spec.factory),
        "ras_depth": spec.ras_depth,
        "warmup": spec.warmup_records,
        "records": spec.records,
        "profile": bool(spec.profile),
        "checkpoint_every": spec.checkpoint_every,
        "backend": spec.backend,
    }


def cell_from_wire(
    payload: Dict[str, Any],
    trace_path: str,
    checkpoint_path: Optional[str] = None,
) -> CellSpec:
    """Rebuild a :class:`CellSpec` against node-local paths.

    ``trace_path`` is the node's content-addressed store path for the
    cell's trace hash; ``checkpoint_path`` a node-local file when
    mid-trace checkpointing is on.
    """
    try:
        return CellSpec(
            index=int(payload["index"]),
            trace_name=str(payload["trace"]),
            predictor_name=str(payload["predictor"]),
            trace_path=trace_path,
            factory=factory_from_wire(payload["factory"]),
            ras_depth=int(payload.get("ras_depth", 32)),
            warmup_records=int(payload.get("warmup", 0)),
            records=int(payload.get("records", 0)),
            profile=bool(payload.get("profile", False)),
            checkpoint_every=int(payload.get("checkpoint_every", 0)),
            checkpoint_path=checkpoint_path,
            backend=str(payload.get("backend", "scalar")),
        )
    except (KeyError, TypeError, ValueError, PlanError) as exc:
        raise DistProtocolError(f"malformed wire cell: {exc!r}") from exc


def require_hash(message: Dict[str, Any]) -> str:
    """Extract and validate the ``hash`` field of a trace message."""
    value = message.get("hash")
    if not isinstance(value, str) or not value:
        raise DistProtocolError("message needs a non-empty string 'hash'")
    if len(value) > 128 or not all(c in "0123456789abcdef" for c in value):
        raise DistProtocolError(f"implausible content hash {value!r}")
    return value


def chunk_data(message: Dict[str, Any]) -> bytes:
    """Decode the base64 ``data`` field of a ``put_trace`` chunk."""
    raw = message.get("data", "")
    if not isinstance(raw, str):
        raise DistProtocolError("'data' must be a base64 string")
    try:
        return base64.b64decode(raw, validate=True)
    except Exception as exc:  # noqa: BLE001 - binascii.Error et al.
        raise DistProtocolError(f"undecodable chunk data: {exc}") from exc


def error_message(error: str, **extra: Any) -> Dict[str, Any]:
    """Build an ``error`` response."""
    message: Dict[str, Any] = {"t": "error", "error": error}
    message.update(extra)
    return message


def unit_to_wire(
    cells: List[Dict[str, Any]],
    fused: bool,
    timeout: Optional[float],
) -> Dict[str, Any]:
    """Build a ``run_unit`` request."""
    return {
        "t": "run_unit",
        "cells": cells,
        "fused": bool(fused),
        **({"timeout": timeout} if timeout else {}),
    }


__all__ = [
    "DistProtocolError",
    "PROTOCOL_VERSION",
    "TRACE_CHUNK_BYTES",
    "cell_from_wire",
    "cell_to_wire",
    "chunk_data",
    "decode",
    "encode",
    "error_message",
    "factory_from_wire",
    "factory_to_wire",
    "require_hash",
    "unit_to_wire",
]
