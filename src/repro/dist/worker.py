"""The distributed worker: one node of a campaign pool.

``python -m repro.dist.worker`` runs a single-threaded job loop
speaking the :mod:`repro.dist.protocol` over one of two transports:

* ``--port N`` — listen on a TCP socket (``0`` = ephemeral) and accept
  one coordinator connection.  The chosen address is announced on
  stdout as ``dist worker listening on HOST:PORT`` — the line
  :class:`~repro.dist.pool.NodePool` parses after spawning the process.
* ``--stdio`` — speak the protocol over stdin/stdout.  This is the SSH
  transport: ``ssh host python -m repro.dist.worker --stdio`` gives the
  coordinator a remote worker with zero listening ports, and the CI
  shim runs the identical command locally.

Received spills live in a content-addressed :class:`TraceStore`
(``--store``, default a fresh temporary directory), so repeated
campaigns against a long-lived worker never re-ship a trace.  Finished
cell results are likewise cached in memory, keyed by ``(trace content
hash, factory fingerprint, replay parameters)``, so repeated search
generations (or retried units) never re-simulate an identical cell on
the same node — fused units serve cached members and run only the
remainder.  Cells
execute through the *same* entry points the in-process pool uses —
:func:`repro.exec.pool.run_cell` / :func:`run_fused_cell` — which is
what keeps distributed results (and therefore merged journals)
bit-identical to local execution: there is exactly one execution path.

The loop is deliberately synchronous: jobs run on the main thread so
the per-cell ``SIGALRM`` deadline machinery works unchanged, and the
coordinator owns all retry/reschedule policy — a worker that hits an
error reports ``unit_failed`` and keeps serving.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import socket
import sys
import tempfile
import time
import uuid
from collections import OrderedDict
from pathlib import Path
from typing import Any, BinaryIO, Dict, List, Optional, Tuple

from repro.dist import protocol
from repro.dist.store import StoreError, TraceStore
from repro.exec.journal import result_to_json
from repro.exec.plan import CellSpec, FusedCellSpec, checkpoint_name
from repro.exec.pool import run_cell, run_fused_cell
from repro.sim.metrics import SimulationResult

#: Upper bound on one received protocol line (mirrors the serve limit;
#: trace chunks are the largest messages and stay well under this).
MAX_LINE_BYTES = 8 * 1024 * 1024

#: Bound on the worker's in-memory result cache (entries, LRU).  Results
#: are tiny (a handful of counters plus an optional per-PC dict), so the
#: cap is about predictability, not memory pressure.
RESULT_CACHE_CAPACITY = 1024


def _cell_cache_key(raw: Dict[str, Any]) -> Optional[Tuple[str, ...]]:
    """Cache identity of a wire cell, or ``None`` if uncacheable.

    Keyed by everything that determines the cell's result: the trace
    *content* hash, the factory fingerprint (its canonical wire form —
    dotted path or pickle payload — which pins the predictor
    configuration), and the replay parameters.  The backend is
    deliberately excluded: scalar and columnar results are bit-identical,
    so a cell simulated under one backend answers for the other.
    Profiled cells (results carry timings) and checkpointed cells
    (mid-trace state on disk) are never cached.
    """
    if bool(raw.get("profile", False)) or int(raw.get("checkpoint_every", 0)):
        return None
    try:
        fingerprint = json.dumps(raw["factory"], sort_keys=True)
    except (KeyError, TypeError, ValueError):
        return None
    return (
        str(raw.get("hash", "")),
        fingerprint,
        str(int(raw.get("ras_depth", 32))),
        str(int(raw.get("warmup", 0))),
    )


class _Disconnect(Exception):
    """The coordinator went away; the worker session is over."""


class DistWorker:
    """One node's job loop over a pair of binary streams."""

    def __init__(
        self,
        reader: BinaryIO,
        writer: BinaryIO,
        store: TraceStore,
        node: Optional[str] = None,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.store = store
        self.node = node or f"node-{uuid.uuid4().hex[:8]}"
        self.cells_run = 0
        self.units_run = 0
        self.traces_received = 0
        self.cache_hits = 0
        #: LRU of finished cell results keyed by :func:`_cell_cache_key`,
        #: so repeated generations of a search (or retried units) never
        #: re-simulate an identical cell on this node.
        self._results: "OrderedDict[Tuple[str, ...], SimulationResult]" = (
            OrderedDict()
        )

    # -- plumbing ------------------------------------------------------

    def _send(self, message: Dict[str, Any]) -> None:
        try:
            self.writer.write(protocol.encode(message))
            self.writer.flush()
        except (BrokenPipeError, OSError) as exc:
            raise _Disconnect(str(exc)) from exc

    def _recv(self) -> Dict[str, Any]:
        line = self.reader.readline(MAX_LINE_BYTES)
        if not line:
            raise _Disconnect("coordinator closed the stream")
        return protocol.decode(line)

    # -- handlers ------------------------------------------------------

    def _handle_hello(self, message: Dict[str, Any]) -> None:
        self._send(
            {
                "t": "welcome",
                "protocol": protocol.PROTOCOL_VERSION,
                "node": self.node,
                "pid": os.getpid(),
                "cpus": os.cpu_count() or 1,
                "store": str(self.store.root),
            }
        )

    def _handle_has_trace(self, message: Dict[str, Any]) -> None:
        content_hash = protocol.require_hash(message)
        self._send(
            {
                "t": "trace_state",
                "hash": content_hash,
                "present": self.store.has(content_hash),
            }
        )

    def _handle_put_trace(self, message: Dict[str, Any]) -> None:
        content_hash = protocol.require_hash(message)
        data = protocol.chunk_data(message)
        last = bool(message.get("last", True))
        path = self.store.add_chunk(content_hash, data, last)
        if last:
            self.traces_received += 1
            self._send(
                {
                    "t": "trace_state",
                    "hash": content_hash,
                    "present": True,
                    "bytes": path.stat().st_size if path else 0,
                }
            )

    def _build_cells(self, message: Dict[str, Any]) -> List[CellSpec]:
        raw_cells = message.get("cells")
        if not isinstance(raw_cells, list) or not raw_cells:
            raise protocol.DistProtocolError(
                "'cells' must be a non-empty array"
            )
        cells = []
        for raw in raw_cells:
            content_hash = protocol.require_hash(raw)
            trace_path = str(self.store.resolve(content_hash))
            checkpoint_path = None
            if int(raw.get("checkpoint_every", 0)) > 0:
                spec_for_name = protocol.cell_from_wire(raw, trace_path)
                checkpoint_path = str(
                    self.store.checkpoint_dir()
                    / checkpoint_name(spec_for_name)
                )
            cells.append(
                protocol.cell_from_wire(raw, trace_path, checkpoint_path)
            )
        return cells

    def _serve_cached(
        self, spec: CellSpec, cached: SimulationResult
    ) -> SimulationResult:
        """A fresh result copy for ``spec`` from a cached identical cell.

        The cached counters are content-determined; only the display
        identity (trace/predictor names) follows the requesting cell.
        """
        return dataclasses.replace(
            cached,
            trace_name=spec.trace_name,
            predictor_name=spec.predictor_name,
            mispredictions_by_pc=dict(cached.mispredictions_by_pc),
        )

    def _handle_run_unit(self, message: Dict[str, Any]) -> None:
        timeout = message.get("timeout")
        timeout = float(timeout) if timeout else None
        try:
            cells = self._build_cells(message)
            keys = [_cell_cache_key(raw) for raw in message["cells"]]
            outcomes: List[Tuple[int, SimulationResult, float]] = []
            pending: List[Tuple[CellSpec, Optional[Tuple[str, ...]]]] = []
            for spec, key in zip(cells, keys):
                cached = self._results.get(key) if key is not None else None
                if cached is not None:
                    self._results.move_to_end(key)
                    self.cache_hits += 1
                    served = time.perf_counter()
                    result = self._serve_cached(spec, cached)
                    outcomes.append(
                        (spec.index, result, time.perf_counter() - served)
                    )
                else:
                    pending.append((spec, key))
            fused = bool(message.get("fused", False)) and len(pending) > 1
            if fused:
                fresh = run_fused_cell(
                    FusedCellSpec(
                        cells=tuple(spec for spec, _ in pending)
                    ),
                    timeout,
                )
            else:
                fresh = [run_cell(spec, timeout) for spec, _ in pending]
            for (spec, key), (index, result, duration) in zip(
                pending, fresh
            ):
                if key is not None:
                    self._results[key] = result
                    self._results.move_to_end(key)
                    while len(self._results) > RESULT_CACHE_CAPACITY:
                        self._results.popitem(last=False)
                outcomes.append((index, result, duration))
            outcomes.sort(key=lambda outcome: outcome[0])
        except _Disconnect:
            raise
        except BaseException as exc:  # noqa: BLE001 - coordinator retries
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self._send({"t": "unit_failed", "message": repr(exc)})
            return
        for index, result, duration in outcomes:
            self._send(
                {
                    "t": "cell_done",
                    "index": index,
                    "result": result_to_json(result),
                    "duration": duration,
                }
            )
        self.units_run += 1
        self.cells_run += len(outcomes)
        self._send({"t": "unit_done", "cells": len(outcomes)})

    def _handle_stats(self, message: Dict[str, Any]) -> None:
        self._send(
            {
                "t": "stats",
                "node": self.node,
                "units": self.units_run,
                "cells": self.cells_run,
                "traces_received": self.traces_received,
                "traces_stored": len(self.store.stored_hashes()),
                "result_cache_hits": self.cache_hits,
                "result_cache_size": len(self._results),
            }
        )

    # -- loop ----------------------------------------------------------

    def serve(self) -> None:
        """Handle messages until shutdown or disconnect."""
        handlers = {
            "hello": self._handle_hello,
            "has_trace": self._handle_has_trace,
            "put_trace": self._handle_put_trace,
            "run_unit": self._handle_run_unit,
            "stats": self._handle_stats,
        }
        while True:
            try:
                message = self._recv()
            except _Disconnect:
                return
            tag = message["t"]
            if tag == "ping":
                self._send({"t": "pong", "node": self.node})
                continue
            if tag == "shutdown":
                self._send({"t": "bye", "node": self.node})
                return
            handler = handlers.get(tag)
            try:
                if handler is None:
                    raise protocol.DistProtocolError(
                        f"unknown message type {tag!r}"
                    )
                handler(message)
            except _Disconnect:
                return
            except (protocol.DistProtocolError, StoreError) as exc:
                # Contract violations are answerable; the session lives.
                try:
                    self._send(protocol.error_message(str(exc), request=tag))
                except _Disconnect:
                    return


def _serve_stdio(store: TraceStore, node: Optional[str]) -> int:
    worker = DistWorker(
        sys.stdin.buffer, sys.stdout.buffer, store, node=node
    )
    worker.serve()
    return 0


def _serve_socket(
    host: str, port: int, store: TraceStore, node: Optional[str]
) -> int:
    listener = socket.create_server((host, port))
    bound_host, bound_port = listener.getsockname()[:2]
    # Parsed by NodePool right after spawn: keep this line's shape stable.
    print(f"dist worker listening on {bound_host}:{bound_port}", flush=True)
    connection, _ = listener.accept()
    listener.close()
    try:
        reader = connection.makefile("rb")
        writer = connection.makefile("wb")
        worker = DistWorker(reader, writer, store, node=node)
        worker.serve()
    finally:
        connection.close()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.dist.worker",
        description="distributed campaign worker node",
    )
    transport = parser.add_mutually_exclusive_group()
    transport.add_argument(
        "--port", type=int, default=None,
        help="listen on a TCP port (0 = ephemeral, announced on stdout)",
    )
    transport.add_argument(
        "--stdio", action="store_true",
        help="speak the job protocol over stdin/stdout (the SSH transport)",
    )
    parser.add_argument(
        "--store", default=None,
        help="content-addressed trace store directory "
             "(default: a fresh temporary directory)",
    )
    parser.add_argument(
        "--node", default=None,
        help="node identity reported to the coordinator (default: random)",
    )
    args = parser.parse_args(argv)

    store_dir = args.store or tempfile.mkdtemp(prefix="repro-dist-")
    store = TraceStore(Path(store_dir))
    if args.stdio or args.port is None:
        return _serve_stdio(store, args.node)
    return _serve_socket("127.0.0.1", args.port, store, args.node)


if __name__ == "__main__":
    sys.exit(main())
