"""repro.dist — multi-node campaign execution.

The distribution layer scales campaign execution beyond one machine
without changing what a campaign *is*: the same plans, the same fused
scheduling units, the same retry ladder, and — the load-bearing
guarantee — the same journal bytes.  A campaign run on N nodes merges
its per-node journal shards into a canonical journal byte-identical to
a single-node serial run, so resume, golden-journal CI, and every
downstream consumer are oblivious to where the cells actually ran.

Pieces (each its own module):

* :mod:`repro.dist.protocol` — the newline-delimited-JSON job protocol
  (serve-framing discipline; cells travel with traces by content hash);
* :mod:`repro.dist.store` — the node-side content-addressed trace
  store (each distinct spill crosses the wire at most once per node);
* :mod:`repro.dist.worker` — ``python -m repro.dist.worker``, the node
  job loop over TCP (``--port``) or stdio (``--stdio``, the SSH
  transport);
* :mod:`repro.dist.pool` — the :class:`Pool` backends
  (:class:`LocalPool` / :class:`NodePool` / :class:`SSHPool`) and the
  work-stealing scheduler with node-death rescheduling;
* :mod:`repro.dist.merge` — per-node journal shards and the canonical
  byte-identical merge.

Entry points: pass ``pool=`` to :func:`repro.exec.pool.execute_plan`
/ :func:`repro.exec.run_campaign_parallel`, set ``REPRO_NODES=n``,
or use ``repro simulate --nodes n`` / ``repro search --nodes n`` /
``repro nodes`` from the CLI.  See ``docs/distributed.md``.

Trace provenance (:mod:`repro.trace.source`) is resolved entirely
coordinator-side: lazy sources — workload specs, ingested files,
sampled views — materialize once at plan time into RPTRACE2 spills,
and only those spills ship to nodes, content-hash keyed as ever.
Workers never see a source, so distributing an ingested or sampled
campaign requires no new protocol and changes no journal bytes.
"""

from repro.dist.merge import (
    ShardedJournal,
    canonical_journal_bytes,
    load_shards,
    merge_journals,
    parse_shard_lines,
    shards_dir,
    write_canonical_journal,
)
from repro.dist.pool import (
    NODES_ENV,
    LocalPool,
    NodeError,
    NodePool,
    Pool,
    PoolError,
    SSHPool,
    resolve_pool,
)
from repro.dist.protocol import PROTOCOL_VERSION, DistProtocolError
from repro.dist.store import StoreError, TraceStore, trace_file_hash

__all__ = [
    "DistProtocolError",
    "LocalPool",
    "NODES_ENV",
    "NodeError",
    "NodePool",
    "PROTOCOL_VERSION",
    "Pool",
    "PoolError",
    "SSHPool",
    "ShardedJournal",
    "StoreError",
    "TraceStore",
    "canonical_journal_bytes",
    "load_shards",
    "merge_journals",
    "parse_shard_lines",
    "resolve_pool",
    "shards_dir",
    "trace_file_hash",
    "write_canonical_journal",
]
