"""Node-side content-addressed storage for shipped trace spills.

Every worker node keeps received ``RPTRACE2`` spills in one directory,
keyed by content hash — ``<store>/<hash>.trace``.  Content addressing is
what makes trace shipping dedup-free by construction:

* the coordinator asks ``has_trace`` before shipping, so a spill that
  reached the node in *any* earlier campaign is never re-sent;
* two plan cells (or two whole campaigns) whose traces are identical
  resolve to one file, however they were named;
* a partially received spill is invisible — chunks accumulate in a
  ``.partial`` sibling and the final file appears atomically, verified
  against its hash, so a coordinator killed mid-ship can simply re-send.

The store also hands out node-local mid-trace checkpoint paths
(``<store>/ckpt/``), keeping every file a worker writes under one
disposable root.
"""

from __future__ import annotations

import hashlib
import shutil
from pathlib import Path
from typing import Dict, Optional, Union

from repro.trace.plane import atomic_write_bytes, spilled_hash


class StoreError(RuntimeError):
    """A spill could not be stored or verified."""


def trace_file_hash(path: Union[str, Path]) -> str:
    """The content hash identifying a spill file for shipping.

    ``RPTRACE2`` spills carry their content hash in the header (one
    header read); anything else — legacy ``RPTRACE1`` archives — falls
    back to a SHA-256 of the file bytes, which is equally stable, just
    not free.
    """
    recorded = spilled_hash(path)
    if recorded:
        return recorded
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


class TraceStore:
    """A directory of spill files keyed by content hash."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: hash → accumulated chunks of an in-flight ``put_trace``.
        self._partial: Dict[str, bytearray] = {}

    def path_for(self, content_hash: str) -> Path:
        return self.root / f"{content_hash}.trace"

    def checkpoint_dir(self) -> Path:
        path = self.root / "ckpt"
        path.mkdir(parents=True, exist_ok=True)
        return path

    def has(self, content_hash: str) -> bool:
        return self.path_for(content_hash).exists()

    def resolve(self, content_hash: str) -> Path:
        """The on-disk path for ``content_hash``; raises when absent."""
        path = self.path_for(content_hash)
        if not path.exists():
            raise StoreError(f"trace {content_hash} not in store {self.root}")
        return path

    def add_chunk(
        self, content_hash: str, data: bytes, last: bool
    ) -> Optional[Path]:
        """Accumulate one shipped chunk; publish the file on ``last``.

        Returns the stored path once complete, ``None`` while partial.
        A completed spill is verified — its own recorded (or computed)
        hash must equal the key it was shipped under — so a corrupted
        transfer can never poison the store.
        """
        if self.has(content_hash):
            # Already present (e.g. a concurrent campaign shipped it);
            # drop the redundant bytes but honour the exchange.
            self._partial.pop(content_hash, None)
            return self.path_for(content_hash) if last else None
        buffer = self._partial.setdefault(content_hash, bytearray())
        buffer.extend(data)
        if not last:
            return None
        del self._partial[content_hash]
        path = self.path_for(content_hash)
        atomic_write_bytes(path, bytes(buffer))
        stored = trace_file_hash(path)
        if stored != content_hash:
            path.unlink(missing_ok=True)
            raise StoreError(
                f"shipped trace hash mismatch: expected {content_hash}, "
                f"stored bytes hash to {stored}"
            )
        return path

    def ingest(self, source: Union[str, Path]) -> Path:
        """Copy a local spill file into the store (tests, local shims)."""
        content_hash = trace_file_hash(source)
        path = self.path_for(content_hash)
        if not path.exists():
            atomic_write_bytes(path, Path(source).read_bytes())
        return path

    def stored_hashes(self) -> list:
        return sorted(
            entry.stem for entry in self.root.glob("*.trace")
        )

    def clear(self) -> None:
        shutil.rmtree(self.root, ignore_errors=True)
        self.root.mkdir(parents=True, exist_ok=True)
        self._partial.clear()


__all__ = ["StoreError", "TraceStore", "trace_file_hash"]
