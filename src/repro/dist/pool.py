"""Campaign pools: local processes, socket worker nodes, SSH nodes.

A :class:`Pool` is *where cells run*.  The execution engine
(:func:`repro.exec.pool.execute_plan`) plans, journals, retries, and
merges exactly as before; a pool only takes the planned execution units
and brings the results back:

* :class:`LocalPool` — today's in-process / ``ProcessPoolExecutor``
  path behind the interface, behavior-preserving to the byte;
* :class:`NodePool` — N spawned worker processes
  (``python -m repro.dist.worker --port 0``), each speaking the
  newline-delimited-JSON job protocol over its own TCP socket;
* :class:`SSHPool` — the same worker protocol over stdin/stdout of a
  process launched from a configurable command template (``ssh {host}
  …`` in production; CI exercises the identical code with a localhost
  shim template).

The distributed scheduler shards units across nodes work-stealing
style (one coordinator thread per node pulls from a shared queue), so
a fast node takes more of the campaign.  Traces ship by content hash
into each node's :class:`~repro.dist.store.TraceStore` — at most one
transfer per (trace, node) per campaign, and zero when the node already
holds the hash from an earlier run.  A node that dies mid-unit is
announced (``node_down``), its in-flight unit reschedules on surviving
nodes without charging the cells' retry budget, and a pool whose nodes
are *all* gone degrades to in-process serial execution — the same
never-fail ladder the process pool has always had.
"""

from __future__ import annotations

import dataclasses
import os
import shlex
import socket
import subprocess
import sys
import threading
import time
from abc import ABC, abstractmethod
from collections import deque
from pathlib import Path
from typing import Any, BinaryIO, Dict, List, Optional, Sequence, Tuple, Union

from repro.dist import protocol
from repro.dist.store import trace_file_hash
from repro.exec.events import (
    CELL_FAILED,
    CELL_RETRY,
    CELL_START,
    FALLBACK,
    NODE_DOWN,
    NODE_UP,
)
from repro.exec.journal import result_from_json
from repro.exec.plan import CellSpec, ExecutionUnit, FusedCellSpec
from repro.exec.pool import CellFailedError, _PoolDegraded

#: Maximum bytes of one protocol line read from a node.
MAX_LINE_BYTES = 8 * 1024 * 1024

#: Seconds to wait for a spawned local worker to announce its port.
SPAWN_TIMEOUT = 30.0


class PoolError(RuntimeError):
    """A pool could not be constructed or probed."""


class NodeError(RuntimeError):
    """A worker node died or broke protocol; its work reschedules."""


class _UnitFailed(Exception):
    """A node reported the unit raised; the coordinator owns retries."""

    def __init__(self, message: str):
        super().__init__(message)
        self.message = message


class Pool(ABC):
    """Where campaign cells execute.  See module docstring."""

    #: Local pools keep the classic coordinator-side behavior
    #: (mid-trace checkpoint files, plain journal); distributed pools
    #: journal into per-node shards and canonicalize on completion.
    local = False
    name = "pool"

    @abstractmethod
    def execute(
        self,
        state,
        units: Sequence[ExecutionUnit],
        *,
        timeout: Optional[float] = None,
        retries: int = 2,
        backoff: float = 0.1,
        checkpoint_every: int = 0,
    ) -> None:
        """Run ``units``, recording outcomes into ``state``.

        Raises :class:`repro.exec.pool._PoolDegraded` when the pool
        itself (not a cell) is unusable — the executor then finishes the
        remaining cells serially in-process.
        """

    @abstractmethod
    def describe(self) -> List[Dict[str, Any]]:
        """One probe row per node (``repro nodes``)."""

    def close(self) -> None:
        """Release workers/connections; idempotent."""

    def __enter__(self) -> "Pool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class LocalPool(Pool):
    """The single-machine path behind the :class:`Pool` interface.

    ``LocalPool(jobs=n)`` is exactly ``execute_plan(jobs=n)``: serial
    in-process execution for ``jobs == 1``, the
    ``ProcessPoolExecutor`` scheduler otherwise — same events, same
    journal bytes, same fallback ladder.
    """

    local = True
    name = "local"

    def __init__(self, jobs: Optional[int] = None) -> None:
        from repro.exec import resolve_jobs

        self.jobs = resolve_jobs(jobs)

    def execute(
        self,
        state,
        units: Sequence[ExecutionUnit],
        *,
        timeout: Optional[float] = None,
        retries: int = 2,
        backoff: float = 0.1,
        checkpoint_every: int = 0,
    ) -> None:
        from repro.exec.pool import _run_parallel, _run_serial

        units = list(units)
        if self.jobs == 1:
            _run_serial(state, units, timeout, retries, backoff)
        else:
            _run_parallel(state, units, self.jobs, timeout, retries, backoff)

    def describe(self) -> List[Dict[str, Any]]:
        return [
            {
                "node": "local",
                "transport": "process-pool",
                "pid": os.getpid(),
                "cpus": os.cpu_count() or 1,
                "jobs": self.jobs,
            }
        ]


# -- coordinator-side node handle -------------------------------------


class _NodeClient:
    """The coordinator's handle for one worker node."""

    def __init__(
        self,
        reader: BinaryIO,
        writer: BinaryIO,
        transport: str,
        process: Optional[subprocess.Popen] = None,
        sock: Optional[socket.socket] = None,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.transport = transport
        self.process = process
        self.sock = sock
        self.dead = False
        #: Content hashes this node is known to hold.
        self.shipped: set = set()
        #: hash → put_trace transfers this campaign (dedup accounting).
        self.transfers: Dict[str, int] = {}
        self.node = ""
        self.pid = 0
        self.cpus = 0
        self._handshake()

    # -- wire ----------------------------------------------------------

    def _send(self, message: Dict[str, Any]) -> None:
        try:
            self.writer.write(protocol.encode(message))
            self.writer.flush()
        except (BrokenPipeError, OSError, ValueError) as exc:
            raise NodeError(f"node {self.node or '?'} send failed: {exc}")

    def _recv(self) -> Dict[str, Any]:
        try:
            line = self.reader.readline(MAX_LINE_BYTES)
        except (OSError, ValueError) as exc:
            raise NodeError(f"node {self.node or '?'} read failed: {exc}")
        if not line:
            raise NodeError(f"node {self.node or '?'} closed the stream")
        try:
            return protocol.decode(line)
        except protocol.DistProtocolError as exc:
            raise NodeError(f"node {self.node or '?'} broke protocol: {exc}")

    def _expect(self, tag: str) -> Dict[str, Any]:
        message = self._recv()
        if message["t"] == "error":
            raise NodeError(
                f"node {self.node or '?'} error: {message.get('error')}"
            )
        if message["t"] != tag:
            raise NodeError(
                f"node {self.node or '?'} sent {message['t']!r}, "
                f"expected {tag!r}"
            )
        return message

    def _handshake(self) -> None:
        self._send({"t": "hello", "protocol": protocol.PROTOCOL_VERSION})
        welcome = self._expect("welcome")
        if welcome.get("protocol") != protocol.PROTOCOL_VERSION:
            raise NodeError(
                f"worker speaks protocol {welcome.get('protocol')!r}, "
                f"coordinator speaks {protocol.PROTOCOL_VERSION}"
            )
        self.node = str(welcome.get("node", ""))
        self.pid = int(welcome.get("pid", 0) or 0)
        self.cpus = int(welcome.get("cpus", 0) or 0)

    # -- operations ----------------------------------------------------

    def ensure_trace(self, content_hash: str, path: str) -> None:
        """Make ``content_hash`` resident on the node (ship at most once)."""
        if content_hash in self.shipped:
            return
        self._send({"t": "has_trace", "hash": content_hash})
        state = self._expect("trace_state")
        if not state.get("present"):
            import base64

            data = Path(path).read_bytes()
            chunk = protocol.TRACE_CHUNK_BYTES
            offsets = range(0, len(data), chunk) if data else [0]
            for offset in offsets:
                piece = data[offset:offset + chunk]
                self._send(
                    {
                        "t": "put_trace",
                        "hash": content_hash,
                        "data": base64.b64encode(piece).decode("ascii"),
                        "last": offset + chunk >= len(data),
                    }
                )
            self._expect("trace_state")
            self.transfers[content_hash] = (
                self.transfers.get(content_hash, 0) + 1
            )
        self.shipped.add(content_hash)

    def run_unit(
        self,
        wire_cells: List[Dict[str, Any]],
        fused: bool,
        timeout: Optional[float],
    ) -> List[Tuple[int, Any, float]]:
        """Execute one unit; returns ``(index, result, duration)`` rows.

        Raises :class:`_UnitFailed` for worker-reported cell failures
        (retryable at the coordinator) and :class:`NodeError` when the
        node itself is gone.
        """
        self._send(protocol.unit_to_wire(wire_cells, fused, timeout))
        outcomes: List[Tuple[int, Any, float]] = []
        while True:
            message = self._recv()
            tag = message["t"]
            if tag == "cell_done":
                outcomes.append(
                    (
                        int(message["index"]),
                        result_from_json(message["result"]),
                        float(message.get("duration", 0.0)),
                    )
                )
            elif tag == "unit_done":
                return outcomes
            elif tag == "unit_failed":
                raise _UnitFailed(str(message.get("message", "unit failed")))
            elif tag == "error":
                raise _UnitFailed(str(message.get("error", "node error")))
            else:
                raise NodeError(
                    f"node {self.node} sent {tag!r} during run_unit"
                )

    def ping(self) -> bool:
        self._send({"t": "ping"})
        self._expect("pong")
        return True

    def stats(self) -> Dict[str, Any]:
        self._send({"t": "stats"})
        return self._expect("stats")

    def close(self) -> None:
        if not self.dead:
            try:
                self._send({"t": "shutdown"})
                self._recv()  # bye (best effort)
            except NodeError:
                pass
            self.dead = True
        for stream in (self.writer, self.reader):
            try:
                stream.close()
            except OSError:
                pass
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass
        if self.process is not None:
            try:
                self.process.terminate()
            except OSError:
                pass
            try:
                self.process.wait(timeout=5)
            except (subprocess.TimeoutExpired, OSError):
                try:
                    self.process.kill()
                except OSError:
                    pass


# -- distributed scheduler ---------------------------------------------


class _Scheduler:
    """Shards execution units across node clients, work-stealing style.

    One coordinator thread per node pulls units off a shared queue;
    all mutations of the shared :class:`~repro.exec.pool._Execution`
    state (results, journal shards, events) happen under one lock, so
    the engine's bookkeeping stays single-threaded in effect.
    """

    def __init__(
        self,
        state,
        units: Sequence[ExecutionUnit],
        timeout: Optional[float],
        retries: int,
        backoff: float,
        checkpoint_every: int,
    ) -> None:
        self.state = state
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.checkpoint_every = checkpoint_every
        self.lock = threading.Lock()
        self.queue: deque = deque((unit, 1) for unit in units)
        self.fatal: Optional[BaseException] = None
        self._hashes: Dict[str, str] = {}

    # -- helpers -------------------------------------------------------

    def _members(self, unit: ExecutionUnit) -> Tuple[CellSpec, ...]:
        return unit.cells if isinstance(unit, FusedCellSpec) else (unit,)

    def _trace_hash(self, path: str) -> str:
        if path not in self._hashes:
            self._hashes[path] = trace_file_hash(path)
        return self._hashes[path]

    def _wire_cells(self, unit: ExecutionUnit) -> List[Dict[str, Any]]:
        cells = []
        for spec in self._members(unit):
            wire = protocol.cell_to_wire(
                spec, self._trace_hash(spec.trace_path)
            )
            if self.checkpoint_every and not wire["checkpoint_every"]:
                wire["checkpoint_every"] = self.checkpoint_every
            cells.append(wire)
        return cells

    def _emit_start(
        self, unit: ExecutionUnit, attempt: int, node: str
    ) -> None:
        fused = isinstance(unit, FusedCellSpec)
        for spec in self._members(unit):
            self.state.emit(
                CELL_START,
                trace=spec.trace_name,
                predictor=spec.predictor_name,
                index=spec.index,
                completed=self.state.completed,
                attempt=attempt,
                group=unit.size if fused else 0,
                node=node,
            )

    def _label(self, unit: ExecutionUnit) -> str:
        if isinstance(unit, FusedCellSpec):
            return "+".join(s.predictor_name for s in unit.cells)
        return unit.predictor_name

    # -- outcome handling ----------------------------------------------

    def _record(self, unit, outcomes, node: str) -> None:
        by_index = {
            index: (result, duration) for index, result, duration in outcomes
        }
        with self.lock:
            for spec in self._members(unit):
                if spec.index not in by_index:
                    # A node acknowledged the unit without all members —
                    # treat as a unit failure so the cells re-run.
                    raise _UnitFailed(
                        f"node {node} returned {len(by_index)} of "
                        f"{len(self._members(unit))} unit cells"
                    )
            for spec in self._members(unit):
                result, duration = by_index[spec.index]
                result = dataclasses.replace(result, node=node)
                self.state.record(spec, result, duration, node=node)

    def _handle_failure(
        self, unit: ExecutionUnit, attempt: int, failure: _UnitFailed
    ) -> None:
        fused = isinstance(unit, FusedCellSpec)
        first = self._members(unit)[0]
        if attempt <= self.retries:
            with self.lock:
                self.state.retries += 1
                self.state.emit(
                    CELL_RETRY,
                    trace=unit.trace_name,
                    predictor=self._label(unit),
                    index=first.index,
                    attempt=attempt,
                    group=unit.size if fused else 0,
                    message=failure.message,
                )
            time.sleep(self.backoff * attempt)
            with self.lock:
                self.queue.append((unit, attempt + 1))
            return
        if fused:
            with self.lock:
                self.state.emit(
                    FALLBACK,
                    message=(
                        f"fused group of {unit.size} on {unit.trace_name!r} "
                        f"failed after {attempt} attempt(s): "
                        f"{failure.message}; re-running its cells unfused"
                    ),
                )
                self.queue.extend((spec, 1) for spec in unit.cells)
            return
        with self.lock:
            self.state.emit(
                CELL_FAILED,
                trace=unit.trace_name,
                predictor=unit.predictor_name,
                index=unit.index,
                attempt=attempt,
                message=failure.message,
            )
            self.fatal = CellFailedError(
                unit.key, attempt, RuntimeError(failure.message)
            )

    # -- node loop -----------------------------------------------------

    def drive(self, client: _NodeClient) -> None:
        """Pull and execute units on ``client`` until work or node ends."""
        while True:
            with self.lock:
                if self.fatal is not None or not self.queue:
                    return
                unit, attempt = self.queue.popleft()
            try:
                for spec in self._members(unit):
                    client.ensure_trace(
                        self._trace_hash(spec.trace_path), spec.trace_path
                    )
                with self.lock:
                    self._emit_start(unit, attempt, client.node)
                outcomes = client.run_unit(
                    self._wire_cells(unit),
                    fused=isinstance(unit, FusedCellSpec),
                    timeout=self.timeout,
                )
                self._record(unit, outcomes, client.node)
            except _UnitFailed as failure:
                self._handle_failure(unit, attempt, failure)
            except NodeError as exc:
                client.dead = True
                with self.lock:
                    # The node, not the cells, failed: reschedule the
                    # unit elsewhere without charging its retry budget.
                    self.queue.appendleft((unit, attempt))
                    self.state.emit(
                        NODE_DOWN, node=client.node, message=str(exc)
                    )
                return

    def run(self, clients: Sequence[_NodeClient]) -> None:
        threads = [
            threading.Thread(
                target=self.drive, args=(client,), daemon=True,
                name=f"repro-dist-{client.node}",
            )
            for client in clients
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if self.fatal is not None:
            raise self.fatal
        if self.queue:
            raise _PoolDegraded(
                "all worker nodes died with campaign cells pending"
            )


class _RemotePool(Pool):
    """Shared machinery of the socket and SSH backends."""

    def __init__(self) -> None:
        self._clients: List[_NodeClient] = []

    @property
    def nodes(self) -> List[_NodeClient]:
        return self._clients

    def _live(self) -> List[_NodeClient]:
        return [client for client in self._clients if not client.dead]

    def execute(
        self,
        state,
        units: Sequence[ExecutionUnit],
        *,
        timeout: Optional[float] = None,
        retries: int = 2,
        backoff: float = 0.1,
        checkpoint_every: int = 0,
    ) -> None:
        clients = self._live()
        if not clients:
            raise _PoolDegraded(f"{self.name} pool has no live worker nodes")
        for client in clients:
            state.emit(
                NODE_UP,
                node=client.node,
                message=f"{client.transport} pid={client.pid} "
                        f"cpus={client.cpus}",
            )
        scheduler = _Scheduler(
            state, units, timeout, retries, backoff, checkpoint_every
        )
        scheduler.run(clients)

    def describe(self) -> List[Dict[str, Any]]:
        rows = []
        for client in self._clients:
            row: Dict[str, Any] = {
                "node": client.node,
                "transport": client.transport,
                "pid": client.pid,
                "cpus": client.cpus,
                "alive": not client.dead,
            }
            if not client.dead:
                try:
                    stats = client.stats()
                    row.update(
                        units=stats.get("units", 0),
                        cells=stats.get("cells", 0),
                        traces_stored=stats.get("traces_stored", 0),
                    )
                except NodeError:
                    client.dead = True
                    row["alive"] = False
            rows.append(row)
        return rows

    def transfer_counts(self) -> Dict[str, Dict[str, int]]:
        """node → content hash → times shipped (dedup accounting)."""
        return {
            client.node: dict(client.transfers)
            for client in self._clients
        }

    def close(self) -> None:
        for client in self._clients:
            client.close()
        self._clients = []


def _worker_env() -> Dict[str, str]:
    """The spawned worker's environment, with ``repro`` importable.

    The coordinator may itself run via ``PYTHONPATH=src``; make that
    arrangement explicit for children whatever way ``repro`` was
    imported here.
    """
    import repro

    env = dict(os.environ)
    package_root = str(Path(repro.__file__).resolve().parents[1])
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
    return env


class NodePool(_RemotePool):
    """N local worker processes, each on its own TCP socket.

    The multi-process scale-out backend: workers are spawned from this
    interpreter (``sys.executable -m repro.dist.worker --port 0``), the
    announced ephemeral port is read from each worker's stdout, and the
    job protocol runs over per-node sockets.  ``store_dir`` persists
    the nodes' content-addressed trace stores across pools (reuse means
    zero shipping on the next campaign); the default is a temporary
    store per worker, cleaned up by the OS.
    """

    name = "nodes"

    def __init__(
        self,
        nodes: int = 2,
        store_dir: Optional[Union[str, Path]] = None,
        python: Optional[str] = None,
    ) -> None:
        super().__init__()
        if nodes < 1:
            raise PoolError(f"NodePool needs >= 1 node, got {nodes}")
        python = python or sys.executable
        env = _worker_env()
        try:
            for index in range(nodes):
                self._clients.append(
                    self._spawn(index, python, env, store_dir)
                )
        except BaseException:
            self.close()
            raise

    def _spawn(
        self,
        index: int,
        python: str,
        env: Dict[str, str],
        store_dir: Optional[Union[str, Path]],
    ) -> _NodeClient:
        command = [
            python, "-m", "repro.dist.worker",
            "--port", "0", "--node", f"node{index}",
        ]
        if store_dir is not None:
            store = Path(store_dir) / f"node{index}"
            store.mkdir(parents=True, exist_ok=True)
            command += ["--store", str(store)]
        process = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            text=True,
        )
        try:
            address = self._read_address(process)
            sock = socket.create_connection(address, timeout=SPAWN_TIMEOUT)
            sock.settimeout(None)
            client = _NodeClient(
                sock.makefile("rb"),
                sock.makefile("wb"),
                transport="socket",
                process=process,
                sock=sock,
            )
            return client
        except BaseException:
            try:
                process.kill()
            except OSError:
                pass
            raise

    @staticmethod
    def _read_address(process: subprocess.Popen) -> Tuple[str, int]:
        deadline = time.monotonic() + SPAWN_TIMEOUT
        line = ""
        while time.monotonic() < deadline:
            line = process.stdout.readline()
            if line or process.poll() is not None:
                break
        if "listening on" not in line:
            raise PoolError(
                f"worker failed to announce its address (got {line!r})"
            )
        host, _, port = line.strip().rpartition(" ")[2].rpartition(":")
        return host, int(port)


class SSHPool(_RemotePool):
    """Worker nodes launched through a command template.

    ``template`` is formatted per host with ``{host}``, ``{python}``,
    and ``{node}``, then run as a subprocess whose stdin/stdout carry
    the job protocol — for the default template that subprocess is
    ``ssh``, and the worker runs on the remote machine with no listening
    ports or extra daemons.  Any template producing a process that
    speaks the worker protocol on stdio works; CI substitutes a
    localhost shim (``{python} -m repro.dist.worker --stdio …``) to
    exercise the exact transport without sshd.
    """

    name = "ssh"

    #: Production template: remote worker over plain ssh.
    DEFAULT_TEMPLATE = (
        "ssh -o BatchMode=yes {host} "
        "{python} -m repro.dist.worker --stdio --node {node}"
    )

    #: CI/localhost shim: the identical stdio transport, no sshd needed.
    LOCAL_TEMPLATE = "{python} -m repro.dist.worker --stdio --node {node}"

    def __init__(
        self,
        hosts: Sequence[str],
        template: str = DEFAULT_TEMPLATE,
        python: str = "python3",
    ) -> None:
        super().__init__()
        hosts = list(hosts)
        if not hosts:
            raise PoolError("SSHPool needs at least one host")
        env = _worker_env()
        try:
            for index, host in enumerate(hosts):
                command = shlex.split(
                    template.format(
                        host=host, python=python, node=f"{host}-{index}"
                    )
                )
                process = subprocess.Popen(
                    command,
                    stdin=subprocess.PIPE,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.DEVNULL,
                    env=env,
                )
                self._clients.append(
                    _NodeClient(
                        process.stdout,
                        process.stdin,
                        transport=f"stdio:{host}",
                        process=process,
                    )
                )
        except BaseException:
            self.close()
            raise


#: Environment variable selecting the default distributed node count.
NODES_ENV = "REPRO_NODES"


def resolve_pool(pool: Optional[Pool] = None) -> Optional[Pool]:
    """Resolve the campaign pool: explicit object, else ``REPRO_NODES``.

    Returns ``None`` (classic ``jobs`` scheduling) when neither is
    given.  ``REPRO_NODES=n`` with ``n >= 1`` spawns a fresh
    :class:`NodePool` of n local workers — the caller that triggered the
    resolution owns (and must close) it.  A non-integer value raises
    rather than silently running locally.
    """
    if pool is not None:
        return pool
    raw = os.environ.get(NODES_ENV)
    if raw is None:
        return None
    try:
        nodes = int(raw)
    except ValueError:
        raise ValueError(
            f"{NODES_ENV} must be an integer, got {raw!r}"
        ) from None
    if nodes < 1:
        return None
    return NodePool(nodes=nodes)


__all__ = [
    "LocalPool",
    "NODES_ENV",
    "NodeError",
    "NodePool",
    "Pool",
    "PoolError",
    "SSHPool",
    "resolve_pool",
]
