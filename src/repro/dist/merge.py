"""Mergeable campaign journals: per-node shards → one canonical file.

A distributed campaign journals each finished cell into a *shard* —
``<journal>.shards/<node>.jsonl``, one file per worker node, appended in
arrival order with the cell's ``node`` identity.  Shards are what makes
distribution crash-safe without coordination: every append is a flushed
one-line write to a file no other node touches, so any subset of nodes
(or the coordinator itself) can die at any byte and leave at most one
torn final line per shard.

On successful completion the shards are **merged** into the canonical
journal at ``<journal>``: every plan cell's entry re-serialized in plan
order *without* the node field — byte-identical to the journal a
single-node serial run writes.  The merge is a pure function of the
entry set, so shard arrival order, node count, retried duplicates, and
torn final lines all collapse to the same canonical bytes (property-
tested in ``tests/dist/test_merge.py``).

An interrupted distributed run leaves shards behind; the executor folds
them into the resume set (:func:`load_shards`) on the next run — under
any backend, including plain serial — so no finished cell is ever
re-simulated.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, IO, Iterable, List, Optional, Union

from repro.exec.journal import (
    JournalError,
    result_from_json,
    result_to_json,
)
from repro.exec.plan import CellKey
from repro.sim.metrics import SimulationResult
from repro.trace.plane import atomic_write_bytes

#: Characters allowed in a shard filename derived from a node id.
_SAFE = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


def shards_dir(journal_path: Union[str, Path]) -> Path:
    """The per-node shard directory belonging to ``journal_path``."""
    return Path(str(journal_path) + ".shards")


def _shard_name(node: str) -> str:
    cleaned = "".join(c if c in _SAFE else "_" for c in (node or "local"))
    return f"{cleaned[:80] or 'local'}.jsonl"


class ShardedJournal:
    """A journal writer that routes each entry to its node's shard.

    Drop-in for :class:`repro.exec.journal.Journal` (``append(result,
    node=...)`` / ``close()``): the execution engine does not know it is
    writing shards.  Entries carry their node identity on disk; the
    canonical merge strips it again.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.directory = shards_dir(path)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._handles: Dict[str, IO[str]] = {}

    def append(self, result: SimulationResult, node: str = "") -> None:
        handle = self._handles.get(node)
        if handle is None:
            handle = open(
                self.directory / _shard_name(node), "a", encoding="utf-8"
            )
            self._handles[node] = handle
        handle.write(json.dumps(result_to_json(result, node=node)) + "\n")
        handle.flush()
        os.fsync(handle.fileno())

    def close(self) -> None:
        for handle in self._handles.values():
            handle.close()
        self._handles.clear()

    def __enter__(self) -> "ShardedJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def parse_shard_lines(
    lines: List[str], origin: str = "<shard>"
) -> Dict[CellKey, SimulationResult]:
    """Parse one shard's lines into a result map (last entry wins).

    The tolerance contract matches :func:`repro.exec.journal.
    load_journal`: a torn **final** line (killed writer) is dropped,
    interior corruption raises.  Duplicate cells — a unit re-run after
    its node died mid-acknowledgement — overwrite; simulation is
    deterministic, so duplicates are identical and which one survives
    cannot matter.
    """
    results: Dict[CellKey, SimulationResult] = {}
    for line_number, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            result = result_from_json(json.loads(line))
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            if line_number == len(lines) - 1:
                break  # torn final write from a killed run
            raise JournalError(
                f"{origin}:{line_number + 1}: corrupt shard line ({exc})"
            ) from exc
        results[(result.trace_name, result.predictor_name)] = result
    return results


def load_shards(
    journal_path: Union[str, Path],
) -> Dict[CellKey, SimulationResult]:
    """Read every shard of ``journal_path`` into one result map.

    Shards are read in sorted filename order; since any duplicated cell
    carries identical results (deterministic simulation), the merge is
    order-insensitive in every way that matters.
    """
    results: Dict[CellKey, SimulationResult] = {}
    directory = shards_dir(journal_path)
    if not directory.is_dir():
        return results
    for shard in sorted(directory.glob("*.jsonl")):
        lines = shard.read_text(encoding="utf-8").splitlines()
        results.update(parse_shard_lines(lines, origin=str(shard)))
    return results


def canonical_journal_bytes(
    plan_keys: Iterable[CellKey],
    results: Dict[CellKey, SimulationResult],
) -> bytes:
    """The canonical journal for ``plan_keys``: plan order, no node.

    Exactly the bytes a single-node serial run of the same plan writes:
    one line per cell in plan order, serialized through the same
    :func:`result_to_json` path with no node attribution.  Cells absent
    from ``results`` (an incomplete campaign) are simply not emitted —
    the canonical journal of a partial run is the partial prefix set.
    """
    lines = [
        json.dumps(result_to_json(results[key])) + "\n"
        for key in plan_keys
        if key in results
    ]
    return "".join(lines).encode("utf-8")


def merge_journals(
    plan_keys: Iterable[CellKey],
    shard_lines: Iterable[List[str]],
    base: Optional[Dict[CellKey, SimulationResult]] = None,
) -> bytes:
    """Merge per-node shard line-lists into canonical journal bytes.

    ``base`` carries entries that predate the shards (a canonical
    journal being resumed); shard entries win over base entries for the
    same cell (they are identical by determinism, so this is a no-op in
    value terms).  The output is invariant under any permutation of
    ``shard_lines`` — the hypothesis property pinning this is the
    backbone of the distributed-journal guarantee.
    """
    results: Dict[CellKey, SimulationResult] = dict(base or {})
    for lines in shard_lines:
        results.update(parse_shard_lines(lines))
    return canonical_journal_bytes(plan_keys, results)


def write_canonical_journal(
    journal_path: Union[str, Path],
    plan_keys: Iterable[CellKey],
    results: Dict[CellKey, SimulationResult],
) -> Path:
    """Atomically publish the canonical journal and retire the shards.

    The canonical file lands first (atomic replace), the shard files —
    now fully absorbed — are deleted after; a crash between the two
    steps leaves harmless duplicates that the next load deduplicates.
    """
    journal_path = Path(journal_path)
    atomic_write_bytes(
        journal_path, canonical_journal_bytes(plan_keys, results)
    )
    directory = shards_dir(journal_path)
    if directory.is_dir():
        for shard in directory.glob("*.jsonl"):
            try:
                shard.unlink()
            except OSError:
                pass
        try:
            directory.rmdir()
        except OSError:
            pass
    return journal_path


__all__ = [
    "ShardedJournal",
    "canonical_journal_bytes",
    "load_shards",
    "merge_journals",
    "parse_shard_lines",
    "shards_dir",
    "write_canonical_journal",
]
