"""Bit-manipulation helpers for working with branch-target addresses.

Branch predictors that operate at the bit level (SNIP, BLBP, TAP) treat a
target address as a vector of bits.  These helpers convert between integer
addresses and bit vectors, and provide the small utilities (masks, bit
extraction) that the predictor cores use in their hot paths.
"""

from __future__ import annotations

from typing import List, Sequence


def mask(width: int) -> int:
    """Return an integer with the low ``width`` bits set.

    ``mask(0)`` is ``0``; widths must be non-negative.
    """
    if width < 0:
        raise ValueError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def bit_of(value: int, position: int) -> int:
    """Return bit ``position`` of ``value`` as 0 or 1."""
    if position < 0:
        raise ValueError(f"bit position must be non-negative, got {position}")
    return (value >> position) & 1


def bits_of(value: int, width: int, low: int = 0) -> List[int]:
    """Extract ``width`` bits of ``value`` starting at bit ``low``.

    The result is least-significant-first: ``bits_of(v, w, lo)[k]`` is bit
    ``lo + k`` of ``v``.  This is the bit ordering used throughout the BLBP
    core (weight ``w_k`` predicts bit ``lo + k`` of the target).
    """
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    shifted = value >> low
    return [(shifted >> k) & 1 for k in range(width)]


def bits_to_int(bits: Sequence[int], low: int = 0) -> int:
    """Inverse of :func:`bits_of`: pack least-significant-first bits.

    Each element must be 0 or 1.  The packed value is shifted left by
    ``low`` so that ``bits_to_int(bits_of(v, w, lo), lo)`` recovers the
    masked field of ``v``.
    """
    value = 0
    for k, bit in enumerate(bits):
        if bit not in (0, 1):
            raise ValueError(f"bit {k} is {bit!r}, expected 0 or 1")
        value |= bit << k
    return value << low


def sign_magnitude_bits(width: int) -> int:
    """Return the magnitude bound for a ``width``-bit sign/magnitude weight.

    The paper stores perceptron weights as 4-bit sign/magnitude integers,
    which range over [-7, +7]; ``sign_magnitude_bits(4) == 7``.
    """
    if width < 2:
        raise ValueError(f"sign/magnitude weights need >= 2 bits, got {width}")
    return (1 << (width - 1)) - 1
