"""Host-environment metadata for benchmark result files.

Throughput numbers are meaningless without the machine that produced
them: a committed ``results/*.json`` gets compared against re-runs on
different CI runners, Python builds, and NumPy versions.  Every
benchmark stamps its summary with this block so a regression can be
told apart from a hardware change.
"""

from __future__ import annotations

import os
import platform
import sys


def environment_metadata() -> dict:
    """A JSON-ready snapshot of the executing environment."""
    import numpy

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy.__version__,
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


__all__ = ["environment_metadata"]
