"""Hashing utilities: PC mixing and folded-XOR history compression.

Hardware branch predictors cannot afford to index SRAM tables with a
630-bit history, so they *fold* the history down to an index width by
XOR-ing fixed-size chunks together (Michaud's PPM predictor, TAGE, and
every perceptron predictor since the hashed perceptron use this trick).
The paper leaves its hash functions unspecified; we use the standard
folded-XOR construction here, mixed with the branch PC.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence

from repro.common.state import Stateful, check_state, require

_GOLDEN64 = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def stable_hash64(value: int) -> int:
    """A deterministic 64-bit integer mixer (splitmix64 finalizer).

    Python's builtin ``hash`` is salted per-process for strings and is the
    identity for small ints, neither of which is acceptable for a
    reproducible hardware model, so all table indexing goes through this.
    """
    value &= _MASK64
    value = (value + _GOLDEN64) & _MASK64
    value ^= value >> 30
    value = (value * 0xBF58476D1CE4E5B9) & _MASK64
    value ^= value >> 27
    value = (value * 0x94D049BB133111EB) & _MASK64
    value ^= value >> 31
    return value


def mix_pc(pc: int, salt: int = 0) -> int:
    """Mix a branch PC (optionally with a salt) into a 64-bit hash.

    The low two bits of instruction addresses carry no information on
    aligned ISAs, so the PC is pre-shifted before mixing.
    """
    return stable_hash64((pc >> 2) ^ (salt * _GOLDEN64))


def fold_bits(bits: Sequence[int], width: int) -> int:
    """Fold a least-significant-first bit sequence to ``width`` bits by XOR.

    Equivalent to the circular-shift-register folding hardware used by
    TAGE-family predictors, computed directly for clarity.
    """
    if width < 1:
        raise ValueError(f"fold width must be >= 1, got {width}")
    folded = 0
    for position, bit in enumerate(bits):
        if bit:
            folded ^= 1 << (position % width)
    return folded


def combine(width: int, *values: int) -> int:
    """Combine hashed components into a ``width``-bit table index."""
    acc = 0
    for value in values:
        acc = stable_hash64(acc ^ value)
    return acc & ((1 << width) - 1)


class FoldedHistory(Stateful):
    """Incrementally-folded view of a shift-register history.

    Maintains ``fold`` = XOR-fold of the most recent ``length`` history
    bits down to ``width`` bits, updated in O(1) per inserted bit exactly
    as the circular shift register in TAGE hardware does.  The owning
    history object pushes new bits in and supplies the bit falling out of
    the window.
    """

    __slots__ = ("length", "width", "fold", "_out_position")

    def __init__(self, length: int, width: int) -> None:
        if length < 1:
            raise ValueError(f"history length must be >= 1, got {length}")
        if width < 1:
            raise ValueError(f"fold width must be >= 1, got {width}")
        self.length = length
        self.width = width
        self.fold = 0
        self._out_position = length % width

    def update(self, new_bit: int, outgoing_bit: int) -> None:
        """Shift ``new_bit`` in and ``outgoing_bit`` (the bit that just left
        the ``length``-bit window) out of the fold."""
        # Rotate the fold left by one within `width` bits.
        top = (self.fold >> (self.width - 1)) & 1
        self.fold = ((self.fold << 1) & ((1 << self.width) - 1)) | top
        if new_bit:
            self.fold ^= 1
        if outgoing_bit:
            self.fold ^= 1 << self._out_position

    def reset(self) -> None:
        self.fold = 0

    def state_dict(self) -> Dict[str, Any]:
        return {
            "v": 1,
            "kind": "FoldedHistory",
            "length": self.length,
            "width": self.width,
            "fold": self.fold,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        check_state(state, "FoldedHistory")
        require(
            state["length"] == self.length and state["width"] == self.width,
            f"FoldedHistory geometry mismatch: snapshot is "
            f"{state['length']}x{state['width']}, this fold is "
            f"{self.length}x{self.width}",
        )
        fold = state["fold"]
        require(0 <= fold < (1 << self.width), f"fold {fold} out of range")
        self.fold = fold


def fold_int(value: int, total_bits: int, width: int) -> int:
    """Fold the low ``total_bits`` of ``value`` down to ``width`` bits."""
    if width < 1:
        raise ValueError(f"fold width must be >= 1, got {width}")
    value &= (1 << total_bits) - 1
    folded = 0
    while value:
        folded ^= value & ((1 << width) - 1)
        value >>= width
    return folded
