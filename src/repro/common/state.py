"""The versioned snapshot/restore protocol every stateful component speaks.

Three methods, one contract (see ``docs/checkpointing.md``):

* ``state_dict() -> dict`` — a JSON-ready, self-describing snapshot of
  the component's *architectural* state: every bit a hardware
  implementation would latch.  Derived caches (memoized hashes, the
  IBTB candidate cache, pending fold batches) are flushed or excluded —
  they are recomputable and must not leak into the snapshot.
* ``load_state(d)`` — restore a freshly constructed component (same
  configuration) from a snapshot.  Geometry mismatches raise
  :class:`StateError` instead of silently corrupting tables.
* ``state_hash() -> str`` — a canonical SHA-256 over the snapshot, for
  cross-process determinism checks and golden fixtures.  Two predictors
  that would behave identically on every future branch hash equal —
  including a restored predictor versus one that was never suspended.

Snapshots use only JSON scalar types plus one structured value: NumPy
arrays travel as ``{"__ndarray__": <base64>, "dtype", "shape"}`` via
:func:`encode_array`/:func:`decode_array`, which keeps checkpoint files
plain JSON while preserving dtype and shape exactly.

Every ``state_dict`` carries an envelope — ``{"v": <protocol version>,
"kind": "<ClassName>", ...}`` — validated by :func:`check_state` on
load.  Bump :data:`STATE_PROTOCOL_VERSION` only for changes that make
old snapshots unreadable; adding a predictor or a field to a *new*
``kind`` is not a version bump.
"""

from __future__ import annotations

import base64
import hashlib
import json
from typing import Any, Dict

import numpy as np

#: Version of the snapshot envelope itself (not of any one predictor).
STATE_PROTOCOL_VERSION = 1


class StateError(ValueError):
    """A snapshot could not be produced, validated, or restored."""


def encode_array(array: np.ndarray) -> Dict[str, Any]:
    """Encode a NumPy array as a JSON-ready dict preserving dtype/shape."""
    contiguous = np.ascontiguousarray(array)
    return {
        "__ndarray__": base64.b64encode(contiguous.tobytes()).decode("ascii"),
        "dtype": str(contiguous.dtype),
        "shape": list(contiguous.shape),
    }


def decode_array(payload: Dict[str, Any]) -> np.ndarray:
    """Decode :func:`encode_array` output back into a writable array."""
    try:
        raw = base64.b64decode(payload["__ndarray__"])
        array = np.frombuffer(raw, dtype=np.dtype(payload["dtype"]))
        return array.reshape(payload["shape"]).copy()
    except (KeyError, TypeError, ValueError) as exc:
        raise StateError(f"malformed array payload: {exc}") from exc


def _reject_unencodable(value: Any) -> Any:
    raise StateError(
        f"state dicts must be JSON-ready; cannot serialize "
        f"{type(value).__name__} ({value!r}) — encode arrays with "
        f"encode_array() and convert NumPy scalars with int()/float()"
    )


def canonical_json(state: Dict[str, Any]) -> str:
    """The canonical serialization hashes and checkpoints are built on:
    sorted keys, no whitespace, NaN rejected, non-JSON types rejected."""
    try:
        return json.dumps(
            state,
            sort_keys=True,
            separators=(",", ":"),
            allow_nan=False,
            default=_reject_unencodable,
        )
    except ValueError as exc:
        if isinstance(exc, StateError):
            raise
        raise StateError(f"state dict is not canonically serializable: {exc}") from exc


def hash_state(state: Dict[str, Any]) -> str:
    """SHA-256 hex digest of the canonical serialization of ``state``."""
    return hashlib.sha256(canonical_json(state).encode("utf-8")).hexdigest()


def dataclass_fingerprint(config: Any) -> str:
    """Stable hash of a (frozen) configuration dataclass.

    Predictor snapshots embed this so ``load_state`` can reject a
    snapshot taken under a different configuration instead of silently
    loading geometry-compatible but semantically different state.
    """
    import dataclasses

    return hash_state(dataclasses.asdict(config))


def check_state(state: Any, kind: str) -> Dict[str, Any]:
    """Validate a snapshot's envelope; return it for chaining.

    Raises:
        StateError: when ``state`` is not a dict, names a different
            component ``kind``, or carries an unsupported protocol
            version.
    """
    if not isinstance(state, dict):
        raise StateError(
            f"expected a state dict for {kind}, got {type(state).__name__}"
        )
    found = state.get("kind")
    if found != kind:
        raise StateError(f"state kind mismatch: expected {kind!r}, got {found!r}")
    version = state.get("v")
    if version != STATE_PROTOCOL_VERSION:
        raise StateError(
            f"unsupported state version {version!r} for {kind} "
            f"(this build speaks v{STATE_PROTOCOL_VERSION})"
        )
    return state


def require(condition: bool, message: str) -> None:
    """Geometry/invariant guard for ``load_state`` implementations."""
    if not condition:
        raise StateError(message)


class Stateful:
    """Mixin declaring the protocol; ``state_hash`` comes for free.

    ``__slots__`` is empty so slotted classes can inherit without
    growing a ``__dict__``.
    """

    __slots__ = ()

    def state_dict(self) -> Dict[str, Any]:
        raise NotImplementedError(
            f"{type(self).__name__} does not implement state_dict()"
        )

    def load_state(self, state: Dict[str, Any]) -> None:
        raise NotImplementedError(
            f"{type(self).__name__} does not implement load_state()"
        )

    def state_hash(self) -> str:
        """Canonical hash of :meth:`state_dict` (see :func:`hash_state`)."""
        return hash_state(self.state_dict())


__all__ = [
    "STATE_PROTOCOL_VERSION",
    "StateError",
    "Stateful",
    "canonical_json",
    "check_state",
    "dataclass_fingerprint",
    "decode_array",
    "encode_array",
    "hash_state",
    "require",
]
