"""Branch-history registers: global, local, and path histories.

The paper's predictor consumes three kinds of history (§3.3, §3.6):

* a 630-bit **global history** of conditional-branch outcomes, sliced into
  seven tuned intervals;
* a table of 256 10-bit **local histories**, indexed by branch PC, each
  recording bit 3 of the targets taken by that branch;
* conventional **path history** (low-order PC bits of recent branches),
  used by the multiperspective conditional predictor substrate.

All histories are least-recent-last: index 0 is the most recent outcome,
matching the paper's interval notation where interval (1, 33) means
"outcomes from position 1 through position 33 in the global history".
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.common.hashing import fold_int, mix_pc
from repro.common.state import Stateful, check_state, require


class GlobalHistory(Stateful):
    """A fixed-capacity shift register of branch outcomes.

    Stored as a single Python integer where bit 0 is the most recent
    outcome.  Slicing an interval ``(start, end)`` returns outcomes from
    position ``start`` through ``end`` inclusive, as an integer with the
    outcome at ``start`` in its bit 0.
    """

    __slots__ = ("capacity", "_bits", "_mask")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"history capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._bits = 0
        self._mask = (1 << capacity) - 1

    def push(self, outcome: bool) -> None:
        """Shift one branch outcome (True = taken) into the history."""
        self._bits = ((self._bits << 1) | int(bool(outcome))) & self._mask

    def interval(self, start: int, end: int) -> int:
        """Return outcomes at positions ``start..end`` (inclusive), packed
        with position ``start`` at bit 0."""
        if not 0 <= start <= end:
            raise ValueError(f"bad interval ({start}, {end})")
        if end >= self.capacity:
            raise ValueError(
                f"interval end {end} exceeds capacity {self.capacity}"
            )
        width = end - start + 1
        return (self._bits >> start) & ((1 << width) - 1)

    def folded_interval(self, start: int, end: int, width: int) -> int:
        """XOR-fold the interval ``(start, end)`` down to ``width`` bits."""
        return fold_int(self.interval(start, end), end - start + 1, width)

    def value(self) -> int:
        """The raw history bits (bit 0 most recent)."""
        return self._bits

    def reset(self) -> None:
        self._bits = 0

    def __len__(self) -> int:
        return self.capacity

    def state_dict(self) -> Dict[str, Any]:
        return {
            "v": 1,
            "kind": "GlobalHistory",
            "capacity": self.capacity,
            "bits": self._bits,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        check_state(state, "GlobalHistory")
        require(
            state["capacity"] == self.capacity,
            f"GlobalHistory capacity mismatch: snapshot {state['capacity']}, "
            f"this register {self.capacity}",
        )
        bits = state["bits"]
        require(0 <= bits <= self._mask, "history bits out of range")
        self._bits = bits


class PathHistory(Stateful):
    """History of low-order PC bits of recently-executed branches."""

    __slots__ = ("depth", "bits_per_pc", "_entries")

    def __init__(self, depth: int, bits_per_pc: int = 6) -> None:
        if depth < 1:
            raise ValueError(f"path depth must be >= 1, got {depth}")
        self.depth = depth
        self.bits_per_pc = bits_per_pc
        self._entries: List[int] = []

    def push(self, pc: int) -> None:
        self._entries.insert(0, (pc >> 2) & ((1 << self.bits_per_pc) - 1))
        if len(self._entries) > self.depth:
            self._entries.pop()

    def folded(self, depth: int, width: int) -> int:
        """Fold the most recent ``depth`` path entries to ``width`` bits."""
        if depth < 1:
            raise ValueError(f"path fold depth must be >= 1, got {depth}")
        packed = 0
        for entry in self._entries[:depth]:
            packed = (packed << self.bits_per_pc) | entry
        return fold_int(packed, depth * self.bits_per_pc, width)

    def reset(self) -> None:
        self._entries.clear()

    def state_dict(self) -> Dict[str, Any]:
        return {
            "v": 1,
            "kind": "PathHistory",
            "depth": self.depth,
            "bits_per_pc": self.bits_per_pc,
            "entries": list(self._entries),
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        check_state(state, "PathHistory")
        require(
            state["depth"] == self.depth
            and state["bits_per_pc"] == self.bits_per_pc,
            "PathHistory geometry mismatch",
        )
        entries = state["entries"]
        require(len(entries) <= self.depth, "too many path entries")
        self._entries = [int(entry) for entry in entries]


class LocalHistoryTable(Stateful):
    """A PC-indexed table of per-branch shift-register histories.

    BLBP keeps 256 10-bit local histories; each records **bit 3 of the
    target address** taken by the branch on previous executions (§3.6),
    rather than a taken/not-taken outcome.  The recorded bit is supplied
    by the caller so the same structure serves conditional predictors too.
    """

    __slots__ = ("num_entries", "history_bits", "_table", "_mask")

    def __init__(self, num_entries: int, history_bits: int) -> None:
        if num_entries < 1:
            raise ValueError(f"need >= 1 entries, got {num_entries}")
        if history_bits < 1:
            raise ValueError(f"need >= 1 history bits, got {history_bits}")
        self.num_entries = num_entries
        self.history_bits = history_bits
        self._table = [0] * num_entries
        self._mask = (1 << history_bits) - 1

    def _index(self, pc: int) -> int:
        return mix_pc(pc) % self.num_entries

    def read(self, pc: int) -> int:
        """The local history register for ``pc`` (bit 0 most recent)."""
        return self._table[self._index(pc)]

    def push(self, pc: int, bit: int) -> None:
        """Shift ``bit`` into the local history for ``pc``."""
        self.push_at(self._index(pc), bit)

    def index_of(self, pc: int) -> int:
        """The table index ``pc`` hashes to (for callers that memoize)."""
        return self._index(pc)

    def read_at(self, index: int) -> int:
        """Read by precomputed table index (see :meth:`index_of`)."""
        return self._table[index]

    def push_at(self, index: int, bit: int) -> None:
        """Shift ``bit`` into the register at a precomputed index."""
        if bit not in (0, 1):
            raise ValueError(f"local-history bit must be 0 or 1, got {bit!r}")
        self._table[index] = ((self._table[index] << 1) | bit) & self._mask

    def reset(self) -> None:
        self._table = [0] * self.num_entries

    def storage_bits(self) -> int:
        return self.num_entries * self.history_bits

    def state_dict(self) -> Dict[str, Any]:
        return {
            "v": 1,
            "kind": "LocalHistoryTable",
            "num_entries": self.num_entries,
            "history_bits": self.history_bits,
            "table": list(self._table),
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        check_state(state, "LocalHistoryTable")
        require(
            state["num_entries"] == self.num_entries
            and state["history_bits"] == self.history_bits,
            "LocalHistoryTable geometry mismatch",
        )
        table = state["table"]
        require(len(table) == self.num_entries, "local-history table size mismatch")
        self._table = [int(value) & self._mask for value in table]


def parse_intervals(intervals: Tuple[Tuple[int, int], ...]) -> Tuple[Tuple[int, int], ...]:
    """Validate a tuple of (start, end) global-history intervals."""
    for start, end in intervals:
        if start < 0 or end < start:
            raise ValueError(f"malformed history interval ({start}, {end})")
    return tuple(intervals)
