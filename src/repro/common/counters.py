"""Saturating counters, the workhorse state element of branch predictors."""

from __future__ import annotations

from typing import Any, Dict

from repro.common.state import Stateful, check_state, require


class SaturatingCounter(Stateful):
    """An unsigned saturating counter in ``[0, 2**width - 1]``.

    Used for ITTAGE confidence counters, RRIP re-reference values, and the
    usefulness bits of tagged tables.
    """

    __slots__ = ("width", "max_value", "value")

    def __init__(self, width: int, initial: int = 0) -> None:
        if width < 1:
            raise ValueError(f"counter width must be >= 1, got {width}")
        self.width = width
        self.max_value = (1 << width) - 1
        if not 0 <= initial <= self.max_value:
            raise ValueError(
                f"initial value {initial} out of range [0, {self.max_value}]"
            )
        self.value = initial

    def increment(self) -> None:
        if self.value < self.max_value:
            self.value += 1

    def decrement(self) -> None:
        if self.value > 0:
            self.value -= 1

    def is_max(self) -> bool:
        return self.value == self.max_value

    def is_min(self) -> bool:
        return self.value == 0

    def reset(self, value: int = 0) -> None:
        if not 0 <= value <= self.max_value:
            raise ValueError(f"reset value {value} out of range")
        self.value = value

    def state_dict(self) -> Dict[str, Any]:
        return {
            "v": 1,
            "kind": "SaturatingCounter",
            "width": self.width,
            "value": self.value,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        check_state(state, "SaturatingCounter")
        require(state["width"] == self.width, "counter width mismatch")
        value = int(state["value"])
        require(0 <= value <= self.max_value, "counter value out of range")
        self.value = value

    def __repr__(self) -> str:
        return f"SaturatingCounter(width={self.width}, value={self.value})"


class SignedSaturatingCounter(Stateful):
    """A signed saturating counter in ``[-2**(width-1), 2**(width-1) - 1]``.

    Used for perceptron weights when modelled as scalars, and for ITTAGE's
    ``use_alt_on_na`` meta counter.
    """

    __slots__ = ("width", "min_value", "max_value", "value")

    def __init__(self, width: int, initial: int = 0) -> None:
        if width < 1:
            raise ValueError(f"counter width must be >= 1, got {width}")
        self.width = width
        self.min_value = -(1 << (width - 1))
        self.max_value = (1 << (width - 1)) - 1
        if not self.min_value <= initial <= self.max_value:
            raise ValueError(
                f"initial value {initial} out of range "
                f"[{self.min_value}, {self.max_value}]"
            )
        self.value = initial

    def increment(self) -> None:
        if self.value < self.max_value:
            self.value += 1

    def decrement(self) -> None:
        if self.value > self.min_value:
            self.value -= 1

    def is_positive(self) -> bool:
        return self.value >= 0

    def reset(self, value: int = 0) -> None:
        if not self.min_value <= value <= self.max_value:
            raise ValueError(f"reset value {value} out of range")
        self.value = value

    def state_dict(self) -> Dict[str, Any]:
        return {
            "v": 1,
            "kind": "SignedSaturatingCounter",
            "width": self.width,
            "value": self.value,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        check_state(state, "SignedSaturatingCounter")
        require(state["width"] == self.width, "counter width mismatch")
        value = int(state["value"])
        require(
            self.min_value <= value <= self.max_value,
            "counter value out of range",
        )
        self.value = value

    def __repr__(self) -> str:
        return f"SignedSaturatingCounter(width={self.width}, value={self.value})"
